//! Value-generation strategies (no shrinking).

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Regenerate until `f` accepts the value (bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive values: `f` maps a strategy for the inner level
    /// to a strategy for the outer. `depth` bounds nesting; the other
    /// two parameters (desired size / expected branch factor in real
    /// proptest) are accepted for signature compatibility.
    fn prop_recursive<R2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R2,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expected size stays
            // bounded even at full depth.
            cur = Union::new(vec![self.clone().boxed(), f(cur).boxed()]).boxed();
        }
        cur
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 attempts: {}", self.whence);
    }
}

/// Choice among same-typed strategies ([`crate::prop_oneof!`]),
/// uniform or weighted.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    /// Build from the option list (must be non-empty), uniform weights.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Build from `(weight, option)` pairs (must be non-empty, with a
    /// positive total weight) — the `w => strategy` form of
    /// [`crate::prop_oneof!`].
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut k = rng.below(self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if k < w {
                return s.generate(rng);
            }
            k -= w;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_domain() {
        let mut rng = TestRng::new(11);
        let s = (0u8..6).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 12 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_option() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + depth(c),
            }
        }
        let s =
            Just(T::Leaf).prop_recursive(3, 8, 1, |inner| inner.prop_map(|c| T::Node(Box::new(c))));
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
