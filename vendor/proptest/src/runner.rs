//! The case loop behind the [`crate::proptest!`] macro.

use crate::rng::TestRng;
use crate::test_runner::ProptestConfig;
use crate::TestCaseError;

/// Deterministic per-test seed: FNV-1a over the test name, XORed with
/// `PROPTEST_SEED` when set (for reproducing an alternate universe).
pub fn case_seed(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => h ^ s.parse::<u64>().unwrap_or(0),
        Err(_) => h,
    }
}

/// Run one property until `cfg.cases` cases are accepted.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the case number and seed, or if too many cases are
/// rejected by `prop_assume!`.
pub fn run_property<F>(test_name: &str, cfg: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = case_seed(test_name);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while accepted < cfg.cases {
        let case_seed = seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(case_seed);
        attempt += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= cfg.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {accepted} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{accepted} failed (attempt seed {case_seed:#x}): {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_property("t", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut total = 0;
        let mut accepted = 0;
        run_property("t2", &ProptestConfig::with_cases(5), |rng| {
            total += 1;
            if rng.next_u64() & 1 == 0 {
                return Err(TestCaseError::reject("coin"));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 5);
        assert!(total > 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run_property("t3", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
