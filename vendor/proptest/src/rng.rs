//! The deterministic generator behind case generation.

/// SplitMix64-based test RNG. Deterministic per seed; cheap to fork.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
