//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// A length specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a random length in the size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of `element` values with length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range_and_fixed_size() {
        let mut rng = TestRng::new(2);
        let s = vec(0u8..10, 3usize..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0u8..10, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }
}
