//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], [`strategy::Just`], `any::<T>()`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name, overridable
//! with `PROPTEST_SEED`), and failing cases are **not shrunk** — the
//! failure message reports the assertion, not a minimal counterexample.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod runner;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case result used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Skip cases whose inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($w, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!` syntax for
/// `fn name(pat in strategy, ...) { body }` items with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal item-muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::runner::run_property(
                stringify!($name),
                &__cfg,
                |__proptest_rng| {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), __proptest_rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
}
