//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats spanning many magnitudes (not raw bit patterns:
        // NaN/inf would poison most numeric properties).
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        mag * (2f64).powi(exp)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_bool_cover_both_arms() {
        let mut rng = TestRng::new(4);
        let (mut some, mut none, mut t, mut f) = (0, 0, 0, 0);
        for _ in 0..200 {
            match Option::<bool>::arbitrary(&mut rng) {
                Some(true) => {
                    some += 1;
                    t += 1;
                }
                Some(false) => {
                    some += 1;
                    f += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0 && t > 0 && f > 0);
    }

    #[test]
    fn arbitrary_f64_is_finite() {
        let mut rng = TestRng::new(5);
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
