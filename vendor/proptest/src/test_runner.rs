//! Test configuration (`ProptestConfig`).

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected (assumption-violating) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Alias matching `proptest::test_runner::Config`.
pub use ProptestConfig as Config;
