//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no network access, so this crate
//! implements the subset of the criterion API the workspace's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros (bench targets use `harness = false`).
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples (default 10) of adaptively-batched iterations;
//! the median per-iteration time is printed as
//! `bench  <group>/<id> ... <time>`. There is no statistical analysis,
//! HTML report, or baseline comparison — this is a smoke-timer that
//! keeps `cargo bench` working offline. Set `CRITERION_SAMPLES` to
//! override sample counts globally (e.g. `1` in CI).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a closure over adaptively batched iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, recording `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: aim for ≥ ~1ms per sample so timer
        // resolution noise stays small, but cap the batch for slow
        // closures.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn report(group: &str, id: &str, time: Duration) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench  {label:<56} {time:>12.3?}/iter");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (overridden by `CRITERION_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples(n);
        self
    }

    /// Run a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.id, b.median());
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.id, b.median());
        self
    }

    /// Finish the group (printing is immediate; this is a no-op marker).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: env_samples(10),
            _parent: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: env_samples(10),
        };
        f(&mut b);
        report("", id, b.median());
        self
    }
}

/// Collect benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (same as `std::hint`).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("srs", 100).id, "srs/100");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        b.iter(|| std::hint::black_box(2 + 2));
        assert_eq!(b.samples.len(), 3);
        assert!(b.median() >= Duration::ZERO);
    }
}
