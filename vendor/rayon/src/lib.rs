//! Vendored, dependency-free stand-in for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses —
//! `into_par_iter().map(f).collect::<Vec<_>>()` over `Vec<T>` and
//! `Range<usize>` — on top of `std::thread::scope`. Work is distributed
//! by an atomic next-index counter (dynamic scheduling, so uneven item
//! costs balance), and results are written back by index, so `collect`
//! preserves input order exactly: a parallel map is **bit-identical**
//! to its sequential equivalent whenever `f` is a pure function of the
//! item.
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! `std::thread::available_parallelism()`. With one thread (or one
//! item) execution is inline with zero thread overhead.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One-stop import mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelMap};
}

/// Number of worker threads the pool will use.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Conversion into a parallel iterator (the entry point of the API).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert into the concrete parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel (lazily — runs at
    /// [`ParallelMap::collect`]).
    pub fn map<U, F>(self, f: F) -> ParallelMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParallelMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

/// A pending parallel map; executes on [`ParallelMap::collect`].
pub struct ParallelMap<T: Send, U: Send, F: Fn(T) -> U + Sync> {
    items: Vec<T>,
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParallelMap<T, U, F> {
    /// Execute the map and collect results **in input order**.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        C::from(self.run())
    }

    fn run(self) -> Vec<U> {
        let n = self.items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        // Items and result slots behind per-index mutexes; workers pull
        // the next index from a shared atomic counter (dynamic
        // scheduling balances uneven per-item cost), compute outside
        // any lock, and write back by index so order is preserved.
        let items: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = items[i]
                        .lock()
                        .expect("item lock")
                        .take()
                        .expect("item taken once");
                    let out = f(item);
                    *results[i].lock().expect("result lock") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock")
                    .expect("every index computed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter_matches_sequential() {
        let par: Vec<String> = (0..64).into_par_iter().map(|i| format!("{i}")).collect();
        let seq: Vec<String> = (0..64).map(|i| format!("{i}")).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64)
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        assert!(distinct >= 1);
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected multiple worker threads");
        }
    }
}
