//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships
//! a minimal implementation of exactly the `rand` 0.10-style surface the
//! code uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] core trait, the [`RngExt`] extension trait
//! (`random`/`random_range`), and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — a high-quality,
//! deterministic generator. It is **not** the cryptographic ChaCha12 of
//! the real crate; nothing in this workspace needs cryptographic
//! randomness, only seeded reproducibility.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of uniformly distributed random 64-bit words.
///
/// This is the object-safe core trait; the ergonomic sampling methods
/// live on [`RngExt`], which is blanket-implemented for every `Rng`.
pub trait Rng {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 — the same
    /// convention as the real `rand` crate's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw via Lemire's widening multiply.
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`Rng`].
///
/// Mirrors the `rand` 0.10 naming (`random`, `random_range`).
pub trait RngExt: Rng {
    /// A uniform draw over `T`'s full domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = r.random_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let k = r.random_range(3usize..=5);
            assert!((3..=5).contains(&k));
        }
    }

    #[test]
    fn range_mean_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.random_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }
}
