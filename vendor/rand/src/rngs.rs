//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Deterministic for a given seed, `Clone`-able for forked streams, and
/// fast. (The real `rand::rngs::StdRng` is ChaCha12; nothing here needs
/// cryptographic strength, only reproducibility.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            let mut st = 0xDEAD_BEEF_u64;
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
        }
        Self { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        Self { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_roundtrip_and_zero_guard() {
        let a = StdRng::from_seed([7u8; 32]);
        let b = StdRng::from_seed([7u8; 32]);
        assert_eq!(a, b);
        let mut z = StdRng::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        assert_ne!(z.next_u64() | z.next_u64(), 0);
    }
}
