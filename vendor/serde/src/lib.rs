//! Vendored, dependency-free stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations — nothing serializes through serde yet
//! (JSON emitted by the bench harness is hand-formatted). With no
//! network access to fetch the real crate, these derives expand to
//! nothing, keeping the annotations compiling until the real dependency
//! can be restored, at which point this shim is deleted from
//! `[patch]`/workspace config and the code is untouched.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
