//! Quickstart: estimate an expensive count with LSS in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learning_to_sample::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A population of 5 000 2-d points with cluster structure.
    let n = 5_000usize;
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let xs: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    let table = Arc::new(lts_table::table::table_of_floats(&[
        ("x", &xs),
        ("y", &ys),
    ])?);

    // The expensive predicate: "at most 12 points within distance 0.3"
    // (the paper's Example 1). Evaluating it honestly scans neighbours.
    let q = lts_data::neighborhood::neighbors_fast_predicate(&table, "x", "y", 0.3, 12)?;
    let problem = CountingProblem::new(Arc::clone(&table), Arc::new(q), &["x", "y"])?;

    // Ground truth for reference (normally you would not compute this —
    // it costs an evaluation per object).
    let truth = lts_data::neighborhood::exact_neighbors_count(&xs, &ys, 0.3, 12);
    problem.reset_meter();

    // LSS with a 100-tree random forest, 2% labeling budget.
    let budget = n / 50;
    let lss = Lss::default();
    let mut rng = StdRng::seed_from_u64(7);
    let report = lss.estimate(&problem, budget, &mut rng)?;

    println!("population        : {n}");
    println!("labeling budget   : {budget} predicate evaluations");
    println!("evaluations spent : {}", report.evals);
    println!("true count        : {truth}");
    println!(
        "LSS estimate      : {:.0}  (95% CI [{:.0}, {:.0}])",
        report.count(),
        report.estimate.interval.lo,
        report.estimate.interval.hi
    );
    println!(
        "overhead          : {:.2}% of wall time (the fast demo predicate makes q cheap; \
the paper's regime has q dominating)",
        report.timings.overhead_fraction() * 100.0
    );
    Ok(())
}
