//! Bring your own expensive predicate: any `Fn(&Table, usize) -> bool`
//! closure (a "user-defined function" in the paper's terms) works with
//! every estimator. This example counts rows whose iterated logistic-map
//! trajectory stays bounded — a deliberately opaque, CPU-heavy UDF no
//! database optimizer could see through.
//!
//! ```sh
//! cargo run --release --example custom_predicate
//! ```

use learning_to_sample::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8_000usize;
    // Feature: the logistic-map parameter r ∈ [2.5, 4.0].
    let rs: Vec<f64> = (0..n).map(|i| 2.5 + 1.5 * (i as f64 / n as f64)).collect();
    let table = Arc::new(lts_table::table::table_of_floats(&[("r", &rs)])?);

    // The expensive UDF: iterate x ← r·x·(1−x) for 20 000 steps and ask
    // whether the trajectory ever visits the band [0.49, 0.51] after a
    // burn-in — chaotic in r, so the classifier has real work to do.
    let q = FnPredicate::new("logistic-band", |t: &Table, i| {
        let r = t.floats("r")?[i];
        let mut x = 0.2f64;
        let mut hit = false;
        for step in 0..20_000 {
            x = r * x * (1.0 - x);
            if step > 1_000 && (0.49..=0.51).contains(&x) {
                hit = true;
                break;
            }
        }
        Ok(hit)
    });
    let problem = CountingProblem::new(Arc::clone(&table), Arc::new(q), &["r"])?;

    let budget = 240; // 3% of the population
    println!("population {n}, budget {budget} UDF evaluations\n");
    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        (
            "QLCC",
            Box::new(Qlcc {
                learn: LearnPhaseConfig {
                    spec: ClassifierSpec::Knn { k: 5 },
                    ..LearnPhaseConfig::default()
                },
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn: LearnPhaseConfig {
                    spec: ClassifierSpec::Knn { k: 5 },
                    ..LearnPhaseConfig::default()
                },
                ..Lss::default()
            }),
        ),
    ];
    for (name, est) in &estimators {
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(3);
        let report = est.estimate(&problem, budget, &mut rng)?;
        let ci = if report.has_interval {
            format!(
                "[{:.0}, {:.0}]",
                report.estimate.interval.lo, report.estimate.interval.hi
            )
        } else {
            "(no interval: learning-only estimate)".into()
        };
        println!(
            "{name:<5} estimate {:>7.0}  {ci}  ({} evals, {:?} in q)",
            report.count(),
            report.evals,
            report.timings.labeling
        );
    }

    // The honest answer, for the curious (costs n evaluations):
    println!("\ntrue count: {}", problem.exact_count()?);
    Ok(())
}
