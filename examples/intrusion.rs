//! The paper's Neighbors scenario on intrusion-detection-like data:
//! count isolated records ("no more than k records within distance d"),
//! demonstrating active learning and classifier choice.
//!
//! ```sh
//! cargo run --release --example intrusion
//! ```

use learning_to_sample::prelude::*;
use lts_data::{neighbors_scenario, SelectivityLevel};
use lts_learn::active::AugmentConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = neighbors_scenario(12_000, SelectivityLevel::XS, 23)?;
    println!("scenario: {}", scenario.describe());
    let budget = scenario.problem.n() / 50;
    let trials = 15;
    println!("budget {budget} evaluations, {trials} trials\n");

    // LSS with three classifier choices, one of them augmented by a
    // single uncertainty-sampling step (the paper's recommendation).
    let configs: Vec<(&str, LearnPhaseConfig)> = vec![
        (
            "LSS + RF",
            LearnPhaseConfig {
                spec: ClassifierSpec::RandomForest { n_trees: 100 },
                augment: None,
                model_seed: 1,
            },
        ),
        (
            "LSS + kNN + active",
            LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 5 },
                augment: Some(AugmentConfig {
                    steps: 1,
                    per_step: 40,
                    pool_size: 2000,
                }),
                model_seed: 1,
            },
        ),
        (
            "LSS + Random (worst case)",
            LearnPhaseConfig {
                spec: ClassifierSpec::Random,
                augment: None,
                model_seed: 1,
            },
        ),
    ];

    println!(
        "{:<28} {:>10} {:>10} {:>9}",
        "configuration", "median", "IQR", "cover%"
    );
    for (name, learn) in configs {
        let est = Lss {
            learn,
            ..Lss::default()
        };
        let stats = run_trials(
            &scenario.problem,
            &est,
            budget,
            trials,
            5,
            Some(scenario.truth as f64),
        )?;
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>9.0}",
            name,
            stats.median(),
            stats.iqr(),
            stats.coverage.unwrap_or(f64::NAN) * 100.0
        );
    }
    println!("\ntruth: {}", scenario.truth);
    println!("expect: good classifiers tighten the IQR; Random stays unbiased but wide.");
    Ok(())
}
