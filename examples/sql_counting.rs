//! The paper's §2 decomposition on the table engine: take a GROUP
//! BY/HAVING counting query (Q1), materialize the object set with a
//! DISTINCT projection (Q2), wrap the per-object HAVING condition as a
//! correlated aggregate subquery predicate (Q3), and estimate the count.
//!
//! ```sh
//! cargo run --release --example sql_counting
//! ```

use learning_to_sample::prelude::*;
use lts_table::{distinct_project, AggThresholdPredicate, CmpOp};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base table L = R = D(id, x, y): 4 000 points.
    let n = 4_000usize;
    let mut state = 9u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) % 500) as f64 / 10.0
    };
    let xs: Vec<f64> = (0..n).map(|_| next()).collect();
    let ys: Vec<f64> = (0..n).map(|_| next()).collect();
    let d = Arc::new(lts_table::table::table_of_floats(&[
        ("x", &xs),
        ("y", &ys),
    ])?);

    // Q1 (conceptually):
    //   SELECT COUNT(*) FROM (
    //     SELECT o1.x, o1.y FROM D o1, D o2
    //     WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
    //     GROUP BY o1.x, o1.y HAVING COUNT(*) < 40)
    //
    // Q2: the object set = SELECT DISTINCT x, y FROM D.
    let objects = Arc::new(distinct_project(&d, &["x", "y"], None)?);
    println!("Q2 object set: {} distinct (x, y) groups", objects.len());

    // Q3: the per-object predicate as a correlated aggregate subquery
    // (dominator count < 40), evaluated by nested-loop scan of D.
    let dominate = Expr::col("x")
        .ge(Expr::outer("x"))
        .and(Expr::col("y").ge(Expr::outer("y")))
        .and(
            Expr::col("x")
                .gt(Expr::outer("x"))
                .or(Expr::col("y").gt(Expr::outer("y"))),
        );
    let q3 = AggThresholdPredicate::count("q3-skyband", Arc::clone(&d), dominate, CmpOp::Lt, 40);

    // The same predicate can be written as text — the paper's native
    // SQL-condition form — and parsed into an identical expression tree.
    let registry = TableRegistry::new().register("D", Arc::clone(&d));
    let parsed = parse_condition(
        "(SELECT COUNT(*) FROM D \
         WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < 40",
        &registry,
    )?;
    let parsed_q3 = lts_table::ExprPredicate::new("q3-parsed", parsed);
    for idx in (0..objects.len()).step_by(objects.len() / 16) {
        assert_eq!(
            ObjectPredicate::eval(&parsed_q3, &objects, idx)?,
            ObjectPredicate::eval(&q3, &objects, idx)?,
            "parsed and hand-built predicates disagree on object {idx}"
        );
    }
    println!("parsed Q3 condition agrees with the hand-built predicate");

    let problem = CountingProblem::new(Arc::clone(&objects), Arc::new(q3), &["x", "y"])?;

    // Estimate with a 5% budget and compare against the full evaluation.
    let budget = objects.len() / 20;
    let mut rng = StdRng::seed_from_u64(31);
    let report = Lss::default().estimate(&problem, budget, &mut rng)?;
    println!(
        "LSS estimate of COUNT(Q1): {:.0}  (95% CI [{:.0}, {:.0}], {} q-evals)",
        report.count(),
        report.estimate.interval.lo,
        report.estimate.interval.hi,
        report.evals
    );
    let exact = problem.exact_count()?;
    println!(
        "exact COUNT(Q1):           {exact}  ({} q-evals)",
        objects.len()
    );
    Ok(())
}
