//! The paper's Sports scenario: how large is the k-skyband of
//! player-season pitching stats? Compares SRS, SSP, LWS, and LSS at the
//! same labeling budget over repeated trials.
//!
//! ```sh
//! cargo run --release --example skyband
//! ```

use learning_to_sample::prelude::*;
use lts_data::{sports_scenario, SelectivityLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = sports_scenario(10_000, SelectivityLevel::S, 11)?;
    println!("scenario: {}", scenario.describe());

    let budget = scenario.problem.n() / 50; // 2%
    let trials = 20;
    println!("budget {budget} evaluations, {trials} trials per estimator\n");

    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        ("SSP", Box::new(Ssp::default())),
        ("LWS", Box::new(Lws::default())),
        ("LSS", Box::new(Lss::default())),
    ];

    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>9}",
        "est", "median", "IQR", "RMSE", "cover%"
    );
    for (name, est) in &estimators {
        let stats = run_trials(
            &scenario.problem,
            est.as_ref(),
            budget,
            trials,
            99,
            Some(scenario.truth as f64),
        )?;
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>10.1} {:>9.0}",
            name,
            stats.median(),
            stats.iqr(),
            stats.rmse.unwrap_or(f64::NAN),
            stats.coverage.unwrap_or(f64::NAN) * 100.0
        );
    }
    println!("\ntruth: {}", scenario.truth);
    println!("expect: LSS and LWS tighter than SSP and SRS.");
    Ok(())
}
