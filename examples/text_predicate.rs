//! Counting with a predicate written as *text* — a miniature CLI over
//! the whole pipeline: parse a SQL-ish condition, wrap it as the
//! expensive predicate `q`, and estimate `C(O, q)` with every estimator
//! the paper compares.
//!
//! ```sh
//! cargo run --release --example text_predicate
//! cargo run --release --example text_predicate -- \
//!     "(SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < 25" 0.05
//! cargo run --release --example text_predicate -- "x > 10 AND y < 90" 0.05 mydata.csv
//! ```
//!
//! The first argument is the condition (`o.` marks the object row;
//! subqueries scan the registered table `D`), the second the budget as
//! a fraction of the population, the optional third a CSV file to use
//! as the population instead of the built-in synthetic points (its
//! float columns become the classifier features).

use learning_to_sample::prelude::*;
use lts_table::ExprPredicate;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let condition = args.get(1).map(String::as_str).unwrap_or(
        "(SELECT COUNT(*) FROM D \
         WHERE SQRT(POWER(o.x - x, 2) + POWER(o.y - y, 2)) <= 6.0) <= 40",
    );
    let budget_frac: f64 = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(0.05);

    // Population: a CSV file if given, else 3 000 clustered 2-d points.
    let d = if let Some(path) = args.get(3) {
        Arc::new(lts_table::read_csv_path(
            path,
            lts_table::CsvOptions::default(),
        )?)
    } else {
        let n = 3_000usize;
        let mut state = 77u64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let (cx, cy) = if uniform() < 0.5 {
                (30.0, 30.0)
            } else {
                (70.0, 65.0)
            };
            xs.push((cx + (uniform() - 0.5) * 55.0).clamp(0.0, 100.0));
            ys.push((cy + (uniform() - 0.5) * 55.0).clamp(0.0, 100.0));
        }
        Arc::new(lts_table::table::table_of_floats(&[
            ("x", &xs),
            ("y", &ys),
        ])?)
    };
    let n = d.len();

    // Classifier features: every float column of the population.
    let feature_cols: Vec<String> = d
        .schema()
        .fields()
        .iter()
        .filter(|f| f.data_type == lts_table::DataType::Float)
        .map(|f| f.name.clone())
        .collect();
    let feature_refs: Vec<&str> = feature_cols.iter().map(String::as_str).collect();

    // Parse the condition against a registry exposing the table as `D`.
    let registry = TableRegistry::new().register("D", Arc::clone(&d));
    let expr = parse_condition(condition, &registry)?;
    println!("condition: {condition}");
    let q = ExprPredicate::new("text-q", expr);
    let problem = CountingProblem::new(Arc::clone(&d), Arc::new(q), &feature_refs)?;

    let budget = ((n as f64 * budget_frac) as usize).max(40);
    println!("population N = {n}, budget = {budget} q-evaluations\n");

    let learn = LearnPhaseConfig::default();
    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        ("SSP", Box::new(Ssp::default())),
        ("QLCC", Box::new(Qlcc { learn })),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                min_pilots_per_stratum: 3,
                ..Lss::default()
            }),
        ),
    ];

    println!(
        "{:>5} | {:>9} | {:>22} | evals",
        "est", "count", "95% interval"
    );
    for (name, est) in estimators {
        let mut rng = StdRng::seed_from_u64(2_024);
        problem.reset_meter();
        match est.estimate(&problem, budget, &mut rng) {
            Ok(r) => {
                let interval = if r.has_interval {
                    format!(
                        "[{:>8.0}, {:>8.0}]",
                        r.estimate.interval.lo, r.estimate.interval.hi
                    )
                } else {
                    "(point estimate only)".to_string()
                };
                println!(
                    "{name:>5} | {:>9.0} | {interval:>22} | {:>5}",
                    r.count(),
                    r.evals
                );
            }
            Err(e) => println!("{name:>5} | failed: {e}"),
        }
    }

    let exact = problem.exact_count()?;
    println!("{:>5} | {exact:>9} | {:>22} | {n:>5}", "exact", "—");
    Ok(())
}
