//! Budget planning with the serving layer's planner + the design-time
//! quality forecast.
//!
//! The user states an accuracy target; `lts_serve::BudgetPlanner` —
//! the one planner implementation, shared with the service's admission
//! control — turns it into the cheapest sufficient labeling budget (or
//! routes to the exact census when sampling cannot win). LSS then
//! *forecasts* its interval halfwidth from the stage-1 design before
//! any stage-2 label is drawn (Eq. 4, the paper's concluding sketch),
//! and the realized interval is printed next to it. A second pass
//! shows `refine`: shrinking the budget to what the achieved width
//! actually justifies. The sequential LWS variant closes with the
//! complementary trick: stop early once the running interval is tight.
//!
//! ```sh
//! cargo run --release --example budget_planning
//! ```

use learning_to_sample::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Sports workload at M selectivity.
    let scenario = lts_data::sports_scenario(8_000, lts_data::SelectivityLevel::M, 11)?;
    let problem = &scenario.problem;
    let n = problem.n();
    let truth = scenario.truth as f64;
    println!("{} (truth = {truth})\n", scenario.describe());

    // One planner for the library and the service alike.
    let planner = BudgetPlanner::default();
    let lss = Lss {
        min_pilots_per_stratum: 3,
        ..Lss::default()
    };

    println!(
        "{:>8} | {:>6} | {:>17} | {:>9} | {:>18}",
        "target ±", "budget", "forecast ±halfwid", "estimate", "realized 95% CI"
    );
    let mut refine_input = None;
    for rel in [0.10f64, 0.05, 0.025, 0.0125] {
        let target_counts = rel * n as f64;
        match planner.plan(n, Target::AbsWidth(target_counts))? {
            Route::Exact => {
                println!(
                    "{target_counts:>8.0} | {:>6} | census is cheaper at this accuracy",
                    n
                );
            }
            Route::Estimate { budget } => {
                let mut rng = StdRng::seed_from_u64(99);
                let r = lss.estimate(problem, budget, &mut rng)?;
                let f = r.forecast.expect("LSS always forecasts");
                println!(
                    "{target_counts:>8.0} | {budget:>6} | {:>17.0} | {:>9.0} | [{:>7.0}, {:>7.0}]",
                    f.predicted_halfwidth,
                    r.count(),
                    r.estimate.interval.lo,
                    r.estimate.interval.hi,
                );
                let achieved = (r.estimate.interval.hi - r.estimate.interval.lo) / 2.0;
                refine_input = Some((budget, achieved, target_counts));
            }
        }
    }

    // The planner sizes budgets by the distribution-free SRS bound;
    // LSS usually lands far inside the target. `refine` turns the
    // surplus into savings on the next ask of the same query.
    if let Some((budget, achieved, target)) = refine_input {
        match planner.refine(budget, achieved, target, n) {
            Route::Estimate { budget: cheaper } => {
                println!(
                    "\nrefine: achieved ±{achieved:.0} at budget {budget} → \
                     next ask of this query needs only ~{cheaper} labels"
                );
            }
            Route::Exact => println!("\nrefine: target needs a census"),
        }
    }

    // A peek inside the planner's estimator: the shared scoring
    // pipeline every learned estimator runs. Train the proxy on a
    // small labeled sample, batch-score the whole population
    // partition-parallel, and order it by (score, id) — the ordering
    // LSS designs its strata over. The score deciles show how much of
    // the population the proxy already separates confidently (cheap
    // strata) versus leaves uncertain (where the design concentrates
    // budget).
    println!("\nscoring pipeline: population ordered by the learned proxy g");
    let train_ids: Vec<usize> = (0..n).step_by(n / 200).collect();
    let train_labels: Vec<bool> = train_ids
        .iter()
        .map(|&i| problem.label(i))
        .collect::<Result<_, _>>()?;
    let mut proxy = ClassifierSpec::default().build(3);
    proxy.fit(&problem.features().gather(&train_ids), &train_labels)?;
    let ordered = ScoredPopulation::score_all(problem, proxy.as_ref())?.into_ordered();
    let deciles: Vec<String> = (0..=10)
        .map(|d| {
            let pos = (d * (ordered.n() - 1)) / 10;
            format!("{:.2}", ordered.sorted_scores()[pos])
        })
        .collect();
    println!("  g deciles over the ordering: {}", deciles.join(" "));

    // Sequential LWS: give it a generous budget and a ±10% target; it
    // stops as soon as the Des Raj running interval is tight enough.
    println!("\nsequential LWS, target halfwidth 10% of the estimate:");
    let seq = LwsSequential {
        target_relative_halfwidth: 0.10,
        ..LwsSequential::default()
    };
    let budget = 800;
    let mut rng = StdRng::seed_from_u64(7);
    let r = seq.estimate(problem, budget, &mut rng)?;
    println!(
        "  spent {} of {budget} labels → estimate {:.0} ∈ [{:.0}, {:.0}] (truth {truth})",
        r.evals,
        r.count(),
        r.estimate.interval.lo,
        r.estimate.interval.hi,
    );
    for note in &r.notes {
        println!("  note: {note}");
    }
    Ok(())
}
