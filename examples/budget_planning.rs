//! Budget planning with the design-time quality forecast — the paper's
//! concluding future-work sketch, implemented.
//!
//! LSS's stage-1 design knows, before a single stage-2 label is drawn,
//! how tight its final interval will be: Eq. (4) evaluated with the
//! pilot variances and the chosen allocation. This demo sweeps budgets,
//! prints the *forecast* interval halfwidth next to the *realized*
//! estimate, and shows how a user would pick the cheapest budget that
//! meets an accuracy target. The sequential LWS variant then shows the
//! complementary trick: stop early the moment the running interval is
//! tight enough.
//!
//! ```sh
//! cargo run --release --example budget_planning
//! ```

use learning_to_sample::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Sports workload at M selectivity.
    let scenario = lts_data::sports_scenario(8_000, lts_data::SelectivityLevel::M, 11)?;
    let problem = &scenario.problem;
    let truth = scenario.truth as f64;
    println!("{} (truth = {truth})\n", scenario.describe());

    // Sweep budgets; the forecast is available before stage 2 spends
    // anything, so a dissatisfied user could abort and re-budget.
    println!(
        "{:>7} | {:>17} | {:>9} | {:>18}",
        "budget", "forecast ±halfwid", "estimate", "realized 95% CI"
    );
    let lss = Lss {
        min_pilots_per_stratum: 3,
        ..Lss::default()
    };
    for budget in [100usize, 200, 400, 800] {
        let mut rng = StdRng::seed_from_u64(99);
        let r = lss.estimate(problem, budget, &mut rng)?;
        let f = r.forecast.expect("LSS always forecasts");
        println!(
            "{budget:>7} | {:>17.0} | {:>9.0} | [{:>7.0}, {:>7.0}]",
            f.predicted_halfwidth,
            r.count(),
            r.estimate.interval.lo,
            r.estimate.interval.hi,
        );
    }

    // A peek inside the planner: the shared scoring pipeline every
    // learned estimator runs. Train the proxy on a small labeled
    // sample, batch-score the whole population partition-parallel, and
    // order it by (score, id) — the ordering LSS designs its strata
    // over. The score deciles show how much of the population the proxy
    // already separates confidently (cheap strata) versus leaves
    // uncertain (where the design concentrates budget).
    println!("\nscoring pipeline: population ordered by the learned proxy g");
    let train_ids: Vec<usize> = (0..problem.n()).step_by(problem.n() / 200).collect();
    let train_labels: Vec<bool> = train_ids
        .iter()
        .map(|&i| problem.label(i))
        .collect::<Result<_, _>>()?;
    let mut proxy = ClassifierSpec::default().build(3);
    proxy.fit(&problem.features().gather(&train_ids), &train_labels)?;
    let ordered = ScoredPopulation::score_all(problem, proxy.as_ref())?.into_ordered();
    let deciles: Vec<String> = (0..=10)
        .map(|d| {
            let pos = (d * (ordered.n() - 1)) / 10;
            format!("{:.2}", ordered.sorted_scores()[pos])
        })
        .collect();
    println!("  g deciles over the ordering: {}", deciles.join(" "));

    // Sequential LWS: give it a generous budget and a ±10% target; it
    // stops as soon as the Des Raj running interval is tight enough.
    println!("\nsequential LWS, target halfwidth 10% of the estimate:");
    let seq = LwsSequential {
        target_relative_halfwidth: 0.10,
        ..LwsSequential::default()
    };
    let budget = 800;
    let mut rng = StdRng::seed_from_u64(7);
    let r = seq.estimate(problem, budget, &mut rng)?;
    println!(
        "  spent {} of {budget} labels → estimate {:.0} ∈ [{:.0}, {:.0}] (truth {truth})",
        r.evals,
        r.count(),
        r.estimate.interval.lo,
        r.estimate.interval.hi,
    );
    for note in &r.notes {
        println!("  note: {note}");
    }
    Ok(())
}
