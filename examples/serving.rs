//! The amortization argument, live: one skyband query asked 100 times.
//!
//! The paper's economics only pay off if the trained sampler is
//! *reused* — this demo starts the in-process `lts-serve` service,
//! submits the same k-skyband count query 100 times (the first ask
//! cold, periodic `fresh` asks for independent re-estimates, plain
//! re-asks in between), and prints what each serving mode spent.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use learning_to_sample::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Sports workload at M selectivity; k calibrated by the
    // scenario builder.
    let scenario = lts_data::sports_scenario(6_000, lts_data::SelectivityLevel::M, 11)?;
    let k = match scenario.param {
        lts_data::QueryParam::K(k) => k,
        lts_data::QueryParam::D(_) => unreachable!("sports calibrates k"),
    };
    println!("{} — serving the skyband query 100x\n", scenario.describe());

    let mut service = Service::new(ServiceConfig::default());
    service.register_dataset("sports", scenario.table, &["strikeouts", "wins"])?;

    // The paper's Example-2 predicate as request text (a correlated
    // aggregate subquery over the registered dataset).
    let skyband = format!(
        "(SELECT COUNT(*) FROM sports WHERE strikeouts >= o.strikeouts AND \
         wins >= o.wins AND (strikeouts > o.strikeouts OR wins > o.wins)) < {k}"
    );

    let mut by_mode: std::collections::BTreeMap<&'static str, (u64, u64, f64)> =
        std::collections::BTreeMap::new();
    let mut first = None;
    for i in 0..100u64 {
        let t0 = Instant::now();
        let r = service.run(Request {
            id: i,
            dataset: "sports".into(),
            condition: skyband.clone(),
            // Every 10th ask wants a fresh, independent estimate; the
            // rest are happy with the cached answer.
            fresh: i % 10 == 5,
            target: Target::Budget(300),
        });
        let wall = t0.elapsed().as_secs_f64();
        assert!(r.ok, "{:?}", r.error);
        let slot = by_mode.entry(r.served).or_insert((0, 0, 0.0));
        slot.0 += 1;
        slot.1 += r.evals as u64;
        slot.2 += wall;
        if first.is_none() {
            first = Some(r.clone());
        }
        if i == 0 || i == 5 || i == 10 {
            println!(
                "ask {i:>3}: served {:<6} estimate {:>6.0} ∈ [{:>6.0}, {:>6.0}]  \
                 {:>3} q-evals  {:>7.2} ms",
                r.served,
                r.estimate,
                r.lo,
                r.hi,
                r.evals,
                wall * 1e3,
            );
        }
    }

    println!(
        "\n{:<8} {:>5} {:>12} {:>12} {:>10}",
        "mode", "asks", "evals/ask", "ms/ask", "evals"
    );
    for (mode, (n, evals, wall)) in &by_mode {
        println!(
            "{mode:<8} {n:>5} {:>12.1} {:>12.3} {evals:>10}",
            *evals as f64 / *n as f64,
            wall / *n as f64 * 1e3,
        );
    }
    let stats = service.stats();
    let cold = stats.oracle_evals_cold as f64 / stats.cold.max(1) as f64;
    let warm = stats.oracle_evals_warm as f64 / stats.warm.max(1) as f64;
    println!(
        "\ncold start spent {cold:.0} q-evals; each warm re-estimate {warm:.0} \
         ({:.1}x fewer); {} asks answered from the result cache for free \
         ({} q-evals avoided).",
        cold / warm.max(1.0),
        stats.cached,
        stats.oracle_evals_saved,
    );
    println!(
        "service state: {} catalog entries, {} warm models, {} cached results",
        service.catalog_len(),
        service.store_len(),
        service.cache_len(),
    );
    Ok(())
}
