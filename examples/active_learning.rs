//! Figure 1, as a runnable demo: uncertainty-sampling active learning
//! sharpens a kNN decision boundary for the few-neighbors predicate.
//!
//! Reproduces the paper's §3.2 walkthrough — train a kNN classifier on
//! a 5% random sample, then repeatedly label only the objects the
//! classifier is most uncertain about (`|g − 0.5|` minimal) and
//! retrain. Accuracy over the full population and the width of the
//! uncertain band both improve monotonically, while each step labels a
//! tiny fraction of the data.
//!
//! ```sh
//! cargo run --release --example active_learning
//! ```

use learning_to_sample::prelude::*;
use lts_learn::{select_uncertain, Classifier, Knn, Matrix};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure-1 population: 2-d points, q = "≤ k neighbors within d".
    // Clustered data makes the density level-set — the decision
    // boundary — geometrically irregular, like the paper's heat maps.
    let n = 4_000usize;
    let mut state = 5u64;
    let mut uniform = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let centers = [(20.0, 25.0), (70.0, 30.0), (45.0, 75.0), (85.0, 80.0)];
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        if uniform() < 0.25 {
            // Sparse uniform background.
            xs.push(uniform() * 100.0);
            ys.push(uniform() * 100.0);
        } else {
            // Gaussian blob around a random center (Box–Muller).
            let (cx, cy) = centers[(uniform() * 4.0) as usize % 4];
            let r = (-2.0 * uniform().max(1e-12).ln()).sqrt() * 8.0;
            let theta = 2.0 * std::f64::consts::PI * uniform();
            xs.push((cx + r * theta.cos()).clamp(0.0, 100.0));
            ys.push((cy + r * theta.sin()).clamp(0.0, 100.0));
        }
    }
    let table = Arc::new(lts_table::table::table_of_floats(&[
        ("x", &xs),
        ("y", &ys),
    ])?);

    // Calibrate k to the 40th percentile of neighbor counts so q
    // splits the population ~40/60 along the density level-set.
    let d = 5.0;
    let mut counts: Vec<usize> = (0..n)
        .map(|i| {
            xs.iter()
                .zip(&ys)
                .filter(|&(&x, &y)| {
                    let (dx, dy) = (x - xs[i], y - ys[i]);
                    dx * dx + dy * dy <= d * d
                })
                .count()
        })
        .collect();
    counts.sort_unstable();
    let k = counts[(0.4 * n as f64) as usize] as i64;
    let q = lts_data::neighborhood::neighbors_fast_predicate(&table, "x", "y", d, k)?;
    let problem = CountingProblem::new(Arc::clone(&table), Arc::new(q), &["x", "y"])?;
    let truth: Vec<bool> = (0..n).map(|i| problem.label(i).unwrap()).collect();

    // Initial training set: 5% SRS (the paper starts from 2 500 of 50k).
    let features: &Matrix = problem.features();
    let mut rng = StdRng::seed_from_u64(17);
    let mut labeled = lts_sampling::sample_without_replacement(&mut rng, n / 20, n)?;
    let mut model = Knn::new(5)?;

    println!("step | labeled | accuracy | uncertain band (|g-0.5| < 0.4)");
    for step in 0..3 {
        // (Re)train on everything labeled so far.
        let x = features.gather(&labeled);
        let y: Vec<bool> = labeled.iter().map(|&i| truth[i]).collect();
        model.fit(&x, &y)?;

        // Population-wide accuracy and the size of the uncertain band —
        // the quantities Figure 1's heat maps visualize. Scored through
        // the shared pipeline (vectorized batch kernel), not a per-row
        // score loop.
        let scores = ScoredPopulation::score_all(&problem, &model)?;
        let mut correct = 0usize;
        let mut uncertain = 0usize;
        for (&g, &label) in scores.scores().iter().zip(&truth) {
            if (g >= 0.5) == label {
                correct += 1;
            }
            if (g - 0.5).abs() < 0.4 {
                uncertain += 1;
            }
        }
        println!(
            "   {step} | {:>7} | {:>7.2}% | {:>5.1}% of population",
            labeled.len(),
            100.0 * correct as f64 / n as f64,
            100.0 * uncertain as f64 / n as f64,
        );

        // Augment: label the 100 objects the classifier is least sure
        // about (exactly the paper's selection rule).
        if step < 2 {
            let in_set: std::collections::HashSet<usize> = labeled.iter().copied().collect();
            let candidates: Vec<usize> = (0..n).filter(|i| !in_set.contains(i)).collect();
            let picked = select_uncertain(&model, features, &candidates, 100)?;
            labeled.extend(picked);
        }
    }

    println!(
        "\nEach step labels 100 uncertain objects (~2.5% of the population) and \
         sharpens the boundary —\nthe effect the paper's Figure-1 heat maps show."
    );
    Ok(())
}
