//! Integration of the table engine with the counting framework: the
//! paper's Q1 → (Q2, Q3) decomposition must agree with the specialized
//! exact algorithms and with full SQL evaluation.

use lts_data::neighborhood::{exact_neighbors_count, neighbors_sql_predicate};
use lts_data::skyband::{exact_skyband_count, skyband_sql_predicate};
use lts_table::table::table_of_floats;
use lts_table::{distinct_project, CountQuery, Expr};
use std::sync::Arc;

fn pseudo(n: usize, seed: u64, vals: u64) -> (Vec<f64>, Vec<f64>) {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) % vals) as f64
    };
    (
        (0..n).map(|_| next()).collect(),
        (0..n).map(|_| next()).collect(),
    )
}

#[test]
fn skyband_sql_equals_specialized_sweep() {
    let (xs, ys) = pseudo(250, 17, 60);
    let d = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    for k in [1usize, 5, 20] {
        let q = skyband_sql_predicate(Arc::clone(&d), "x", "y", k as i64);
        let cq = CountQuery::new(Arc::clone(&d), Arc::new(q));
        assert_eq!(
            cq.exact_count().unwrap(),
            exact_skyband_count(&xs, &ys, k),
            "k={k}"
        );
    }
}

#[test]
fn neighbors_sql_equals_specialized_radii() {
    let (xs, ys) = pseudo(200, 23, 1000);
    // Spread into a plane.
    let xs: Vec<f64> = xs.iter().map(|&v| v / 100.0).collect();
    let ys: Vec<f64> = ys.iter().map(|&v| v / 100.0).collect();
    let d_table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    for &(d, k) in &[(0.5f64, 3usize), (1.5, 8)] {
        let q = neighbors_sql_predicate(Arc::clone(&d_table), "x", "y", d, k as i64);
        let cq = CountQuery::new(Arc::clone(&d_table), Arc::new(q));
        assert_eq!(
            cq.exact_count().unwrap(),
            exact_neighbors_count(&xs, &ys, d, k),
            "d={d}, k={k}"
        );
    }
}

#[test]
fn q2_distinct_projection_feeds_q3() {
    // Duplicate (x, y) groups collapse in Q2; the group count over Q2
    // differs from the row count over the base table.
    let xs = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0];
    let ys = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0];
    let base = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    let objects = Arc::new(distinct_project(&base, &["x", "y"], None).unwrap());
    assert_eq!(objects.len(), 3);
    // Q3 over the distinct objects: dominated by < 1 (the skyline).
    let q = skyband_sql_predicate(Arc::clone(&base), "x", "y", 1);
    let cq = CountQuery::new(objects, Arc::new(q));
    // Only (3, 3) is undominated among the distinct groups.
    assert_eq!(cq.exact_count().unwrap(), 1);
}

#[test]
fn theta_l_filter_restricts_the_object_set() {
    let xs = [1.0, 2.0, 3.0, 4.0];
    let ys = [4.0, 3.0, 2.0, 1.0];
    let base = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    let theta_l = Expr::col("x").le(Expr::lit(2.0));
    let objects = distinct_project(&base, &["x", "y"], Some(&theta_l)).unwrap();
    assert_eq!(objects.len(), 2);
}
