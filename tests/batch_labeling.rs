//! Contracts of the batched labeling pipeline (the budget currency of
//! every estimator):
//!
//! 1. `eval_batch` agrees with per-row `eval` for arbitrary predicates
//!    and index multisets;
//! 2. the meter advances by exactly the number of *unique* indices a
//!    `Labeler` sends to the oracle — duplicates, revisits, and
//!    interleaved single/batch calls cost nothing extra;
//! 3. parallel `run_trials` is bit-identical to the sequential runner
//!    for a fixed seed, for every estimator in the suite;
//! 4. no estimator exceeds its unique-label budget under batch
//!    evaluation, as observed by the shared `Metered` counters.

use learning_to_sample::prelude::*;
use lts_core::{run_trials_with, Labeler, TrialExecution};
use lts_table::table::table_of_floats;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// A 1-d problem whose labels are a deterministic hash of the index —
/// adversarially unlearnable, so estimators exercise their general
/// paths.
fn hash_problem(n: usize, seed: u64) -> CountingProblem {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let p: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("hash", move |t: &Table, i| {
        let x = t.floats("x")?[i];
        let mut h = seed ^ (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        Ok(h & 3 == 0)
    }));
    CountingProblem::new(t, p, &["x"]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batch labels equal single-row labels, element by element.
    #[test]
    fn batch_labels_agree_with_single_row(
        n in 5usize..200,
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..10_000, 1..80),
    ) {
        let problem = hash_problem(n, seed);
        let idxs: Vec<usize> = picks.iter().map(|&p| p % n).collect();
        let batch = problem.label_batch(&idxs).unwrap();
        for (k, &i) in idxs.iter().enumerate() {
            prop_assert_eq!(batch[k], problem.label(i).unwrap(), "index {}", i);
        }
    }

    /// The meter counts exactly the unique indices a labeler touched,
    /// no matter how requests are split between batches and single
    /// rows or how often indices repeat.
    #[test]
    fn meter_counts_exactly_unique_labels(
        n in 5usize..120,
        seed in any::<u64>(),
        requests in proptest::collection::vec(
            proptest::collection::vec(0usize..10_000, 0..20), 1..10),
    ) {
        let problem = hash_problem(n, seed);
        problem.reset_meter();
        let mut labeler = Labeler::new(&problem);
        let mut unique = HashSet::new();
        for (r, req) in requests.iter().enumerate() {
            let idxs: Vec<usize> = req.iter().map(|&p| p % n).collect();
            if r % 3 == 2 && !idxs.is_empty() {
                // Exercise the single-row path against the same cache.
                for &i in &idxs {
                    labeler.label(i).unwrap();
                    unique.insert(i);
                }
            } else {
                labeler.label_batch(&idxs).unwrap();
                unique.extend(idxs);
            }
            prop_assert_eq!(labeler.unique_evals(), unique.len());
            prop_assert_eq!(problem.predicate_stats().evals, unique.len() as u64);
        }
    }

    /// Parallel trials reproduce sequential trials bit for bit.
    #[test]
    fn parallel_trials_bit_identical(
        n in 60usize..150,
        seed in any::<u64>(),
        base_seed in any::<u64>(),
    ) {
        let problem = hash_problem(n, seed);
        let est = Srs::default();
        let budget = n / 3;
        let seq = run_trials_with(
            &problem, &est, budget, 8, base_seed, None, TrialExecution::Sequential,
        ).unwrap();
        let par = run_trials_with(
            &problem, &est, budget, 8, base_seed, None, TrialExecution::Parallel,
        ).unwrap();
        prop_assert_eq!(seq.estimates, par.estimates);
        prop_assert_eq!(seq.mean_evals, par.mean_evals);
    }
}

/// The oracle's internal partition-parallelism (an `ExprPredicate`
/// batch fans out across worker threads and chunks since PR 3) must
/// change neither the labels nor the meter's exact unique-evaluation
/// accounting — one oracle call per batch, `evals` advanced by the
/// deduped request size.
#[test]
fn partition_parallel_oracle_keeps_labels_and_meter_exact() {
    let n = 40_000; // large enough to cross the parallel chunking threshold
    let xs: Vec<f64> = (0..n).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let p: Arc<dyn ObjectPredicate> = Arc::new(lts_table::ExprPredicate::new(
        "x>half",
        lts_table::Expr::col("x").gt(lts_table::Expr::lit(0.5)),
    ));
    let problem = CountingProblem::new(t, p, &["x"]).unwrap();
    let mut labeler = Labeler::new(&problem);
    // Duplicate-heavy request covering most of the population.
    let idxs: Vec<usize> = (0..60_000).map(|i| (i * 7) % n).collect();
    let labels = labeler.label_batch(&idxs).unwrap();
    assert_eq!(labels.len(), idxs.len());
    for (k, &i) in idxs.iter().enumerate() {
        assert_eq!(labels[k], xs[i] > 0.5, "row {i}");
    }
    let unique: HashSet<usize> = idxs.iter().copied().collect();
    assert_eq!(labeler.unique_evals(), unique.len());
    let stats = problem.predicate_stats();
    assert_eq!(stats.evals, unique.len() as u64, "meter must stay exact");
    assert_eq!(stats.calls, 1, "one oracle call per labeler batch");
}

/// Every estimator stays within its unique-label budget, verified via
/// the shared `Metered` counters across a parallel multi-trial run.
#[test]
fn no_estimator_exceeds_budget_under_batching() {
    let problem = hash_problem(400, 1234);
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::Knn { k: 3 },
        augment: None,
        model_seed: 3,
    };
    let one_dim = |grid| Ssp {
        grid: (grid, 1),
        feature_dims: (0, 0),
        min_per_stratum: 1,
    };
    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        ("SSP", Box::new(one_dim(4))),
        (
            "SSN",
            Box::new(Ssn {
                grid: (4, 1),
                feature_dims: (0, 0),
                ..Ssn::default()
            }),
        ),
        ("QLCC", Box::new(Qlcc { learn })),
        ("QLAC", Box::new(Qlac { learn, folds: 4 })),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LWS-HT",
            Box::new(LwsHt {
                learn,
                ..LwsHt::default()
            }),
        ),
        (
            "LWS-SEQ",
            Box::new(LwsSequential {
                learn,
                ..LwsSequential::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                ..Lss::default()
            }),
        ),
    ];
    let budget = 80;
    let trials = 6;
    for (name, est) in &estimators {
        problem.reset_meter();
        let stats = run_trials_with(
            &problem,
            est.as_ref(),
            budget,
            trials,
            42,
            None,
            TrialExecution::Parallel,
        )
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(
            stats.mean_evals <= budget as f64 + 1e-9,
            "{name}: mean unique evals {} exceed budget {budget}",
            stats.mean_evals
        );
        // The shared meter saw every oracle call across all trials; it
        // must never exceed trials × budget unique-label spends.
        let metered = problem.predicate_stats().evals;
        assert!(
            metered <= (trials * budget) as u64,
            "{name}: metered evals {metered} exceed {trials}×{budget}"
        );
    }
}
