//! Failure injection: every estimator must fail *cleanly* (typed error,
//! no panic) when the substrate misbehaves, and must degrade gracefully
//! on degenerate-but-legal populations (single-class labels, constant
//! features, census-sized budgets).

use learning_to_sample::prelude::*;
use lts_sampling::{weighted_sample_es, weighted_sample_fenwick};
use lts_table::table::table_of_floats;
use lts_table::TableError;
use std::sync::Arc;

fn estimators() -> Vec<(&'static str, Box<dyn CountEstimator>)> {
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::Knn { k: 3 },
        augment: None,
        model_seed: 3,
    };
    vec![
        ("SRS", Box::new(Srs::default())),
        // The problems below expose a single feature column, so the
        // surrogate grid for SSP/SSN is 1-d: both grid axes read it.
        (
            "SSP",
            Box::new(Ssp {
                feature_dims: (0, 0),
                ..Ssp::default()
            }),
        ),
        (
            "SSN",
            Box::new(Ssn {
                feature_dims: (0, 0),
                ..Ssn::default()
            }),
        ),
        ("QLCC", Box::new(Qlcc { learn })),
        ("QLAC", Box::new(Qlac { learn, folds: 4 })),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LWS-HT",
            Box::new(LwsHt {
                learn,
                ..LwsHt::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                min_pilots_per_stratum: 2,
                ..Lss::default()
            }),
        ),
    ]
}

/// A problem whose predicate fails on a slice of the population.
fn flaky_problem(n: usize, fail_from: usize) -> CountingProblem {
    let xs: Vec<f64> = (0..n).map(|i| f64::from((i % 61) as u32)).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let q = FnPredicate::new("flaky", move |t: &Table, i: usize| {
        if i >= fail_from {
            return Err(TableError::RowIndexOutOfRange {
                index: i,
                len: fail_from,
            });
        }
        Ok(t.floats("x")?[i] > 30.0)
    });
    CountingProblem::new(table, Arc::new(q), &["x"]).unwrap()
}

fn uniform_problem(n: usize, label: bool) -> CountingProblem {
    let xs: Vec<f64> = (0..n).map(|i| f64::from((i % 61) as u32)).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let q = FnPredicate::new("const", move |_t: &Table, _i: usize| Ok(label));
    CountingProblem::new(table, Arc::new(q), &["x"]).unwrap()
}

fn constant_feature_problem(n: usize, p: f64) -> CountingProblem {
    // Features carry zero signal; labels depend on the (hidden) index.
    let xs = vec![1.5; n];
    let cut = ((1.0 - p) * n as f64) as usize;
    let table = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let q = FnPredicate::new("hidden", move |_t: &Table, i: usize| Ok(i >= cut));
    CountingProblem::new(table, Arc::new(q), &["x"]).unwrap()
}

#[test]
fn erroring_predicate_propagates_cleanly() {
    // A predicate that fails on 80% of the population: with a large
    // enough budget every estimator must hit a failing object and
    // surface a typed error — never panic, never fabricate an estimate
    // from partial labels.
    let problem = flaky_problem(400, 80);
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            est.estimate(&problem, 200, &mut rng)
        }));
        let result = result.unwrap_or_else(|_| panic!("{name} panicked on a flaky predicate"));
        assert!(
            result.is_err(),
            "{name}: 200 labels over a population failing from index 80 \
             must touch a failing object"
        );
    }
}

#[test]
fn all_positive_population_is_handled() {
    // q ≡ true: classifier training sees one class, stratified designs
    // see zero variance everywhere, QLAC's tpr/fpr adjustment
    // degenerates. Everything must still return ≈ N.
    let problem = uniform_problem(400, true);
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = est
            .estimate(&problem, 120, &mut rng)
            .unwrap_or_else(|e| panic!("{name} failed on all-positive population: {e}"));
        assert!(
            (r.count() - 400.0).abs() < 40.0,
            "{name}: estimate {} far from N = 400",
            r.count()
        );
        assert!(r.count().is_finite());
    }
}

#[test]
fn all_negative_population_is_handled() {
    let problem = uniform_problem(400, false);
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = est
            .estimate(&problem, 120, &mut rng)
            .unwrap_or_else(|e| panic!("{name} failed on all-negative population: {e}"));
        assert!(
            r.count().abs() < 40.0,
            "{name}: estimate {} far from 0",
            r.count()
        );
    }
}

#[test]
fn constant_features_degrade_gracefully() {
    // Zero-signal features: the classifier collapses to the prior and
    // LSS/LWS must degrade to ~uniform sampling quality, not error.
    let problem = constant_feature_problem(500, 0.3);
    let truth = problem.exact_count().unwrap() as f64;
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(11);
        let r = est
            .estimate(&problem, 150, &mut rng)
            .unwrap_or_else(|e| panic!("{name} failed on constant features: {e}"));
        assert!(
            (r.count() - truth).abs() < 120.0,
            "{name}: estimate {} too far from truth {truth}",
            r.count()
        );
    }
}

#[test]
fn census_budget_is_rejected_or_exact() {
    // budget == N: SRS can take a census (exact answer, zero-width
    // interval); estimators with multi-phase budgets may reject. Either
    // is fine — what's banned is a panic or a wrong answer.
    let problem = uniform_problem(200, true);
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(13);
        match est.estimate(&problem, 200, &mut rng) {
            Ok(r) => assert!(
                (r.count() - 200.0).abs() < 20.0,
                "{name}: census-budget estimate {} far from 200",
                r.count()
            ),
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{name}: error must carry a message");
            }
        }
    }
}

#[test]
fn over_budget_is_rejected() {
    let problem = uniform_problem(100, true);
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(15);
        assert!(
            est.estimate(&problem, 101, &mut rng).is_err(),
            "{name}: budget > N must be rejected (a census is cheaper)"
        );
        assert!(
            est.estimate(&problem, 0, &mut rng).is_err(),
            "{name}: zero budget must be rejected"
        );
    }
}

#[test]
fn non_finite_weights_are_rejected_by_samplers() {
    let mut rng = StdRng::seed_from_u64(17);
    for bad in [f64::NAN, f64::INFINITY, -1.0] {
        let weights = vec![1.0, bad, 2.0];
        assert!(
            weighted_sample_fenwick(&mut rng, &weights, 2).is_err(),
            "fenwick sampler accepted weight {bad}"
        );
        assert!(
            weighted_sample_es(&mut rng, &weights, 2).is_err(),
            "E-S sampler accepted weight {bad}"
        );
    }
    // All-zero weights cannot define a distribution.
    assert!(weighted_sample_fenwick(&mut rng, &[0.0, 0.0], 1).is_err());
}

// ---------------------------------------------------------------------
// Network fault injection: every malformed or hostile client behaviour
// must yield a structured JSON error or a clean close — never a panic
// or a wedged worker — and the server must keep serving afterwards.
// ---------------------------------------------------------------------

mod net_faults {
    use learning_to_sample::serve::{NetConfig, NetServer, ReplOptions};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{Shutdown, SocketAddr, TcpStream};
    use std::time::Duration;

    fn server(max_line_bytes: usize) -> NetServer {
        NetServer::bind(
            "127.0.0.1:0",
            NetConfig {
                repl: ReplOptions {
                    deterministic: true,
                },
                max_line_bytes,
                ..NetConfig::default()
            },
        )
        .expect("bind")
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        (stream, reader)
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        assert!(!resp.is_empty(), "no response to `{line}`");
        resp.trim_end().to_string()
    }

    /// The server answers `stats` after the fault — proof no worker
    /// wedged and the dispatcher is still alive.
    fn assert_still_serving(addr: SocketAddr) {
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(&mut stream, &mut reader, "stats");
        assert!(
            resp.contains("\"ok\": true"),
            "server must keep serving after the fault: {resp}"
        );
    }

    #[test]
    fn mid_request_disconnect_does_not_wedge_the_server() {
        let srv = server(64 * 1024);
        let addr = srv.local_addr();
        // Fire requests and vanish without reading a single response.
        for _ in 0..4 {
            let (mut stream, _reader) = connect(addr);
            writeln!(stream, "register sports s rows=400 level=M seed=3").expect("send");
            writeln!(stream, "count s budget=80 id=0 :: wins > 10").expect("send");
            drop(stream); // mid-request disconnect
        }
        assert_still_serving(addr);
        srv.shutdown();
        srv.join();
    }

    #[test]
    fn half_written_frame_then_eof_is_an_error_or_clean_close() {
        let srv = server(64 * 1024);
        let addr = srv.local_addr();
        let (mut stream, mut reader) = connect(addr);
        // A frame cut off mid-token, then EOF on the write side. The
        // reader may still collect responses on the read side.
        stream.write_all(b"count s budg").expect("send partial");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        // Either a structured error for the truncated command, or a
        // clean close with no bytes — both are acceptable; a hang or a
        // panic is not.
        if !resp.is_empty() {
            assert!(
                resp.contains("\"ok\": false"),
                "truncated frame must yield a structured error: {resp}"
            );
            resp.clear();
            assert_eq!(reader.read_line(&mut resp).expect("eof"), 0);
        }
        assert_still_serving(addr);
        srv.shutdown();
        srv.join();
    }

    #[test]
    fn oversized_line_yields_structured_error_and_keeps_framing() {
        let srv = server(256);
        let addr = srv.local_addr();
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(&mut stream, &mut reader, &"y".repeat(4096));
        assert!(
            resp.contains("\"ok\": false") && resp.contains("exceeds"),
            "oversized line must be refused with a structured error: {resp}"
        );
        // Framing survives: the next command on the same connection is
        // parsed from a clean line boundary.
        let resp = roundtrip(&mut stream, &mut reader, "stats");
        assert!(resp.contains("\"ok\": true"), "{resp}");
        assert_still_serving(addr);
        srv.shutdown();
        srv.join();
    }

    #[test]
    fn malformed_utf8_yields_structured_error_not_a_panic() {
        let srv = server(64 * 1024);
        let addr = srv.local_addr();
        let (mut stream, mut reader) = connect(addr);
        stream
            .write_all(&[0xff, 0xfe, 0x80, b'\n'])
            .expect("send bytes");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        assert!(
            resp.contains("\"ok\": false") && resp.contains("UTF-8"),
            "malformed UTF-8 must be refused with a structured error: {resp}"
        );
        // Same connection still usable afterwards.
        let resp = roundtrip(&mut stream, &mut reader, "stats");
        assert!(resp.contains("\"ok\": true"), "{resp}");
        assert_still_serving(addr);
        srv.shutdown();
        srv.join();
    }

    #[test]
    fn oversized_garbage_without_newline_then_eof_is_survived() {
        let srv = server(512);
        let addr = srv.local_addr();
        let (mut stream, mut reader) = connect(addr);
        // A flood of bytes with no newline, then EOF: the reader must
        // cap memory at max_line_bytes, answer or close, never wedge.
        let junk = vec![b'z'; 16 * 1024];
        stream.write_all(&junk).expect("send junk");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut all = String::new();
        reader.read_to_string(&mut all).expect("drain");
        for line in all.lines() {
            assert!(
                line.contains("\"ok\": false"),
                "unterminated oversized garbage must only produce errors: {line}"
            );
        }
        assert_still_serving(addr);
        srv.shutdown();
        srv.join();
    }
}

#[test]
fn tiny_populations_do_not_panic() {
    // N = 2..6 with budget 1..N: reject or estimate, never panic.
    for n in 2usize..=6 {
        let problem = uniform_problem(n, true);
        for (name, est) in estimators() {
            for budget in 1..=n {
                let mut rng = StdRng::seed_from_u64(19);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    est.estimate(&problem, budget, &mut rng)
                }));
                assert!(
                    outcome.is_ok(),
                    "{name} panicked at N = {n}, budget = {budget}"
                );
            }
        }
    }
}
