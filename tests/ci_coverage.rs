//! Empirical confidence-interval coverage: the statistical substrate's
//! intervals must cover the truth at (close to) their nominal rate over
//! many seeded trials. These are the guarantees the paper's abstract
//! sells ("unbiased estimates with confidence intervals") — a silent
//! coverage bug would invalidate every experiment, so we measure
//! coverage directly rather than trusting the formulas.
//!
//! All trials are seeded; bounds allow ≈4σ of Monte-Carlo noise around
//! the nominal rate.

use learning_to_sample::prelude::*;
use lts_sampling::{
    sample_without_replacement, srs_count_estimate, stratified_count_estimate,
    weighted_sample_fenwick, DesRaj, StratumSample,
};
use lts_table::table::table_of_floats;
use std::sync::Arc;

const LEVEL: f64 = 0.95;

/// A fixed synthetic population: labels correlated with index so both
/// uniform and stratified schemes have something to estimate.
fn population(n: usize, p: f64, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| next() < p).collect()
}

fn count_true(labels: &[bool]) -> f64 {
    labels.iter().filter(|&&b| b).count() as f64
}

#[test]
fn wald_interval_covers_at_nominal_rate() {
    let labels = population(2_000, 0.3, 42);
    let truth = count_true(&labels);
    let trials = 1_500u64;
    let n = 150;
    let mut covered = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(1_000 + t);
        let idx = sample_without_replacement(&mut rng, n, labels.len()).unwrap();
        let sample: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
        let est = srs_count_estimate(&sample, labels.len(), LEVEL, IntervalKind::Wald).unwrap();
        if est.interval.contains(truth) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        (0.92..=0.98).contains(&coverage),
        "Wald coverage {coverage} strays from nominal 0.95"
    );
}

#[test]
fn wilson_interval_covers_at_extreme_selectivity() {
    // The paper's §3.1 caveat: at XS-like selectivity Wald is unreliable
    // and Wilson is the fix. Verify Wilson holds its rate at p = 2%.
    let labels = population(4_000, 0.02, 7);
    let truth = count_true(&labels);
    let trials = 1_200u64;
    let n = 200;
    let (mut wilson_cov, mut wald_cov) = (0u64, 0u64);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(9_000 + t);
        let idx = sample_without_replacement(&mut rng, n, labels.len()).unwrap();
        let sample: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
        let wilson =
            srs_count_estimate(&sample, labels.len(), LEVEL, IntervalKind::Wilson).unwrap();
        let wald = srs_count_estimate(&sample, labels.len(), LEVEL, IntervalKind::Wald).unwrap();
        wilson_cov += u64::from(wilson.interval.contains(truth));
        wald_cov += u64::from(wald.interval.contains(truth));
    }
    let wilson_rate = wilson_cov as f64 / trials as f64;
    let wald_rate = wald_cov as f64 / trials as f64;
    assert!(
        wilson_rate >= 0.90,
        "Wilson coverage {wilson_rate} too low at p = 0.02"
    );
    assert!(
        wilson_rate >= wald_rate - 0.02,
        "Wilson ({wilson_rate}) should not be materially worse than Wald ({wald_rate}) \
         at extreme selectivity"
    );
}

#[test]
fn stratified_t_interval_covers() {
    // Two strata with very different proportions: the textbook case
    // where stratification shines, and where a broken per-stratum
    // variance formula would mis-cover instantly.
    let a = population(1_000, 0.1, 11);
    let b = population(1_000, 0.7, 13);
    let truth = count_true(&a) + count_true(&b);
    let trials = 1_000u64;
    let (n_a, n_b) = (60, 60);
    let mut covered = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(20_000 + t);
        let draw = |rng: &mut StdRng, labels: &[bool], n: usize| -> StratumSample {
            let idx = sample_without_replacement(rng, n, labels.len()).unwrap();
            StratumSample {
                population: labels.len(),
                sampled: n,
                positives: idx.iter().filter(|&&i| labels[i]).count(),
            }
        };
        let samples = [draw(&mut rng, &a, n_a), draw(&mut rng, &b, n_b)];
        let est = stratified_count_estimate(&samples, LEVEL).unwrap();
        covered += u64::from(est.interval.contains(truth));
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        (0.92..=0.99).contains(&coverage),
        "stratified coverage {coverage} strays from nominal 0.95"
    );
}

/// Run `trials` Des Raj estimations with the given weights; return
/// (mean estimate, empirical coverage).
fn des_raj_trials(labels: &[bool], weights: &[f64], trials: u64, seed: u64) -> (f64, f64) {
    let truth = count_true(labels);
    let draws = 80;
    let (mut covered, mut sum) = (0u64, 0.0);
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed + t);
        let mut dr = DesRaj::new(labels.len()).unwrap();
        for d in weighted_sample_fenwick(&mut rng, weights, draws).unwrap() {
            dr.push(labels[d.index], d.initial_probability).unwrap();
        }
        let est = dr.count_estimate(LEVEL).unwrap();
        sum += est.count;
        covered += u64::from(est.interval.contains(truth));
    }
    (sum / trials as f64, covered as f64 / trials as f64)
}

#[test]
fn des_raj_unbiased_even_with_adversarial_weights() {
    // §4.1's claim: Des Raj is unbiased for *any* weighting, good or
    // bad. Use deliberately label-uncorrelated lumpy weights (61×
    // spread) — the mean must still land on the truth.
    let labels = population(800, 0.35, 17);
    let truth = count_true(&labels);
    let lumpy: Vec<f64> = (0..labels.len())
        .map(|i| 0.1 + f64::from((i % 7) as u32))
        .collect();
    let (mean, _) = des_raj_trials(&labels, &lumpy, 800, 40_000);
    assert!(
        (mean - truth).abs() < 0.05 * truth,
        "Des Raj mean {mean} vs truth {truth}"
    );
}

#[test]
fn des_raj_covers_with_mild_weights_and_degrades_with_lumpy_ones() {
    // Coverage side: with mildly varying weights the t-interval holds
    // its rate; with badly miscalibrated weights the p_i distribution
    // grows a heavy tail, the sample variance understates, and coverage
    // drops — exactly the paper's observation that "LWS is more
    // susceptible to producing outliers" (§5.2). LWS guards against
    // this in practice via the ε floor on sampling probabilities.
    let labels = population(800, 0.35, 17);
    let mild: Vec<f64> = (0..labels.len())
        .map(|i| 1.0 + 0.1 * f64::from((i % 7) as u32))
        .collect();
    let lumpy: Vec<f64> = (0..labels.len())
        .map(|i| 0.1 + f64::from((i % 7) as u32))
        .collect();
    let (_, mild_cov) = des_raj_trials(&labels, &mild, 800, 50_000);
    let (_, lumpy_cov) = des_raj_trials(&labels, &lumpy, 800, 40_000);
    assert!(
        mild_cov >= 0.90,
        "Des Raj coverage {mild_cov} too low with mild weights"
    );
    assert!(
        mild_cov > lumpy_cov,
        "lumpy uncorrelated weights should degrade coverage \
         (mild {mild_cov} vs lumpy {lumpy_cov})"
    );
}

/// A cheap end-to-end problem with genuine label noise: the positive
/// probability ramps smoothly with `x` (sigmoid around the
/// `(1-p)`-quantile), so every score stratum holds a real 0/1 mixture
/// and within-stratum variances stay positive. A perfectly separable
/// population would let pure stage-2 draws estimate `s_h = 0` and
/// produce degenerate zero-width intervals — a small-sample pathology
/// of stratified t-intervals, not what we want to measure here.
fn noisy_line_problem(n: usize, p: f64) -> (CountingProblem, f64) {
    let xs: Vec<f64> = (0..n).map(|i| f64::from((i * 37 % n) as u32)).collect();
    let cut = (1.0 - p) * n as f64;
    let width = n as f64 / 12.0;
    let mut state = 99u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let labels: Vec<bool> = xs
        .iter()
        .map(|&x| {
            let prob = 1.0 / (1.0 + (-(x - cut) / width).exp());
            next() < prob
        })
        .collect();
    let table = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    let q = FnPredicate::new("noisy-ramp", move |_t: &Table, i: usize| Ok(labels[i]));
    let problem = CountingProblem::new(table, Arc::new(q), &["x"]).unwrap();
    let truth = problem.exact_count().unwrap() as f64;
    (problem, truth)
}

#[test]
fn lss_interval_covers_end_to_end() {
    // Full pipeline coverage: learning, design, and stage-2 estimation
    // all feed the final t-interval. 120 trials with a kNN classifier.
    let (problem, truth) = noisy_line_problem(600, 0.3);
    let lss = Lss {
        learn: LearnPhaseConfig {
            spec: ClassifierSpec::Knn { k: 3 },
            augment: None,
            model_seed: 5,
        },
        min_pilots_per_stratum: 2,
        ..Lss::default()
    };
    let trials = 120u64;
    let mut covered = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(70_000 + t);
        let r = lss.estimate(&problem, 120, &mut rng).unwrap();
        covered += u64::from(r.estimate.interval.contains(truth));
    }
    let coverage = covered as f64 / trials as f64;
    // Pilot-design adaptivity and the exactly-counted labels make the
    // interval mildly conservative/anticonservative depending on the
    // draw; demand ≥ 88% at nominal 95% over 120 trials.
    assert!(
        coverage >= 0.88,
        "end-to-end LSS coverage {coverage} too low"
    );
}

#[test]
fn lws_interval_covers_end_to_end() {
    let (problem, truth) = noisy_line_problem(600, 0.3);
    let lws = Lws {
        learn: LearnPhaseConfig {
            spec: ClassifierSpec::Knn { k: 3 },
            augment: None,
            model_seed: 5,
        },
        ..Lws::default()
    };
    let trials = 120u64;
    let mut covered = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(80_000 + t);
        let r = lws.estimate(&problem, 120, &mut rng).unwrap();
        covered += u64::from(r.estimate.interval.contains(truth));
    }
    let coverage = covered as f64 / trials as f64;
    assert!(
        coverage >= 0.85,
        "end-to-end LWS coverage {coverage} too low"
    );
}
