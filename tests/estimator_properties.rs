//! Property-based integration tests: estimator unbiasedness and the
//! Theorem 1–4 approximation guarantees on randomized inputs.

use learning_to_sample::prelude::*;
use lts_strata::{
    brute_force, dirsol, dynpgm, dynpgmp, Allocation, DesignParams, PilotIndex, TSelection,
};
use lts_table::table::table_of_floats;
use lts_table::{FnPredicate, Table};
use proptest::prelude::*;
use std::sync::Arc;

/// Random pilot over a small population (guaranteed feasible for 3
/// strata with 2 pilots each).
fn pilot_strategy() -> impl Strategy<Value = PilotIndex> {
    (20usize..60, 8usize..16, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let m = m.min(n / 2);
        let entries: Vec<(usize, bool)> = (0..m)
            .map(|k| {
                let pos = k * n / m;
                let frac = pos as f64 / n as f64;
                (pos, next() < frac)
            })
            .collect();
        PilotIndex::new(n, entries).unwrap()
    })
}

fn small_params() -> DesignParams {
    DesignParams {
        n_strata: 3,
        budget: 3,
        min_stratum_size: 4,
        min_pilots_per_stratum: 2,
        epsilon: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 (loose empirical check): DirSol lands within a small
    /// constant of the brute-force optimum on random pilots.
    #[test]
    fn dirsol_near_optimal(pilot in pilot_strategy()) {
        let p = small_params();
        if let (Ok(exact), Ok(ds)) = (
            brute_force(&pilot, &p, Allocation::Neyman),
            dirsol(&pilot, &p, Allocation::Neyman),
        ) {
            prop_assert!(
                ds.estimated_variance <= 4.0 * exact.estimated_variance.abs() + 1e-6,
                "dirsol {} vs exact {}",
                ds.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    /// Theorem 4: DynPgmP is within factor 2 of the optimum.
    #[test]
    fn dynpgmp_within_factor_two(pilot in pilot_strategy()) {
        let p = small_params();
        if let (Ok(exact), Ok(dp)) = (
            brute_force(&pilot, &p, Allocation::Proportional),
            dynpgmp(&pilot, &p),
        ) {
            prop_assert!(
                dp.estimated_variance <= 2.0 * exact.estimated_variance.abs() + 1e-6,
                "dynpgmp {} vs exact {}",
                dp.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    /// DynPgm with the full T grid stays within the (very loose)
    /// Theorem-3 envelope of the optimum.
    #[test]
    fn dynpgm_within_theorem3_envelope(pilot in pilot_strategy()) {
        let p = small_params();
        if let (Ok(exact), Ok(dp)) = (
            brute_force(&pilot, &p, Allocation::Neyman),
            dynpgm(&pilot, &p, TSelection::Full),
        ) {
            // Theorem 3 factor for H = 3 is (14/3)(10·3 − 9) = 98; we
            // assert a much tighter empirical bound.
            prop_assert!(
                dp.estimated_variance <= 8.0 * exact.estimated_variance.abs() + 1e-6,
                "dynpgm {} vs exact {}",
                dp.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    /// Every design algorithm emits structurally valid cuts.
    #[test]
    fn designs_emit_valid_cuts(pilot in pilot_strategy()) {
        let p = small_params();
        for strat in [
            dirsol(&pilot, &p, Allocation::Neyman),
            dynpgm(&pilot, &p, TSelection::default()),
            dynpgmp(&pilot, &p),
        ].into_iter().flatten() {
            let n = pilot.n_objects();
            prop_assert_eq!(strat.cuts.len(), 2);
            let sizes = strat.stratum_sizes(n);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
            for &s in &sizes {
                prop_assert!(s >= p.min_stratum_size);
            }
        }
    }
}

/// Monte-Carlo unbiasedness of the three interval estimators on a tiny
/// fully-known population (not a proptest: needs many trials).
#[test]
fn estimators_unbiased_on_known_population() {
    let n = 160usize;
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
    // 35% positive with a learnable-but-noisy structure.
    let q = FnPredicate::new("pattern", move |t: &Table, i| {
        let x = t.floats("x")?[i];
        Ok((x * 0.61).sin() > 0.3)
    });
    let problem = CountingProblem::new(t, Arc::new(q), &["x"]).unwrap();
    let truth = problem.exact_count().unwrap() as f64;

    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::Knn { k: 3 },
        augment: None,
        model_seed: 0,
    };
    let ests: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                min_pilots_per_stratum: 2,
                ..Lss::default()
            }),
        ),
    ];
    for (name, est) in ests {
        let stats = run_trials(&problem, est.as_ref(), 48, 400, 31, Some(truth)).unwrap();
        let mean: f64 = stats.estimates.iter().sum::<f64>() / stats.estimates.len() as f64;
        assert!(
            (mean - truth).abs() < truth * 0.12,
            "{name}: mean {mean} vs truth {truth}"
        );
    }
}
