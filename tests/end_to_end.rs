//! End-to-end integration: every estimator on real scenarios, checking
//! the contracts the paper promises — budget respected, estimates near
//! truth, intervals that cover.

use learning_to_sample::prelude::*;
use lts_data::{neighbors_scenario, sports_scenario, SelectivityLevel};

fn estimators() -> Vec<(&'static str, Box<dyn CountEstimator>)> {
    // Smaller forests keep test time sane; semantics identical.
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::RandomForest { n_trees: 25 },
        augment: None,
        model_seed: 3,
    };
    vec![
        ("SRS", Box::new(Srs::default())),
        ("SSP", Box::new(Ssp::default())),
        ("SSN", Box::new(Ssn::default())),
        ("QLCC", Box::new(Qlcc { learn })),
        ("QLAC", Box::new(Qlac { learn, folds: 4 })),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LWS-HT",
            Box::new(LwsHt {
                learn,
                ..LwsHt::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                min_pilots_per_stratum: 2,
                ..Lss::default()
            }),
        ),
    ]
}

#[test]
fn all_estimators_respect_budget_and_land_near_truth_sports() {
    let scenario = sports_scenario(3_000, SelectivityLevel::M, 5).unwrap();
    let truth = scenario.truth as f64;
    let budget = 150; // 5%
    for (name, est) in estimators() {
        scenario.problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(11);
        let report = est.estimate(&scenario.problem, budget, &mut rng).unwrap();
        assert!(
            report.evals <= budget,
            "{name}: spent {} > budget {budget}",
            report.evals
        );
        assert!(
            scenario.problem.predicate_stats().evals as usize <= budget,
            "{name}: meter shows over-budget"
        );
        let rel = (report.count() - truth).abs() / truth;
        assert!(
            rel < 0.6,
            "{name}: estimate {} too far from truth {truth}",
            report.count()
        );
    }
}

#[test]
fn all_estimators_work_on_neighbors() {
    let scenario = neighbors_scenario(3_000, SelectivityLevel::L, 6).unwrap();
    let truth = scenario.truth as f64;
    let budget = 150;
    for (name, est) in estimators() {
        let mut rng = StdRng::seed_from_u64(21);
        let report = est.estimate(&scenario.problem, budget, &mut rng).unwrap();
        let rel = (report.count() - truth).abs() / truth;
        assert!(
            rel < 0.6,
            "{name}: estimate {} too far from truth {truth}",
            report.count()
        );
    }
}

#[test]
fn interval_estimators_cover_the_truth() {
    // Over repeated trials, 95% intervals should cover the truth far
    // more often than not (loose bound 70% for small trials).
    let scenario = sports_scenario(2_500, SelectivityLevel::S, 7).unwrap();
    let truth = scenario.truth as f64;
    for (name, est) in estimators() {
        if !est.provides_interval() {
            continue;
        }
        let stats = run_trials(&scenario.problem, est.as_ref(), 150, 20, 77, Some(truth)).unwrap();
        let coverage = stats.coverage.unwrap();
        assert!(
            coverage >= 0.7,
            "{name}: coverage {coverage} too low (median {} vs truth {truth})",
            stats.median()
        );
    }
}

#[test]
fn lss_beats_srs_iqr_on_the_paper_workload() {
    // The paper's headline: LSS produces consistently smaller IQRs.
    let scenario = neighbors_scenario(4_000, SelectivityLevel::S, 9).unwrap();
    let truth = scenario.truth as f64;
    let budget = 200; // 5%
    let trials = 20;
    let lss = Lss {
        learn: LearnPhaseConfig {
            spec: ClassifierSpec::RandomForest { n_trees: 25 },
            augment: None,
            model_seed: 0,
        },
        ..Lss::default()
    };
    let srs = Srs::default();
    let lss_stats = run_trials(&scenario.problem, &lss, budget, trials, 123, Some(truth)).unwrap();
    let srs_stats = run_trials(&scenario.problem, &srs, budget, trials, 123, Some(truth)).unwrap();
    assert!(
        lss_stats.iqr() < srs_stats.iqr(),
        "LSS IQR {} should beat SRS IQR {}",
        lss_stats.iqr(),
        srs_stats.iqr()
    );
}

#[test]
fn estimates_are_deterministic_given_seed() {
    let scenario = sports_scenario(2_000, SelectivityLevel::M, 3).unwrap();
    for (name, est) in estimators() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = est.estimate(&scenario.problem, 100, &mut rng_a).unwrap();
        let b = est.estimate(&scenario.problem, 100, &mut rng_b).unwrap();
        assert_eq!(a.count(), b.count(), "{name} not deterministic");
    }
}
