//! Scoped per-thread phase attribution for oracle evaluations.
//!
//! The metered labeler (`lts_table::Metered`) records every oracle
//! evaluation on the thread that asked for it. This module gives that
//! record an *address*: the pipeline wraps each preparation phase in a
//! [`scope`] guard, and [`record_evals`] charges the evaluations to
//! whichever phase tag is current on the calling thread. Because the
//! labeler batches (one `record` call per `label_batch`, on the
//! calling thread) and the warm pipeline runs its phases sequentially
//! on one thread, diffing [`thread_evals`] around a phase yields an
//! *exact* per-phase attribution — not a sample.
//!
//! Everything here is thread-local and lock-free; with no scope
//! installed, evaluations land in [`Phase::Other`].

use std::cell::Cell;

/// Number of distinct phases (length of the [`thread_evals`] array).
pub const NUM_PHASES: usize = 7;

/// Where in the pipeline an oracle evaluation (or a span of work)
/// happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Labeling the training split and fitting the proxy model.
    Train = 0,
    /// Scoring the remaining population with the trained proxy
    /// (no oracle evaluations by construction).
    Score = 1,
    /// Labeling the pilot sample used to design the allocation.
    Pilot = 2,
    /// Cutting strata / computing the allocation from pilot labels.
    Design = 3,
    /// The stage-2 estimation draw (the warm-path marginal cost).
    Stage2 = 4,
    /// Exact scans (census / exact-prefilter routes).
    Exact = 5,
    /// Anything not inside an explicit scope.
    Other = 6,
}

impl Phase {
    /// Stable lower-case name used in metrics and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Train => "train",
            Phase::Score => "score",
            Phase::Pilot => "pilot",
            Phase::Design => "design",
            Phase::Stage2 => "stage2",
            Phase::Exact => "exact",
            Phase::Other => "other",
        }
    }

    /// All phases, in index order (matches [`thread_evals`] slots).
    pub fn all() -> [Phase; NUM_PHASES] {
        [
            Phase::Train,
            Phase::Score,
            Phase::Pilot,
            Phase::Design,
            Phase::Stage2,
            Phase::Exact,
            Phase::Other,
        ]
    }
}

thread_local! {
    static CURRENT: Cell<usize> = const { Cell::new(Phase::Other as usize) };
    static EVALS: Cell<[u64; NUM_PHASES]> = const { Cell::new([0; NUM_PHASES]) };
}

/// RAII guard restoring the previous phase tag on drop.
#[must_use = "the phase scope ends when this guard is dropped"]
pub struct PhaseScope {
    prev: usize,
}

/// Set the calling thread's current phase until the returned guard is
/// dropped. Scopes nest.
pub fn scope(p: Phase) -> PhaseScope {
    let prev = CURRENT.with(|c| c.replace(p as usize));
    PhaseScope { prev }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// The calling thread's current phase.
pub fn current() -> Phase {
    Phase::all()[CURRENT.with(|c| c.get())]
}

/// Charge `n` oracle evaluations to the calling thread's current
/// phase. Called by the metered labeler once per batch.
#[inline]
pub fn record_evals(n: u64) {
    if n == 0 {
        return;
    }
    let idx = CURRENT.with(|c| c.get());
    EVALS.with(|e| {
        let mut v = e.get();
        v[idx] = v[idx].saturating_add(n);
        e.set(v);
    });
}

/// Snapshot of the calling thread's monotone per-phase eval counters,
/// indexed by `Phase as usize`. Diff two snapshots to attribute a span.
pub fn thread_evals() -> [u64; NUM_PHASES] {
    EVALS.with(|e| e.get())
}

/// Run `f` with the calling thread's phase state (current tag and
/// per-phase counters) swapped out for a fresh one, restoring the
/// previous state afterwards. [`crate::trace::collect`] and
/// [`crate::trace::suppressed`] wrap their closures in this: a
/// work-stealing thread blocked in a join can run *another* request's
/// unit of work inline, and without isolation that work's
/// [`record_evals`] calls would leak into the phase delta an enclosing
/// span on this thread is measuring.
pub fn isolated<T>(f: impl FnOnce() -> T) -> T {
    let prev_current = CURRENT.with(|c| c.replace(Phase::Other as usize));
    let prev_evals = EVALS.with(|e| e.replace([0; NUM_PHASES]));
    let out = f();
    CURRENT.with(|c| c.set(prev_current));
    EVALS.with(|e| e.set(prev_evals));
    out
}

/// Component-wise saturating difference `after - before`.
pub fn delta(after: [u64; NUM_PHASES], before: [u64; NUM_PHASES]) -> [u64; NUM_PHASES] {
    let mut out = [0u64; NUM_PHASES];
    for i in 0..NUM_PHASES {
        out[i] = after[i].saturating_sub(before[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), Phase::Other);
        let g = scope(Phase::Train);
        assert_eq!(current(), Phase::Train);
        {
            let g2 = scope(Phase::Pilot);
            assert_eq!(current(), Phase::Pilot);
            drop(g2);
        }
        assert_eq!(current(), Phase::Train);
        drop(g);
        assert_eq!(current(), Phase::Other);
    }

    #[test]
    fn evals_land_in_the_current_phase() {
        let before = thread_evals();
        {
            let _g = scope(Phase::Stage2);
            record_evals(7);
        }
        record_evals(2);
        let d = delta(thread_evals(), before);
        assert_eq!(d[Phase::Stage2 as usize], 7);
        assert_eq!(d[Phase::Other as usize], 2);
        assert_eq!(d.iter().sum::<u64>(), 9);
    }

    #[test]
    fn isolated_swaps_and_restores_phase_state() {
        let _g = scope(Phase::Train);
        let before = thread_evals();
        record_evals(3);
        let inner = isolated(|| {
            assert_eq!(current(), Phase::Other);
            let _g2 = scope(Phase::Stage2);
            record_evals(100);
            thread_evals()[Phase::Stage2 as usize]
        });
        assert_eq!(inner, 100);
        assert_eq!(current(), Phase::Train);
        let d = delta(thread_evals(), before);
        assert_eq!(d[Phase::Train as usize], 3);
        assert_eq!(d[Phase::Stage2 as usize], 0);
    }

    #[test]
    fn zero_record_is_free_and_counters_are_monotone() {
        let before = thread_evals();
        record_evals(0);
        assert_eq!(delta(thread_evals(), before), [0; NUM_PHASES]);
    }
}
