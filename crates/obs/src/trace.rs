//! Deterministic per-request trace spans.
//!
//! A [`Trace`] is the ordered list of typed [`TraceEvent`]s one
//! request generated on its way through the service: the route the
//! planner chose, the prefilter scan, each preparation phase
//! (train / score / pilot / design), the stage-2 draw, the shard
//! fan-out, cache and store outcomes, page counts. Events are gathered
//! by a **thread-local collector** ([`collect`]): the service installs
//! one around each unit of per-request work (sequential admission, a
//! wave-1 prepare closure, a wave-2 execute closure), so emission
//! sites deep in the pipeline ([`emit`]) need no plumbed-through
//! handle and cost a thread-local branch when nothing is collecting.
//!
//! **Determinism contract.** Every asserted field of an event is a
//! pure function of (seed, dataset version, canonical query, budget,
//! request id). Wall-clock time lives only in fields named `wall_*`,
//! which [`Trace::to_json`] zeroes under `mask_wall`. Shared
//! buffer-pool hit/miss counts are interleaving-dependent, so
//! [`TraceEvent::Buffer`] is treated like a wall field: masked, never
//! asserted in goldens.
//!
//! Completed traces land in a bounded [`TraceRing`] (replayed by the
//! `trace <id>` protocol command) and feed a deterministic top-K
//! [`SlowLog`] keyed by oracle evaluations spent.

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Mutex;

use crate::json_escape;

/// One typed event inside a request's trace span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The route / plan kind the planner chose for this request.
    Route {
        /// Serving route (`lss`, `lws`, `srs`, `exact`, …).
        route: &'static str,
        /// Plan kind (`monolithic`, `prefilter+estimate`, `census`, …).
        kind: String,
    },
    /// An exact prefilter scan: how many conjuncts were split off and
    /// how far they narrowed the population.
    Prefilter {
        /// Number of exact conjuncts in the prefilter.
        conjuncts: u64,
        /// Population size before the scan.
        population: u64,
        /// Rows surviving the prefilter.
        survivors: u64,
    },
    /// Result-cache outcome for this request.
    Cache {
        /// `hit`, `miss`, `follower`, or `bypass-fresh`.
        outcome: &'static str,
    },
    /// Model-store outcome for this request.
    Store {
        /// `cold-prepare`, `warm-resume`, or `unpreparable`.
        outcome: &'static str,
        /// The store key hash (16 hex digits; deterministic), or empty
        /// when the request had no store key (`unpreparable`).
        key: String,
    },
    /// One preparation phase (train / score / pilot / design) with its
    /// exact oracle-eval attribution.
    Phase {
        /// Phase name (see [`crate::Phase::name`]).
        phase: &'static str,
        /// Oracle evaluations charged to this phase.
        evals: u64,
        /// Wall time of the phase (masked in goldens).
        wall_nanos: u64,
    },
    /// The stage-2 estimation draw.
    Stage2 {
        /// Oracle evaluations spent by the draw.
        evals: u64,
        /// Wall time of the draw (masked in goldens).
        wall_nanos: u64,
    },
    /// A sharded prepare/estimate fanned out over `shards` shards.
    ShardFanout {
        /// Number of shards.
        shards: u64,
    },
    /// Per-shard summary, emitted in shard order after the join.
    Shard {
        /// Shard index in `0..shards`.
        index: u64,
        /// Oracle evaluations spent inside this shard.
        evals: u64,
        /// Wall time of the shard's work (masked in goldens).
        wall_nanos: u64,
    },
    /// Paged-storage scan outcome: zone-map skipping is content-pure,
    /// so these counts are deterministic and asserted.
    Pages {
        /// Pages whose rows were actually evaluated.
        evaluated: u64,
        /// Pages skipped by a zone-map proof.
        skipped: u64,
    },
    /// Buffer-pool outcome. **Not deterministic** under a shared pool
    /// (hit/miss depends on interleaving), so rendered as `wall_*`
    /// fields and masked in goldens.
    Buffer {
        /// Page requests served from the pool.
        hits: u64,
        /// Page requests that went to disk.
        misses: u64,
    },
    /// Terminal event: how the request was served.
    Served {
        /// `cold`, `warm`, `cached`, `coalesced`, `exact`, `fallback`, …
        served: &'static str,
        /// Total oracle evaluations billed to the response.
        evals: u64,
        /// Wall time of the request (masked in goldens).
        wall_micros: u64,
    },
}

impl TraceEvent {
    /// Stable event-kind name used as the `"event"` JSON field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Route { .. } => "route",
            TraceEvent::Prefilter { .. } => "prefilter",
            TraceEvent::Cache { .. } => "cache",
            TraceEvent::Store { .. } => "store",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Stage2 { .. } => "stage2",
            TraceEvent::ShardFanout { .. } => "shard_fanout",
            TraceEvent::Shard { .. } => "shard",
            TraceEvent::Pages { .. } => "pages",
            TraceEvent::Buffer { .. } => "buffer",
            TraceEvent::Served { .. } => "served",
        }
    }

    /// Render as one JSON object. `mask_wall` zeroes `wall_*` fields
    /// and the (interleaving-dependent) buffer counts.
    pub fn to_json(&self, mask_wall: bool) -> String {
        let wall = |v: u64| if mask_wall { 0 } else { v };
        match self {
            TraceEvent::Route { route, kind } => format!(
                "{{\"event\": \"route\", \"route\": \"{}\", \"kind\": \"{}\"}}",
                json_escape(route),
                json_escape(kind)
            ),
            TraceEvent::Prefilter {
                conjuncts,
                population,
                survivors,
            } => format!(
                "{{\"event\": \"prefilter\", \"conjuncts\": {conjuncts}, \
                 \"population\": {population}, \"survivors\": {survivors}}}"
            ),
            TraceEvent::Cache { outcome } => format!(
                "{{\"event\": \"cache\", \"outcome\": \"{}\"}}",
                json_escape(outcome)
            ),
            TraceEvent::Store { outcome, key } => format!(
                "{{\"event\": \"store\", \"outcome\": \"{}\", \"key\": \"{}\"}}",
                json_escape(outcome),
                json_escape(key)
            ),
            TraceEvent::Phase {
                phase,
                evals,
                wall_nanos,
            } => format!(
                "{{\"event\": \"phase\", \"phase\": \"{}\", \"evals\": {}, \"wall_nanos\": {}}}",
                json_escape(phase),
                evals,
                wall(*wall_nanos)
            ),
            TraceEvent::Stage2 { evals, wall_nanos } => format!(
                "{{\"event\": \"stage2\", \"evals\": {}, \"wall_nanos\": {}}}",
                evals,
                wall(*wall_nanos)
            ),
            TraceEvent::ShardFanout { shards } => {
                format!("{{\"event\": \"shard_fanout\", \"shards\": {shards}}}")
            }
            TraceEvent::Shard {
                index,
                evals,
                wall_nanos,
            } => format!(
                "{{\"event\": \"shard\", \"index\": {}, \"evals\": {}, \"wall_nanos\": {}}}",
                index,
                evals,
                wall(*wall_nanos)
            ),
            TraceEvent::Pages { evaluated, skipped } => format!(
                "{{\"event\": \"pages\", \"evaluated\": {evaluated}, \"skipped\": {skipped}}}"
            ),
            TraceEvent::Buffer { hits, misses } => format!(
                "{{\"event\": \"buffer\", \"wall_hits\": {}, \"wall_misses\": {}}}",
                wall(*hits),
                wall(*misses)
            ),
            TraceEvent::Served {
                served,
                evals,
                wall_micros,
            } => format!(
                "{{\"event\": \"served\", \"served\": \"{}\", \"evals\": {}, \"wall_micros\": {}}}",
                json_escape(served),
                evals,
                wall(*wall_micros)
            ),
        }
    }
}

/// The complete span of one request: its id and ordered events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The request id the span belongs to.
    pub id: u64,
    /// Ordered events, admission first, `served` last.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// One-line JSON rendering of the span. See
    /// [`TraceEvent::to_json`] for the `mask_wall` contract.
    pub fn to_json(&self, mask_wall: bool) -> String {
        let events: Vec<String> = self.events.iter().map(|e| e.to_json(mask_wall)).collect();
        format!(
            "{{\"id\": {}, \"events\": [{}]}}",
            self.id,
            events.join(", ")
        )
    }
}

thread_local! {
    static SINK: RefCell<Option<Vec<TraceEvent>>> = const { RefCell::new(None) };
}

/// True when a collector is installed on the calling thread. Emission
/// sites that must build owned event payloads should check this first
/// so the uninstrumented path pays only a thread-local branch.
#[inline]
pub fn collecting() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Append an event to the calling thread's collector; dropped silently
/// when none is installed.
pub fn emit(ev: TraceEvent) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.push(ev);
        }
    });
}

/// Run `f` with a fresh collector installed on the calling thread and
/// return its result together with the events emitted during the
/// call. Any previously installed collector is suspended and restored
/// afterwards (its events are unaffected). The thread's phase state is
/// isolated for the duration (see [`crate::phase::isolated`]), so a
/// stolen unit of work cannot pollute an enclosing span's eval delta.
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Vec<TraceEvent>) {
    let prev = SINK.with(|s| s.borrow_mut().replace(Vec::new()));
    let out = crate::phase::isolated(f);
    let events = SINK.with(|s| {
        let mut slot = s.borrow_mut();
        let events = slot.take().unwrap_or_default();
        *slot = prev;
        events
    });
    (out, events)
}

/// Run `f` with trace collection disabled on the calling thread,
/// restoring any suspended collector afterwards. Fan-out sites use
/// this around closures that run on work-stealing threads: a worker
/// blocked in a join can steal another request's task, and without
/// suppression that task's instrumented interior would emit into the
/// stealer's collector — nondeterministic cross-request pollution.
pub fn suppressed<T>(f: impl FnOnce() -> T) -> T {
    let prev = SINK.with(|s| s.borrow_mut().take());
    let out = crate::phase::isolated(f);
    SINK.with(|s| *s.borrow_mut() = prev);
    out
}

/// A bounded ring of recently completed traces, oldest evicted first.
/// Capacity 0 disables it entirely (pushes are dropped).
pub struct TraceRing {
    cap: usize,
    inner: Mutex<VecDeque<Trace>>,
}

impl TraceRing {
    /// A ring holding at most `cap` traces.
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retain `trace`, evicting the oldest entry if full. No-op at
    /// capacity 0.
    pub fn push(&self, trace: Trace) {
        if self.cap == 0 {
            return;
        }
        let mut ring = self.inner.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recently retained trace for `id`, if any.
    pub fn get(&self, id: u64) -> Option<Trace> {
        let ring = self.inner.lock().unwrap();
        ring.iter().rev().find(|t| t.id == id).cloned()
    }
}

/// One entry in the slow-query log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    /// Oracle evaluations the request spent (the expense axis).
    pub evals: u64,
    /// Request id.
    pub id: u64,
    /// Canonical query fingerprint (rendered as 16 hex digits).
    pub fingerprint: u64,
    /// Serving route.
    pub route: &'static str,
}

impl SlowEntry {
    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"evals\": {}, \"id\": {}, \"fingerprint\": \"{:016x}\", \"route\": \"{}\"}}",
            self.evals,
            self.id,
            self.fingerprint,
            json_escape(self.route)
        )
    }
}

impl Ord for SlowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Most expensive first; ties broken by id then fingerprint so
        // the ordering — and therefore the retained top-K — is a pure
        // function of the entry *set*, independent of insertion order.
        other
            .evals
            .cmp(&self.evals)
            .then(self.id.cmp(&other.id))
            .then(self.fingerprint.cmp(&other.fingerprint))
            .then(self.route.cmp(other.route))
    }
}

impl PartialOrd for SlowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded top-K log of the most oracle-expensive requests.
///
/// Backed by an ordered set keyed (evals desc, id asc, fingerprint),
/// so the retained contents and their iteration order depend only on
/// the multiset of inserted entries — never on arrival order or
/// thread interleaving. Capacity 0 disables it.
pub struct SlowLog {
    k: usize,
    inner: Mutex<BTreeSet<SlowEntry>>,
}

impl SlowLog {
    /// A log retaining the top `k` entries.
    pub fn new(k: usize) -> Self {
        SlowLog {
            k,
            inner: Mutex::new(BTreeSet::new()),
        }
    }

    /// The configured K.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offer an entry; it is retained iff it ranks in the current
    /// top-K. Duplicate entries collapse (set semantics).
    pub fn offer(&self, entry: SlowEntry) {
        if self.k == 0 {
            return;
        }
        let mut set = self.inner.lock().unwrap();
        set.insert(entry);
        while set.len() > self.k {
            let last = set.iter().next_back().cloned();
            if let Some(last) = last {
                set.remove(&last);
            }
        }
    }

    /// The top `limit` entries (most expensive first); `limit` is
    /// clamped to K.
    pub fn top(&self, limit: usize) -> Vec<SlowEntry> {
        let set = self.inner.lock().unwrap();
        set.iter().take(limit.min(self.k)).cloned().collect()
    }

    /// One-line JSON: `{"slow": [entry, ...]}` with at most `limit`
    /// entries.
    pub fn to_json(&self, limit: usize) -> String {
        let entries: Vec<String> = self.top(limit).iter().map(|e| e.to_json()).collect();
        format!("{{\"slow\": [{}]}}", entries.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(evals: u64) -> TraceEvent {
        TraceEvent::Stage2 {
            evals,
            wall_nanos: 99,
        }
    }

    #[test]
    fn collect_captures_and_restores_outer_collector() {
        let ((inner_out, inner_events), outer_events) = collect(|| {
            emit(ev(1));
            let nested = collect(|| {
                emit(ev(2));
                "inner"
            });
            emit(ev(3));
            nested
        });
        assert_eq!(inner_out, "inner");
        assert_eq!(inner_events, vec![ev(2)]);
        assert_eq!(outer_events, vec![ev(1), ev(3)]);
        assert!(!collecting());
        emit(ev(4)); // dropped silently
    }

    #[test]
    fn suppressed_hides_emissions_from_the_active_collector() {
        let (out, events) = collect(|| {
            emit(ev(1));
            let inner = suppressed(|| {
                emit(ev(2)); // dropped: no collector while suppressed
                assert!(!collecting());
                "done"
            });
            emit(ev(3));
            inner
        });
        assert_eq!(out, "done");
        assert_eq!(events, vec![ev(1), ev(3)]);
    }

    #[test]
    fn trace_json_masks_wall_fields_only() {
        let t = Trace {
            id: 7,
            events: vec![
                TraceEvent::Route {
                    route: "lss",
                    kind: "monolithic".into(),
                },
                ev(42),
                TraceEvent::Buffer { hits: 3, misses: 1 },
            ],
        };
        let masked = t.to_json(true);
        assert_eq!(
            masked,
            "{\"id\": 7, \"events\": [\
             {\"event\": \"route\", \"route\": \"lss\", \"kind\": \"monolithic\"}, \
             {\"event\": \"stage2\", \"evals\": 42, \"wall_nanos\": 0}, \
             {\"event\": \"buffer\", \"wall_hits\": 0, \"wall_misses\": 0}]}"
        );
        let unmasked = t.to_json(false);
        assert!(unmasked.contains("\"wall_nanos\": 99"));
        assert!(unmasked.contains("\"wall_hits\": 3"));
    }

    #[test]
    fn ring_bounds_and_finds_latest_by_id() {
        let ring = TraceRing::new(2);
        ring.push(Trace {
            id: 1,
            events: vec![ev(1)],
        });
        ring.push(Trace {
            id: 2,
            events: vec![],
        });
        ring.push(Trace {
            id: 1,
            events: vec![ev(9)],
        });
        assert_eq!(ring.len(), 2); // id=1's first span evicted
        assert_eq!(ring.get(1).unwrap().events, vec![ev(9)]);
        assert_eq!(ring.get(2).unwrap().events, vec![]);
        assert!(ring.get(3).is_none());
        let off = TraceRing::new(0);
        off.push(Trace {
            id: 1,
            events: vec![],
        });
        assert!(off.is_empty());
    }

    #[test]
    fn slow_log_is_insertion_order_independent() {
        let mk = |evals: u64, id: u64| SlowEntry {
            evals,
            id,
            fingerprint: id,
            route: "lss",
        };
        let entries = vec![mk(10, 0), mk(500, 1), mk(50, 2), mk(500, 3), mk(7, 4)];
        let forward = SlowLog::new(3);
        let backward = SlowLog::new(3);
        for e in &entries {
            forward.offer(e.clone());
        }
        for e in entries.iter().rev() {
            backward.offer(e.clone());
        }
        assert_eq!(forward.top(3), backward.top(3));
        assert_eq!(forward.top(3), vec![mk(500, 1), mk(500, 3), mk(50, 2)]);
        assert_eq!(
            forward.to_json(2),
            "{\"slow\": [\
             {\"evals\": 500, \"id\": 1, \"fingerprint\": \"0000000000000001\", \"route\": \"lss\"}, \
             {\"evals\": 500, \"id\": 3, \"fingerprint\": \"0000000000000003\", \"route\": \"lss\"}]}"
        );
    }
}
