//! The process-wide metrics registry: named counters, gauges, and
//! fixed-bound histograms with atomic recording.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones; recording through one is a single atomic RMW with no lock.
//! A registry created with [`MetricsRegistry::disabled`] hands out
//! no-op handles whose recording compiles down to a branch on a
//! `None` — that is the baseline `bench_obs` measures instrumentation
//! overhead against.
//!
//! [`MetricsRegistry::snapshot`] takes a point-in-time
//! [`MetricsSnapshot`] sorted by metric name; the snapshot renders as
//! one-line JSON or Prometheus text. Both expositions take a
//! `mask_wall` flag that zeroes every metric whose name contains
//! `wall` — the only place wall-clock time is allowed to live — so CI
//! can diff outputs across thread counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. No-op when detached.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can go up and down. No-op when
/// detached.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared storage for one histogram: fixed inclusive upper bounds plus
/// an implicit `+Inf` bucket, a total count, and a sum of observed
/// values. Buckets are stored non-cumulative internally; the
/// Prometheus exposition cumulates them.
struct HistogramInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (last = +Inf)
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramInner {
    fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramInner {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// A fixed-bound histogram handle. No-op when detached.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// Record one observation. Lock-free: one bucket RMW plus count
    /// and sum.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Total number of observations (0 for a detached handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Non-cumulative per-bucket counts, last slot being `+Inf`
    /// (empty for a detached handle).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.as_ref().map_or_else(Vec::new, |h| {
            h.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        })
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
}

/// The registry: a name → metric map handing out atomic handles.
/// Clones share the same underlying storage.
#[derive(Clone, Default)]
pub struct MetricsRegistry(Option<Arc<RegistryInner>>);

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry(Some(Arc::new(RegistryInner::default())))
    }

    /// A registry whose every handle is a no-op (the overhead
    /// baseline).
    pub fn disabled() -> Self {
        MetricsRegistry(None)
    }

    /// True unless constructed with [`MetricsRegistry::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            None => Counter(None),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            None => Gauge(None),
            Some(inner) => {
                let mut map = inner.gauges.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicI64::new(0)));
                Gauge(Some(Arc::clone(cell)))
            }
        }
    }

    /// Get or create the histogram named `name` with the given
    /// inclusive upper bounds (an implicit `+Inf` bucket is always
    /// appended). If the name already exists, the *existing* bounds
    /// win and `bounds` is ignored.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match &self.0 {
            None => Histogram(None),
            Some(inner) => {
                let mut map = inner.histograms.lock().unwrap();
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramInner::new(bounds)));
                Histogram(Some(Arc::clone(cell)))
            }
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name. A disabled registry snapshots as empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        if let Some(inner) = &self.0 {
            for (name, c) in inner.counters.lock().unwrap().iter() {
                entries.push((
                    name.clone(),
                    MetricValue::Counter(c.load(Ordering::Relaxed)),
                ));
            }
            for (name, g) in inner.gauges.lock().unwrap().iter() {
                entries.push((name.clone(), MetricValue::Gauge(g.load(Ordering::Relaxed))));
            }
            for (name, h) in inner.histograms.lock().unwrap().iter() {
                entries.push((
                    name.clone(),
                    MetricValue::Histogram {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    },
                ));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter value.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A histogram: sorted inclusive upper bounds, non-cumulative
    /// bucket counts (one more than `bounds`, last = `+Inf`), total
    /// count, and sum of observations.
    Histogram {
        /// Sorted inclusive upper bounds.
        bounds: Vec<u64>,
        /// Non-cumulative per-bucket counts; last slot is `+Inf`.
        buckets: Vec<u64>,
        /// Total observation count.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

/// A point-in-time, name-sorted view of the registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

fn is_wall(name: &str) -> bool {
    name.contains("wall")
}

impl MetricsSnapshot {
    /// One-line JSON: a single flat object sorted by key. Histograms
    /// flatten to `name_le_<bound>`, `name_le_inf`, `name_count`, and
    /// `name_sum` keys. With `mask_wall`, every metric whose name
    /// contains `wall` renders as 0 — the wall mask CI relies on.
    pub fn to_json(&self, mask_wall: bool) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            let masked = mask_wall && is_wall(name);
            match value {
                MetricValue::Counter(v) => {
                    let v = if masked { 0 } else { *v };
                    parts.push(format!("\"{}\": {}", crate::json_escape(name), v));
                }
                MetricValue::Gauge(v) => {
                    let v = if masked { 0 } else { *v };
                    parts.push(format!("\"{}\": {}", crate::json_escape(name), v));
                }
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => {
                    let esc = crate::json_escape(name);
                    for (i, b) in bounds.iter().enumerate() {
                        let v = if masked { 0 } else { buckets[i] };
                        parts.push(format!("\"{}_le_{}\": {}", esc, b, v));
                    }
                    let inf = if masked { 0 } else { buckets[bounds.len()] };
                    parts.push(format!("\"{}_le_inf\": {}", esc, inf));
                    parts.push(format!(
                        "\"{}_count\": {}",
                        esc,
                        if masked { 0 } else { *count }
                    ));
                    parts.push(format!(
                        "\"{}_sum\": {}",
                        esc,
                        if masked { 0 } else { *sum }
                    ));
                }
            }
        }
        format!("{{{}}}", parts.join(", "))
    }

    /// Prometheus text exposition (version 0.0.4): `# TYPE` lines,
    /// cumulative `_bucket{le=...}` series, `_sum`/`_count`. The same
    /// `mask_wall` contract as [`MetricsSnapshot::to_json`].
    pub fn to_prometheus(&self, mask_wall: bool) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            let masked = mask_wall && is_wall(name);
            match value {
                MetricValue::Counter(v) => {
                    let v = if masked { 0 } else { *v };
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    let v = if masked { 0 } else { *v };
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cum += if masked { 0 } else { buckets[i] };
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
                    }
                    cum += if masked { 0 } else { buckets[bounds.len()] };
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {}\n", if masked { 0 } else { *sum }));
                    out.push_str(&format!(
                        "{name}_count {}\n",
                        if masked { 0 } else { *count }
                    ));
                }
            }
        }
        out
    }

    /// Look up a counter/gauge value by name (counters as `u64`,
    /// gauges cast). Histograms return their `count`. `None` if the
    /// name is absent.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                MetricValue::Gauge(g) => *g as u64,
                MetricValue::Histogram { count, .. } => *count,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_atomically() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        let c2 = reg.counter("requests_total");
        c.add(3);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("store_entries");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("h", &[1, 2]);
        h.observe(1);
        assert_eq!(h.count(), 0);
        assert!(reg.snapshot().entries.is_empty());
        assert_eq!(reg.snapshot().to_json(false), "{}");
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("evals", &[10, 100, 1000]);
        for v in [0, 10, 11, 100, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn snapshot_is_name_sorted_and_json_is_flat() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(2);
        reg.counter("a_total").inc();
        reg.histogram("evals", &[10]).observe(7);
        let json = reg.snapshot().to_json(false);
        assert_eq!(
            json,
            "{\"a_total\": 1, \"b_total\": 2, \"evals_le_10\": 1, \"evals_le_inf\": 0, \
             \"evals_count\": 1, \"evals_sum\": 7}"
        );
    }

    #[test]
    fn wall_metrics_are_masked_on_demand() {
        let reg = MetricsRegistry::new();
        reg.counter("wall_request_micros_total").add(123);
        reg.counter("requests_total").add(4);
        reg.histogram("wall_request_micros", &[100]).observe(50);
        let masked = reg.snapshot().to_json(true);
        assert!(masked.contains("\"wall_request_micros_total\": 0"));
        assert!(masked.contains("\"requests_total\": 4"));
        assert!(masked.contains("\"wall_request_micros_count\": 0"));
        let prom = reg.snapshot().to_prometheus(true);
        assert!(prom.contains("wall_request_micros_total 0"));
        assert!(prom.contains("requests_total 4"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("evals", &[10, 100]);
        for v in [1, 2, 50, 5000] {
            h.observe(v);
        }
        let prom = reg.snapshot().to_prometheus(false);
        assert!(prom.contains("evals_bucket{le=\"10\"} 2\n"));
        assert!(prom.contains("evals_bucket{le=\"100\"} 3\n"));
        assert!(prom.contains("evals_bucket{le=\"+Inf\"} 4\n"));
        assert!(prom.contains("evals_sum 5053\n"));
        assert!(prom.contains("evals_count 4\n"));
    }

    #[test]
    fn histogram_reregistration_keeps_existing_bounds() {
        let reg = MetricsRegistry::new();
        let h1 = reg.histogram("h", &[10]);
        let h2 = reg.histogram("h", &[1, 2, 3]);
        h1.observe(5);
        h2.observe(50);
        assert_eq!(h1.bucket_counts(), vec![1, 1]);
        assert_eq!(h2.bucket_counts(), vec![1, 1]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = reg.counter("n");
                let h = reg.histogram("h", &[64]);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 1 } else { 100 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("n").get(), 8000);
        assert_eq!(reg.histogram("h", &[]).count(), 8000);
        assert_eq!(
            reg.histogram("h", &[]).bucket_counts(),
            vec![8 * 500, 8 * 500]
        );
    }
}
