//! `lts-obs` — the workspace observability layer.
//!
//! The paper's whole argument is an accounting identity: oracle
//! evaluations spent versus confidence-interval width bought. This
//! crate is where that accounting becomes observable without breaking
//! the repo's bit-identity contract. It is **std-only** (no
//! dependencies at all) and sits below every other workspace crate, so
//! any layer — the metered labeler, the warm-prepare pipeline, the
//! shard fan-out, the paged storage scanner, the serving front-end —
//! can report through it.
//!
//! Three pillars:
//!
//! | Pillar | Module | Job |
//! |---|---|---|
//! | metrics registry | [`registry`] | named counters / gauges / fixed-bound histograms with atomic recording, a point-in-time [`MetricsSnapshot`], JSON + Prometheus text exposition |
//! | phase attribution | [`phase`] | a scoped thread-local phase tag so the metered oracle can attribute every evaluation to train / score / pilot / design / stage-2 / exact |
//! | trace spans | [`trace`] | typed per-request [`TraceEvent`]s gathered by a thread-local collector, a bounded [`TraceRing`] for `trace <id>` replay, and a deterministic top-K [`SlowLog`] |
//!
//! **Determinism contract.** Every *asserted* field of a trace or
//! metric — event kinds, eval counts, page counts, shard indices,
//! routes, outcomes — must be a pure function of (seed, dataset
//! version, canonical query, budget, request id). Wall-clock time is
//! allowed, but only inside fields whose name contains `wall`
//! (`wall_nanos`, `wall_micros`, …); every exposition function takes a
//! `mask_wall` flag that zeroes exactly those fields, which is what CI
//! diffs across `RAYON_NUM_THREADS` settings. Buffer-pool hit/miss
//! counts under a *shared* pool are interleaving-dependent and are
//! therefore never part of golden assertions (see
//! [`trace::TraceEvent::Buffer`]).

#![warn(missing_docs)]

pub mod phase;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use phase::{Phase, PhaseScope, NUM_PHASES};
pub use registry::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use snapshot::Snapshot;
pub use trace::{SlowEntry, SlowLog, Trace, TraceEvent, TraceRing};

/// Everything a service front-end needs to observe itself: a registry,
/// a trace ring, and a slow-query log. Bundled so it can be handed
/// across thread boundaries (dispatcher, scrape listener, REPL) as one
/// shared unit.
#[derive(Clone)]
pub struct Observability {
    /// The process-wide metrics registry.
    pub registry: MetricsRegistry,
    /// Recent per-request traces, replayable via `trace <id>`.
    pub ring: std::sync::Arc<TraceRing>,
    /// Top-K most oracle-expensive requests, deterministic ordering.
    pub slow: std::sync::Arc<SlowLog>,
}

impl Observability {
    /// Fully enabled observability with the given ring capacity and
    /// slow-log K.
    pub fn enabled(ring_capacity: usize, slow_k: usize) -> Self {
        Observability {
            registry: MetricsRegistry::new(),
            ring: std::sync::Arc::new(TraceRing::new(ring_capacity)),
            slow: std::sync::Arc::new(SlowLog::new(slow_k)),
        }
    }

    /// Everything off: no-op registry handles, zero-capacity ring and
    /// slow log. This is the `bench_obs` overhead baseline.
    pub fn disabled() -> Self {
        Observability {
            registry: MetricsRegistry::disabled(),
            ring: std::sync::Arc::new(TraceRing::new(0)),
            slow: std::sync::Arc::new(SlowLog::new(0)),
        }
    }

    /// True when any recording would be kept (registry enabled or ring
    /// capacity nonzero).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled() || self.ring.capacity() > 0 || self.slow.capacity() > 0
    }
}

impl Default for Observability {
    /// The service default: enabled registry, 256-trace ring, top-16
    /// slow log.
    fn default() -> Self {
        Observability::enabled(256, 16)
    }
}

/// Escape a string for inclusion in a JSON string literal.
///
/// Shared by every exposition path in this crate (and usable by
/// downstream crates that hand-format JSON the same way the rest of
/// the workspace does).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
