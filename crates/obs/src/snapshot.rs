//! The [`Snapshot`] trait: counter bundles that support per-request
//! deltas, not just process-lifetime totals.
//!
//! Subsystems expose point-in-time counter structs (the buffer
//! manager's `BufferSnapshot`, the paged scanner's `ScanSnapshot`).
//! Reporting a *span* of work needs `after − before`; merging sibling
//! spans (per-shard, per-partition) needs component-wise addition.
//! Implementors provide both under one algebra: `merge` is
//! component-wise saturating addition and `delta` its (saturating)
//! inverse, so for monotone counters
//! `before.merge(&after.delta(&before)) == after`.

/// A bundle of monotone counters with component-wise merge and delta.
pub trait Snapshot: Sized {
    /// Component-wise saturating sum of two snapshots (e.g. combining
    /// per-shard counters into a fan-out total).
    fn merge(&self, other: &Self) -> Self;

    /// Component-wise saturating difference `self − before`: the
    /// activity that happened between the two snapshots.
    fn delta(&self, before: &Self) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Pair {
        a: u64,
        b: u64,
    }

    impl Snapshot for Pair {
        fn merge(&self, other: &Self) -> Self {
            Pair {
                a: self.a.saturating_add(other.a),
                b: self.b.saturating_add(other.b),
            }
        }
        fn delta(&self, before: &Self) -> Self {
            Pair {
                a: self.a.saturating_sub(before.a),
                b: self.b.saturating_sub(before.b),
            }
        }
    }

    #[test]
    fn merge_inverts_delta_for_monotone_counters() {
        let before = Pair { a: 3, b: 10 };
        let after = Pair { a: 8, b: 10 };
        let d = after.delta(&before);
        assert_eq!(d, Pair { a: 5, b: 0 });
        assert_eq!(before.merge(&d), after);
    }
}
