//! Property: histogram state is a pure function of the observed
//! *multiset* — observation order never matters, splitting the stream
//! across recorders and merging never matters, and the masked
//! exposition of a `wall_*` histogram is all zeros.

use lts_obs::MetricsRegistry;
use proptest::prelude::*;

const BOUNDS: &[u64] = &[0, 10, 100, 1_000];

/// Deterministic Fisher–Yates keyed by a SplitMix64 stream.
fn permute(values: &[u64], seed: u64) -> Vec<u64> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut out = values.to_vec();
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn record(values: &[u64]) -> (Vec<u64>, u64, String) {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("request_evals", BOUNDS);
    for &v in values {
        h.observe(v);
    }
    (h.bucket_counts(), h.count(), reg.snapshot().to_json(false))
}

proptest! {
    #[test]
    fn observation_order_is_irrelevant(
        values in proptest::collection::vec(0u64..5_000, 0..64),
        seed in any::<u64>(),
    ) {
        let shuffled = permute(&values, seed);
        prop_assert_eq!(record(&values), record(&shuffled));
    }

    #[test]
    fn split_streams_merge_to_the_sequential_state(
        values in proptest::collection::vec(0u64..5_000, 1..64),
        split in 0usize..64,
    ) {
        let split = split % values.len();
        let reg = MetricsRegistry::new();
        // Two handles to the same histogram, fed the two halves from
        // two threads: counts land atomically in shared buckets.
        let a = reg.histogram("request_evals", BOUNDS);
        let b = reg.histogram("request_evals", BOUNDS);
        let (left, right) = values.split_at(split);
        let (left, right) = (left.to_vec(), right.to_vec());
        let ta = std::thread::spawn(move || { for v in left { a.observe(v); } });
        let tb = std::thread::spawn(move || { for v in right { b.observe(v); } });
        ta.join().unwrap();
        tb.join().unwrap();
        let h = reg.histogram("request_evals", BOUNDS);
        prop_assert_eq!(
            (h.bucket_counts(), h.count(), reg.snapshot().to_json(false)),
            record(&values)
        );
    }

    #[test]
    fn wall_histograms_mask_to_zero(
        values in proptest::collection::vec(0u64..5_000, 0..64),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wall_request_micros", BOUNDS);
        for &v in &values {
            h.observe(v);
        }
        let masked = reg.snapshot().to_json(true);
        for part in masked.trim_matches(['{', '}']).split(", ") {
            let value = part.rsplit(": ").next().unwrap();
            prop_assert_eq!(value, "0", "masked exposition leaked: {}", part);
        }
    }
}
