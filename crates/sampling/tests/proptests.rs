//! Property-based tests for the sampling substrate.

use lts_sampling::{
    allocate, proportional_allocation, sample_without_replacement, stratified_count_estimate,
    weighted_sample_es, weighted_sample_fenwick, DesRaj, Fenwick, StratumSample,
};
use lts_stats::{compose_independent, Component};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #[test]
    fn srs_draws_valid_subsets(seed in any::<u64>(), n in 0usize..50, extra in 0usize..100) {
        let pop = n + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_without_replacement(&mut rng, n, pop).unwrap();
        prop_assert_eq!(s.len(), n);
        let set: HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), n);
        prop_assert!(s.iter().all(|&i| i < pop));
    }

    #[test]
    fn fenwick_prefix_matches_naive(
        weights in proptest::collection::vec(0.0f64..10.0, 1..80),
    ) {
        let f = Fenwick::new(&weights);
        let mut acc = 0.0;
        for i in 0..=weights.len() {
            prop_assert!((f.prefix_sum(i) - acc).abs() < 1e-9);
            if i < weights.len() {
                acc += weights[i];
            }
        }
    }

    /// Adds and zeros in random order ⇒ `total()` equals `Σ weights`
    /// exactly, and `search` never returns a zeroed leaf. Weights are
    /// dyadic (multiples of 1/64, bounded) so every partial sum is
    /// exactly representable and "exactly" means bitwise — the old
    /// delta-propagated removal accumulated residue and failed both
    /// clauses.
    #[test]
    fn fenwick_adds_zeros_total_exact_and_search_skips_zeroed(
        init in proptest::collection::vec(0u32..512, 1..60),
        ops in proptest::collection::vec((any::<u32>(), 0u32..512, any::<bool>()), 0..120),
        probes in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let mut weights: Vec<f64> = init.iter().map(|&k| f64::from(k) / 64.0).collect();
        let n = weights.len();
        let mut f = Fenwick::new(&weights);
        for &(slot, val, is_zero) in &ops {
            let i = slot as usize % n;
            if is_zero {
                f.zero(i);
                weights[i] = 0.0;
            } else {
                // Random-order add of an exactly-representable delta.
                let delta = f64::from(val) / 64.0 - weights[i];
                f.add(i, delta);
                weights[i] = f64::from(val) / 64.0;
            }
            let naive: f64 = weights.iter().sum();
            prop_assert_eq!(f.total().to_bits(), naive.to_bits(), "total drifted");
        }
        let total: f64 = weights.iter().sum();
        for &p in &probes {
            let t = p * total;
            if t < total {
                let got = f.search(t).expect("in-range target must hit");
                prop_assert!(f.weight(got) > 0.0, "search landed on a zeroed leaf");
                // And it is the leaf a naive cumulative scan finds.
                let mut acc = 0.0;
                let want = weights.iter().position(|&w| { acc += w; acc > t });
                prop_assert_eq!(Some(got), want);
            } else {
                prop_assert_eq!(f.search(t), None);
            }
        }
    }

    #[test]
    fn weighted_draws_are_distinct_positive_weight_objects(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..5.0, 2..60),
    ) {
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        prop_assume!(positive >= 2);
        let n = 2.min(positive);
        let mut rng = StdRng::seed_from_u64(seed);
        for draws in [
            weighted_sample_es(&mut rng, &weights, n).unwrap(),
            weighted_sample_fenwick(&mut rng, &weights, n).unwrap(),
        ] {
            let idx: HashSet<_> = draws.iter().map(|d| d.index).collect();
            prop_assert_eq!(idx.len(), n);
            for d in &draws {
                prop_assert!(weights[d.index] > 0.0);
                let total: f64 = weights.iter().sum();
                prop_assert!((d.initial_probability - weights[d.index] / total).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn allocation_always_sums_and_respects_bounds(
        sizes in proptest::collection::vec(1usize..60, 2..8),
        weights_seed in any::<u64>(),
        frac in 0.05f64..0.9,
    ) {
        let total_pop: usize = sizes.iter().sum();
        let total = ((total_pop as f64 * frac) as usize).max(sizes.len());
        prop_assume!(total <= total_pop);
        // Pseudo-random weights from the seed.
        let mut state = weights_seed | 1;
        let weights: Vec<f64> = sizes
            .iter()
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let alloc = allocate(&weights, &sizes, total, 1).unwrap();
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
        for (a, s) in alloc.iter().zip(&sizes) {
            prop_assert!(*a >= 1.min(*s));
            prop_assert!(a <= s);
        }
    }

    #[test]
    fn proportional_allocation_is_order_preserving(
        sizes in proptest::collection::vec(5usize..100, 2..6),
    ) {
        let total: usize = sizes.iter().sum::<usize>() / 4;
        prop_assume!(total >= sizes.len());
        let alloc = proportional_allocation(&sizes, total, 0).unwrap();
        // Bigger strata never get fewer samples (monotone up to rounding ±1).
        for i in 0..sizes.len() {
            for j in 0..sizes.len() {
                if sizes[i] > sizes[j] {
                    prop_assert!(alloc[i] + 1 >= alloc[j]);
                }
            }
        }
    }

    #[test]
    fn stratified_estimate_within_population_bounds(
        samples in proptest::collection::vec((2usize..40, 1usize..10), 1..6),
    ) {
        // population >= sampled >= positives.
        let strata: Vec<StratumSample> = samples
            .iter()
            .map(|&(pop, pos_mod)| StratumSample {
                population: pop * 3,
                sampled: pop,
                positives: pop % (pos_mod + 1),
            })
            .collect();
        let e = stratified_count_estimate(&strata, 0.95).unwrap();
        let total_pop: usize = strata.iter().map(|s| s.population).sum();
        prop_assert!(e.count >= -1e-9);
        prop_assert!(e.count <= total_pop as f64 + 1e-9);
        prop_assert!(e.interval.lo >= 0.0);
        prop_assert!(e.interval.hi <= total_pop as f64);
    }

    #[test]
    fn desraj_estimates_are_finite_and_bounded(
        seed in any::<u64>(),
        labels in proptest::collection::vec(any::<bool>(), 4..30),
    ) {
        let n = labels.len();
        let weights: Vec<f64> = (0..n).map(|i| 0.2 + (i % 7) as f64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = weighted_sample_fenwick(&mut rng, &weights, n / 2).unwrap();
        let mut dr = DesRaj::new(n).unwrap();
        for d in draws {
            dr.push(labels[d.index], d.initial_probability).unwrap();
        }
        let est = dr.count_estimate(0.95).unwrap();
        prop_assert!(est.count.is_finite());
        prop_assert!(est.std_error.is_finite());
        prop_assert!(est.interval.lo <= est.interval.hi);
    }

    /// **Shard-merge agreement.** Split the strata of one stratified
    /// design into contiguous shards, estimate each shard with the same
    /// stratified estimator, and compose the shard estimators as
    /// independent components: the merged count and standard error
    /// equal the global stratified estimator over all strata (float
    /// summation order aside). This is the algebra the sharded LSS path
    /// relies on: count variance decomposes additively across strata,
    /// so grouping strata by shard changes nothing. (Degrees of freedom
    /// legitimately differ: the composition uses Welch–Satterthwaite,
    /// the global estimator uses Σ(n_h − 1).)
    #[test]
    fn shard_merged_stratified_estimate_matches_global(
        raw in proptest::collection::vec((1usize..150, any::<u32>(), any::<u32>()), 2..16),
        k in 1usize..8,
    ) {
        let strata: Vec<StratumSample> = raw
            .iter()
            .map(|&(pop, s_seed, p_seed)| {
                let sampled = 1 + s_seed as usize % pop;
                StratumSample {
                    population: pop,
                    sampled,
                    positives: p_seed as usize % (sampled + 1),
                }
            })
            .collect();
        let global = stratified_count_estimate(&strata, 0.95).unwrap();

        // Contiguous shard grouping (strata are score-ordered in LSS;
        // shards take whole runs of them).
        let k = k.min(strata.len());
        let per = strata.len().div_ceil(k);
        let parts: Vec<Component> = strata
            .chunks(per)
            .map(|chunk| {
                let e = stratified_count_estimate(chunk, 0.95).unwrap();
                Component {
                    value: e.count,
                    variance: e.std_error * e.std_error,
                    df: e.df,
                }
            })
            .collect();
        let merged = compose_independent(&parts, 0.95).unwrap();

        let scale = global.count.abs().max(1.0);
        prop_assert!(
            (merged.value - global.count).abs() <= 1e-9 * scale,
            "count: merged {} vs global {}", merged.value, global.count
        );
        let var_scale = (global.std_error * global.std_error).max(1.0);
        prop_assert!(
            (merged.std_error * merged.std_error
                - global.std_error * global.std_error).abs() <= 1e-9 * var_scale,
            "variance: merged {} vs global {}",
            merged.std_error * merged.std_error,
            global.std_error * global.std_error
        );
    }
}
