//! Weighted sampling without replacement.
//!
//! LWS (paper §4.1) assigns each object an initial probability
//! `π(o) ∝ max(g(o), ε)` and draws objects *sequentially without
//! replacement*: after each draw the drawn object is removed and the
//! remaining weights renormalize implicitly. Two equivalent
//! implementations are provided:
//!
//! * [`weighted_sample_fenwick`] — literal draw-by-draw over a Fenwick
//!   tree (`O(n log N)`), the reference semantics;
//! * [`weighted_sample_es`] — Efraimidis–Spirakis exponential keys
//!   (`u_i^{1/w_i}` order statistics), which provably induces the same
//!   sequential-draw distribution and is embarrassingly simple.
//!
//! Both return the draws *in draw order* along with each drawn object's
//! **initial** selection probability `π(o_i) = w_i / Σ_j w_j`, which is
//! exactly what the Des Raj estimator (Eq. 3) consumes.

use crate::error::{SamplingError, SamplingResult};
use crate::fenwick::Fenwick;
use rand::{Rng, RngExt};

/// One weighted draw: the population index plus its initial probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedDraw {
    /// Index of the drawn object in the population.
    pub index: usize,
    /// Initial (first-draw) selection probability `w_i / Σ w`.
    pub initial_probability: f64,
}

fn validate_weights(weights: &[f64], n: usize) -> SamplingResult<f64> {
    if weights.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    if n > weights.len() {
        return Err(SamplingError::SampleTooLarge {
            requested: n,
            population: weights.len(),
        });
    }
    let mut total = 0.0;
    let mut positive = 0usize;
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(SamplingError::InvalidWeights {
                message: format!("weight {w} is negative or non-finite"),
            });
        }
        if w > 0.0 {
            positive += 1;
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(SamplingError::InvalidWeights {
            message: "all weights are zero".into(),
        });
    }
    if positive < n {
        return Err(SamplingError::InvalidWeights {
            message: format!("only {positive} positive weights but {n} draws requested"),
        });
    }
    Ok(total)
}

/// Draw `n` objects without replacement with probability proportional to
/// `weights`, by literal sequential draws over a Fenwick tree.
///
/// # Errors
///
/// Returns an error for invalid weights, `n` larger than the population,
/// or fewer than `n` positive weights.
pub fn weighted_sample_fenwick<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> SamplingResult<Vec<WeightedDraw>> {
    let total = validate_weights(weights, n)?;
    let mut tree = Fenwick::new(weights);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let remaining = tree.total();
        debug_assert!(remaining > 0.0);
        let target = rng.random::<f64>() * remaining;
        // `u * remaining` can round up to exactly `remaining` (u is
        // `< 1` but the product's nearest representable may be the
        // total itself), pushing `target` out of `search`'s domain;
        // the draw then belongs to the topmost surviving leaf.
        let idx = tree
            .search(target)
            .or_else(|| tree.last_positive())
            .expect("positive remaining weight guarantees a hit");
        out.push(WeightedDraw {
            index: idx,
            initial_probability: weights[idx] / total,
        });
        tree.zero(idx);
    }
    Ok(out)
}

/// Draw `n` objects without replacement with probability proportional to
/// `weights`, using Efraimidis–Spirakis exponential keys.
///
/// Each item gets key `u^{1/w}` (`u` uniform); taking the `n` largest
/// keys in descending order yields draws identically distributed to the
/// sequential procedure of [`weighted_sample_fenwick`].
///
/// # Errors
///
/// Same conditions as [`weighted_sample_fenwick`].
pub fn weighted_sample_es<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> SamplingResult<Vec<WeightedDraw>> {
    let total = validate_weights(weights, n)?;
    // Use log-keys for numeric stability: ln(u)/w, larger is better.
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(i, &w)| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            (u.ln() / w, i)
        })
        .collect();
    // Select the n largest keys, then order them descending (draw order).
    keyed.select_nth_unstable_by(n - 1, |a, b| b.0.total_cmp(&a.0));
    keyed.truncate(n);
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    Ok(keyed
        .into_iter()
        .map(|(_, i)| WeightedDraw {
            index: i,
            initial_probability: weights[i] / total,
        })
        .collect())
}

/// Madow systematic PPS sampling: exactly `n` draws without
/// replacement whose **first-order inclusion probabilities are exactly**
/// `π_i = min(1, n·w_i/Σw)` (with certainty selections peeled off
/// iteratively and the remaining budget redistributed).
///
/// Each returned draw carries its *inclusion* probability in
/// `initial_probability` — exactly what the Horvitz–Thompson estimator
/// consumes. Unlike Poisson sampling, the sample size is deterministic,
/// so a hard labeling budget is respected exactly.
///
/// The object order is randomized before the systematic pass, which
/// kills the periodicity pathologies of systematic sampling; joint
/// (second-order) inclusion probabilities remain design-dependent, so
/// HT *variance* estimates under this design are approximations (the
/// usual practice for systematic PPS).
///
/// # Errors
///
/// Same conditions as [`weighted_sample_fenwick`].
pub fn systematic_pps_sample<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> SamplingResult<Vec<WeightedDraw>> {
    validate_weights(weights, n)?;
    if n == 0 {
        return Ok(Vec::new());
    }

    // Peel off certainty selections: objects with n'·w/Σ'w ≥ 1 are
    // included with probability 1; repeat on the remainder until the
    // assignment is stable. At most n' objects can qualify per pass
    // (their π's sum to ≤ n'), so `certain` never overshoots n.
    let mut certain: Vec<usize> = Vec::new();
    let mut rest: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] > 0.0).collect();
    loop {
        let budget = n - certain.len();
        if budget == 0 || rest.is_empty() {
            break;
        }
        let total: f64 = rest.iter().map(|&i| weights[i]).sum();
        let threshold = total / budget as f64; // w ≥ total/n' ⇔ π ≥ 1
        let before = certain.len();
        rest.retain(|&i| {
            if weights[i] >= threshold {
                certain.push(i);
                false
            } else {
                true
            }
        });
        if certain.len() == before {
            break;
        }
    }
    let budget = n - certain.len();
    let mut out: Vec<WeightedDraw> = certain
        .iter()
        .map(|&i| WeightedDraw {
            index: i,
            initial_probability: 1.0,
        })
        .collect();
    if budget == 0 {
        return Ok(out);
    }

    // Systematic pass over the randomized remainder: cumulate
    // π_i = budget·w_i/Σw (all < 1 now) and select where the cumsum
    // crosses u + k for k = 0..budget.
    //
    // The Fisher–Yates index is drawn with the integer-range draw
    // (Lemire widening multiply), never `(random::<f64>() * n) as
    // usize`: the float product can round up to `n` (an out-of-range
    // index), and clamping it back double-weights the top element.
    rest.sort_unstable();
    for k in (1..rest.len()).rev() {
        let j = rng.random_range(0..=k);
        rest.swap(k, j);
    }
    let total: f64 = rest.iter().map(|&i| weights[i]).sum();
    let u: f64 = rng.random::<f64>();
    let mut cum = 0.0;
    let mut next_tick = u;
    for &i in &rest {
        let pi = budget as f64 * weights[i] / total;
        cum += pi;
        if cum > next_tick {
            out.push(WeightedDraw {
                index: i,
                initial_probability: pi,
            });
            next_tick += 1.0;
        }
    }
    // Float rounding can drop the final tick; top up from unselected
    // objects (probability-negligible path, keeps the size exact).
    if out.len() < n {
        let chosen: std::collections::HashSet<usize> = out.iter().map(|d| d.index).collect();
        for &i in &rest {
            if out.len() == n {
                break;
            }
            if !chosen.contains(&i) {
                out.push(WeightedDraw {
                    index: i,
                    initial_probability: budget as f64 * weights[i] / total,
                });
            }
        }
    }
    debug_assert_eq!(out.len(), n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn first_draw_frequencies(
        method: impl Fn(&mut StdRng, &[f64], usize) -> SamplingResult<Vec<WeightedDraw>>,
        weights: &[f64],
        trials: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..trials {
            let draws = method(&mut rng, weights, 1).unwrap();
            counts[draws[0].index] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect()
    }

    #[test]
    fn first_draw_proportional_to_weight_fenwick() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freqs = first_draw_frequencies(weighted_sample_fenwick, &w, 40_000, 11);
        for (i, f) in freqs.iter().enumerate() {
            let expect = w[i] / 10.0;
            assert!((f - expect).abs() < 0.01, "i={i}: {f} vs {expect}");
        }
    }

    #[test]
    fn first_draw_proportional_to_weight_es() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freqs = first_draw_frequencies(weighted_sample_es, &w, 40_000, 13);
        for (i, f) in freqs.iter().enumerate() {
            let expect = w[i] / 10.0;
            assert!((f - expect).abs() < 0.01, "i={i}: {f} vs {expect}");
        }
    }

    #[test]
    fn methods_agree_on_pairwise_set_distribution() {
        // Drawing 2 of 3 without replacement: compare the distribution of
        // the drawn *set* between the two implementations.
        let w = [5.0, 3.0, 2.0];
        let trials = 60_000;
        let run = |fenwick: bool, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..trials {
                let d = if fenwick {
                    weighted_sample_fenwick(&mut rng, &w, 2).unwrap()
                } else {
                    weighted_sample_es(&mut rng, &w, 2).unwrap()
                };
                let mut key: Vec<usize> = d.iter().map(|x| x.index).collect();
                key.sort_unstable();
                *counts.entry(key).or_insert(0usize) += 1;
            }
            counts
        };
        let a = run(true, 21);
        let b = run(false, 22);
        for (key, ca) in &a {
            let cb = b.get(key).copied().unwrap_or(0);
            let fa = *ca as f64 / trials as f64;
            let fb = cb as f64 / trials as f64;
            assert!(
                (fa - fb).abs() < 0.015,
                "set {key:?}: fenwick {fa} vs es {fb}"
            );
        }
    }

    #[test]
    fn no_duplicates_and_initial_probs_are_correct() {
        let w = [0.5, 0.0, 1.5, 2.0];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let d = weighted_sample_fenwick(&mut rng, &w, 3).unwrap();
            let set: HashSet<_> = d.iter().map(|x| x.index).collect();
            assert_eq!(set.len(), 3);
            assert!(!set.contains(&1), "zero-weight item drawn");
            for x in &d {
                assert!((x.initial_probability - w[x.index] / 4.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_weight_items_never_drawn_es() {
        let w = [0.0, 1.0, 0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let d = weighted_sample_es(&mut rng, &w, 2).unwrap();
            let idx: HashSet<_> = d.iter().map(|x| x.index).collect();
            assert_eq!(idx, HashSet::from([1usize, 3]));
        }
    }

    #[test]
    fn input_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(weighted_sample_fenwick(&mut rng, &[], 0).is_err());
        assert!(weighted_sample_fenwick(&mut rng, &[1.0], 2).is_err());
        assert!(weighted_sample_fenwick(&mut rng, &[-1.0, 1.0], 1).is_err());
        assert!(weighted_sample_fenwick(&mut rng, &[0.0, 0.0], 1).is_err());
        assert!(weighted_sample_fenwick(&mut rng, &[f64::NAN, 1.0], 1).is_err());
        // More draws than positive weights.
        assert!(weighted_sample_fenwick(&mut rng, &[0.0, 1.0], 2).is_err());
        assert!(weighted_sample_es(&mut rng, &[0.0, 1.0], 2).is_err());
    }

    #[test]
    fn full_draw_returns_permutation() {
        let w = [1.0, 2.0, 3.0];
        let mut rng = StdRng::seed_from_u64(77);
        let d = weighted_sample_es(&mut rng, &w, 3).unwrap();
        let mut idx: Vec<_> = d.iter().map(|x| x.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    // -- systematic PPS --------------------------------------------------

    #[test]
    fn systematic_pps_draws_exactly_n_distinct() {
        let weights: Vec<f64> = (0..60).map(|i| 0.2 + f64::from(i % 9)).collect();
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 5, 20, 59] {
            let d = systematic_pps_sample(&mut rng, &weights, n).unwrap();
            assert_eq!(d.len(), n);
            let set: HashSet<usize> = d.iter().map(|x| x.index).collect();
            assert_eq!(set.len(), n, "duplicates at n={n}");
            for x in &d {
                assert!(x.initial_probability > 0.0 && x.initial_probability <= 1.0);
            }
        }
    }

    #[test]
    fn systematic_pps_inclusion_probabilities_are_exact() {
        // Empirical inclusion frequency must match π_i = min(1, n·w/Σw)
        // — the property that makes Horvitz–Thompson exactly unbiased.
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let n = 2;
        let trials = 40_000u32;
        let mut hits = [0u32; 5];
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..trials {
            for d in systematic_pps_sample(&mut rng, &weights, n).unwrap() {
                hits[d.index] += 1;
            }
        }
        // π₀ = min(1, 2·8/16) = 1 (certainty); the rest share budget 1
        // over total 8: π₁ = 4/8, π₂ = 2/8, π₃ = π₄ = 1/8.
        let want = [1.0, 0.5, 0.25, 0.125, 0.125];
        for (i, &w) in want.iter().enumerate() {
            let got = f64::from(hits[i]) / f64::from(trials);
            assert!((got - w).abs() < 0.01, "π_{i}: got {got}, want {w}");
        }
    }

    #[test]
    fn systematic_pps_reported_probabilities_match_design() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        let d = systematic_pps_sample(&mut rng, &weights, 2).unwrap();
        for x in &d {
            let want = match x.index {
                0 => 1.0,
                1 => 0.5,
                2 => 0.25,
                _ => 0.125,
            };
            assert!(
                (x.initial_probability - want).abs() < 1e-12,
                "index {}: {} vs {want}",
                x.index,
                x.initial_probability
            );
        }
    }

    #[test]
    fn systematic_pps_uniform_weights_reduce_to_srs() {
        let weights = vec![1.0; 30];
        let mut rng = StdRng::seed_from_u64(7);
        let d = systematic_pps_sample(&mut rng, &weights, 10).unwrap();
        assert_eq!(d.len(), 10);
        for x in &d {
            assert!((x.initial_probability - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    /// Adversarial generator pinned to the RNG's maximum output:
    /// `random::<f64>()` returns the largest representable value below
    /// 1, the boundary where `(random * n) as usize` draws go wrong.
    struct MaxRng;

    impl rand::Rng for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    /// Counterpart pinned to the minimum output.
    struct MinRng;

    impl rand::Rng for MinRng {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn boundary_regression_range_draw_pins_index_bounds() {
        // This module used to draw shuffle indices as
        // `(rng.random::<f64>() * (k + 1) as f64) as usize`, clamped
        // with `.min(k)`. With unit draws built from fewer mantissa
        // bits than the index width (e.g. the real-rand-style
        // `u64 / 2⁶⁴` mapping, where `random()` rounds to exactly 1.0),
        // the product reaches `k + 1` and the clamp double-weights the
        // top element; even without the clamp firing, the float-scale
        // mapping is not exactly uniform. The integer-range draw
        // (Lemire widening multiply) has neither failure mode. Pin its
        // boundary behavior: the extreme RNG outputs map exactly to the
        // extreme indices and never escape the range.
        for k in [1usize, 7, 1024, (3usize << 51) - 1, usize::MAX - 1] {
            assert_eq!(MaxRng.random_range(0..=k), k, "top index, in range");
            assert_eq!(MinRng.random_range(0..=k), 0, "bottom index");
        }
        assert_eq!(MaxRng.random_range(0..5usize), 4);
        assert_eq!(MinRng.random_range(0..5usize), 0);
        // The unit draw itself stays below 1 in this workspace's shim —
        // the fix must hold even for generators where it does not.
        assert!(MaxRng.random::<f64>() < 1.0);
    }

    #[test]
    fn boundary_regression_samplers_survive_max_rng() {
        // All three samplers must stay panic-free and in-range when
        // every draw sits on the upper boundary.
        let w = [0.5, 1.0, 2.0, 0.25, 4.0];
        let d = systematic_pps_sample(&mut MaxRng, &w, 3).unwrap();
        assert_eq!(d.len(), 3);
        let distinct: HashSet<usize> = d.iter().map(|x| x.index).collect();
        assert_eq!(distinct.len(), 3);
        for x in &d {
            assert!(x.index < w.len());
        }
        // Fenwick draw-by-draw: `u * remaining` rounds up to the total
        // here; the draw must fall back to the last surviving leaf
        // instead of panicking.
        let d = weighted_sample_fenwick(&mut MaxRng, &w, w.len()).unwrap();
        let idx: HashSet<usize> = d.iter().map(|x| x.index).collect();
        assert_eq!(idx.len(), w.len());
        // Efraimidis–Spirakis path as well (keys degenerate but valid).
        let d = weighted_sample_es(&mut MaxRng, &w, 2).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn systematic_pps_validates_input() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(systematic_pps_sample(&mut rng, &[], 1).is_err());
        assert!(systematic_pps_sample(&mut rng, &[1.0], 2).is_err());
        assert!(systematic_pps_sample(&mut rng, &[f64::NAN, 1.0], 1).is_err());
        assert!(systematic_pps_sample(&mut rng, &[0.0, 0.0], 1).is_err());
        let d = systematic_pps_sample(&mut rng, &[1.0, 2.0], 0).unwrap();
        assert!(d.is_empty());
    }
}
