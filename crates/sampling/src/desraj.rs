//! The Des Raj ordered estimator for PPS sampling without replacement.
//!
//! Paper §4.1, Eq. (3): after drawing objects `o_1, o_2, …` according to
//! initial probabilities `π` *without replacement*, compute for each draw
//!
//! ```text
//! p_i = (1/N) ( Σ_{j<i} q(o_j)  +  q(o_i)/π(o_i) · (1 − Σ_{j<i} π(o_j)) )
//! ```
//!
//! Each `p_i` is an unbiased estimator of the positive proportion; the
//! running estimate after `n` draws is `pˆ(n) = (1/n) Σ p_i`, with
//! variance estimated by the sample variance of the `p_i` divided by `n`.
//! The estimator is unbiased **regardless of the quality of the weights**
//! — the property that lets LWS use an arbitrary learned classifier score
//! safely.

use crate::error::{SamplingError, SamplingResult};
use crate::estimate::CountEstimate;
use lts_stats::{t_interval, RunningStats};

/// Incremental Des Raj estimator.
///
/// Push draws in order; query the running estimate at any point.
#[derive(Debug, Clone)]
pub struct DesRaj {
    population: usize,
    sum_q: f64,
    sum_pi: f64,
    stats: RunningStats,
}

impl DesRaj {
    /// Create an estimator for a population of `N` objects.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty population.
    pub fn new(population: usize) -> SamplingResult<Self> {
        if population == 0 {
            return Err(SamplingError::EmptyPopulation);
        }
        Ok(Self {
            population,
            sum_q: 0.0,
            sum_pi: 0.0,
            stats: RunningStats::new(),
        })
    }

    /// Record the `i`-th draw: its label `q(o_i)` and its **initial**
    /// selection probability `π(o_i)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `pi` is outside `(0, 1]`.
    pub fn push(&mut self, label: bool, pi: f64) -> SamplingResult<()> {
        if !(pi > 0.0 && pi <= 1.0) {
            return Err(SamplingError::InvalidProbability { value: pi });
        }
        let q = if label { 1.0 } else { 0.0 };
        let n = self.population as f64;
        let p_i = (self.sum_q + q / pi * (1.0 - self.sum_pi)) / n;
        self.stats.push(p_i);
        self.sum_q += q;
        self.sum_pi += pi;
        Ok(())
    }

    /// Number of draws recorded so far.
    pub fn draws(&self) -> usize {
        usize::try_from(self.stats.count()).expect("draw count fits usize")
    }

    /// Running proportion estimate `pˆ(n)`.
    pub fn proportion(&self) -> f64 {
        self.stats.mean()
    }

    /// Estimated variance of `pˆ(n)` (`None` before the second draw).
    pub fn proportion_variance(&self) -> Option<f64> {
        let n = self.stats.count();
        self.stats.sample_variance().map(|s2| s2 / n as f64)
    }

    /// The running count estimate with a t-interval.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two draws were recorded or the
    /// level is invalid.
    pub fn count_estimate(&self, level: f64) -> SamplingResult<CountEstimate> {
        let n = self.draws();
        if n < 2 {
            return Err(SamplingError::EmptyPopulation);
        }
        let nf = self.population as f64;
        let p = self.proportion();
        let var = self.proportion_variance().expect("n >= 2");
        let se = var.max(0.0).sqrt();
        let interval = t_interval(p, se, (n - 1) as f64, level)?;
        Ok(CountEstimate {
            count: p * nf,
            std_error: se * nf,
            interval: interval.scaled(nf),
            df: Some((n - 1) as f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::weighted_sample_fenwick;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_classifier_gives_exact_estimates() {
        // §4.1: with an accurate, confident classifier every sampled
        // object is positive with π = 1/(pN); each p_i equals p exactly.
        let population = 100usize;
        let positives = 20usize;
        let p = positives as f64 / population as f64;
        let pi = 1.0 / (p * population as f64); // = 1/20
        let mut dr = DesRaj::new(population).unwrap();
        for _ in 0..10 {
            dr.push(true, pi).unwrap();
        }
        assert!((dr.proportion() - p).abs() < 1e-12);
        let est = dr.count_estimate(0.95).unwrap();
        assert!((est.count - positives as f64).abs() < 1e-9);
        assert!(est.std_error < 1e-9);
    }

    #[test]
    fn unbiased_under_arbitrary_weights_monte_carlo() {
        // Small population with known truth; skewed, "wrong" weights.
        // The Des Raj estimate must still average to the truth.
        let labels = [true, false, true, false, false, true, false, false];
        let weights = [5.0, 1.0, 0.5, 2.0, 4.0, 1.5, 0.25, 3.0];
        let truth = labels.iter().filter(|&&b| b).count() as f64;
        let mut rng = StdRng::seed_from_u64(314);
        let trials = 30_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let draws = weighted_sample_fenwick(&mut rng, &weights, 4).unwrap();
            let mut dr = DesRaj::new(labels.len()).unwrap();
            for d in draws {
                dr.push(labels[d.index], d.initial_probability).unwrap();
            }
            sum += dr.proportion() * labels.len() as f64;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() < 0.05,
            "Des Raj mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn running_estimates_are_available_after_each_draw() {
        let mut dr = DesRaj::new(10).unwrap();
        dr.push(true, 0.2).unwrap();
        assert_eq!(dr.draws(), 1);
        assert!(dr.proportion_variance().is_none());
        assert!(dr.count_estimate(0.95).is_err());
        dr.push(false, 0.1).unwrap();
        assert!(dr.proportion_variance().is_some());
        let est = dr.count_estimate(0.95).unwrap();
        assert!(est.interval.lo <= est.count && est.count <= est.interval.hi);
    }

    #[test]
    fn rejects_invalid_probabilities() {
        let mut dr = DesRaj::new(10).unwrap();
        assert!(dr.push(true, 0.0).is_err());
        assert!(dr.push(true, -0.5).is_err());
        assert!(dr.push(true, 1.5).is_err());
        assert!(dr.push(true, f64::NAN).is_err());
        assert!(DesRaj::new(0).is_err());
    }

    #[test]
    fn first_draw_formula_matches_hand_computation() {
        // p_1 = q_1 / (π_1 N).
        let mut dr = DesRaj::new(50).unwrap();
        dr.push(true, 0.04).unwrap();
        assert!((dr.proportion() - 1.0 / (0.04 * 50.0)).abs() < 1e-12);
        // Second draw: p_2 = (q_1 + q_2/π_2 (1-π_1)) / N.
        let mut dr2 = DesRaj::new(50).unwrap();
        dr2.push(true, 0.04).unwrap();
        dr2.push(false, 0.02).unwrap();
        let p1 = 1.0 / (0.04 * 50.0);
        let p2 = (1.0 + 0.0) / 50.0;
        assert!((dr2.proportion() - (p1 + p2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_coverage_is_reasonable() {
        // 95% CIs from repeated runs should cover the truth most of the
        // time (loose bound: ≥ 80% on this small, skewed example).
        let labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let weights: Vec<f64> = (0..30).map(|i| 1.0 + (i % 5) as f64).collect();
        let truth = labels.iter().filter(|&&b| b).count() as f64;
        let mut rng = StdRng::seed_from_u64(555);
        let trials = 800;
        let mut covered = 0;
        for _ in 0..trials {
            let draws = weighted_sample_fenwick(&mut rng, &weights, 12).unwrap();
            let mut dr = DesRaj::new(labels.len()).unwrap();
            for d in draws {
                dr.push(labels[d.index], d.initial_probability).unwrap();
            }
            if dr.count_estimate(0.95).unwrap().interval.contains(truth) {
                covered += 1;
            }
        }
        let coverage = f64::from(covered) / trials as f64;
        assert!(coverage > 0.8, "coverage {coverage}");
    }
}
