//! Stratified sampling: allocation, drawing, and estimation.
//!
//! Implements the paper's §3.1 machinery:
//!
//! * **Proportional allocation** (`n_h ∝ N_h`) — the SSP baseline;
//! * **Neyman allocation** (`n_h ∝ N_h·S_h`) — used by SSN and by the
//!   second stage of LSS;
//! * the **footnote-1 rebalancing**: no stratum is allotted more samples
//!   than it contains, and no stratum fewer than a prescribed minimum,
//!   with the allocation rebalanced after meeting those constraints;
//! * the **stratified proportion estimator** of Eq. (1) with its
//!   unbiased variance estimate and t-interval.

use crate::error::{SamplingError, SamplingResult};
use crate::estimate::CountEstimate;
use crate::srs::sample_without_replacement;
use lts_stats::t_interval;
use rand::Rng;

/// Per-stratum tallies used by the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratumSample {
    /// Stratum size `N_h` (number of objects in the stratum).
    pub population: usize,
    /// Samples drawn from the stratum, `n_h`.
    pub sampled: usize,
    /// Positive labels among the samples.
    pub positives: usize,
}

impl StratumSample {
    /// Sample proportion `pˆ_h` (0 when nothing was sampled).
    pub fn p_hat(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.positives as f64 / self.sampled as f64
        }
    }

    /// Unbiased within-stratum variance estimate
    /// `s²_h = n_h/(n_h−1) · pˆ_h(1−pˆ_h)` (0 when `n_h < 2`).
    pub fn s2(&self) -> f64 {
        if self.sampled < 2 {
            0.0
        } else {
            let n = self.sampled as f64;
            let p = self.p_hat();
            n / (n - 1.0) * p * (1.0 - p)
        }
    }

    /// Laplace-smoothed standard deviation for **allocation** purposes:
    /// `√(p₊(1−p₊))` with `p₊ = (k+1)/(n+2)`.
    ///
    /// A pilot that happens to be label-homogeneous yields `s_h = 0`,
    /// and plugging that into Neyman allocation starves the stratum even
    /// though its true variance may be nonzero — the failure mode the
    /// paper's footnote-1 minimum guards against. The smoothed value is
    /// positive but shrinks as `1/√n` with growing pilot evidence of
    /// purity, so allocation degrades gracefully instead of falling off
    /// a cliff. Estimation always uses the unbiased [`Self::s2`].
    pub fn s_for_allocation(&self) -> f64 {
        let n = self.sampled as f64;
        let p = (self.positives as f64 + 1.0) / (n + 2.0);
        (p * (1.0 - p)).sqrt()
    }
}

/// Distribute `total` samples over strata proportionally to `weights`,
/// subject to `lo_h ≤ n_h ≤ N_h` where
/// `lo_h = min(min_per_stratum, N_h)`.
///
/// This is the paper's footnote-1 rebalancing: strata clamped at a bound
/// are fixed and the remainder is re-distributed among the rest;
/// fractional shares are resolved by largest remainder. Deterministic.
///
/// # Errors
///
/// Returns an error if lengths mismatch, weights are invalid, or the
/// total is infeasible (`total < Σ lo_h` or `total > Σ N_h`).
pub fn allocate(
    weights: &[f64],
    sizes: &[usize],
    total: usize,
    min_per_stratum: usize,
) -> SamplingResult<Vec<usize>> {
    if weights.len() != sizes.len() {
        return Err(SamplingError::LengthMismatch {
            expected: sizes.len(),
            found: weights.len(),
        });
    }
    if sizes.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(SamplingError::InvalidWeights {
                message: format!("weight {w} is negative or non-finite"),
            });
        }
    }
    let lower: Vec<usize> = sizes.iter().map(|&n| min_per_stratum.min(n)).collect();
    let lower_sum: usize = lower.iter().sum();
    let upper_sum: usize = sizes.iter().sum();
    if total < lower_sum || total > upper_sum {
        return Err(SamplingError::InfeasibleAllocation {
            total,
            lower: lower_sum,
            upper: upper_sum,
        });
    }

    let h = sizes.len();
    let mut alloc = lower.clone();
    let mut remaining = total - lower_sum;
    // `open[h]` = stratum can still take more samples.
    let mut open: Vec<bool> = (0..h).map(|i| alloc[i] < sizes[i]).collect();

    while remaining > 0 {
        // Effective weights of open strata; if all zero, fall back to
        // remaining room so the budget can always be placed.
        let mut wsum: f64 = (0..h).filter(|&i| open[i]).map(|i| weights[i]).sum();
        let use_room_fallback = wsum <= 0.0;
        if use_room_fallback {
            wsum = (0..h)
                .filter(|&i| open[i])
                .map(|i| (sizes[i] - alloc[i]) as f64)
                .sum();
        }
        debug_assert!(wsum > 0.0, "feasibility guarantees open capacity");

        // Ideal fractional shares for open strata.
        let mut shares: Vec<(usize, f64)> = Vec::new();
        for i in 0..h {
            if open[i] {
                let w = if use_room_fallback {
                    (sizes[i] - alloc[i]) as f64
                } else {
                    weights[i]
                };
                shares.push((i, remaining as f64 * w / wsum));
            }
        }

        // Clamp any share exceeding the stratum's remaining room; those
        // strata are filled and closed, then we redistribute.
        let mut clamped_any = false;
        for &(i, share) in &shares {
            let room = sizes[i] - alloc[i];
            if share > room as f64 {
                alloc[i] = sizes[i];
                open[i] = false;
                remaining -= room;
                clamped_any = true;
            }
        }
        if clamped_any {
            continue;
        }

        // No clamping: round by largest remainder so the sum is exact.
        let mut floors = 0usize;
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(shares.len());
        for &(i, share) in &shares {
            let fl = share.floor() as usize;
            alloc[i] += fl;
            floors += fl;
            fracs.push((i, share - fl as f64));
        }
        let mut leftover = remaining - floors;
        fracs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (i, _) in fracs {
            if leftover == 0 {
                break;
            }
            if alloc[i] < sizes[i] {
                alloc[i] += 1;
                leftover -= 1;
            }
        }
        remaining = leftover;
        if remaining > 0 {
            // Rounding pushed some strata to capacity; loop to place the
            // remainder among still-open strata.
            for i in 0..h {
                open[i] = alloc[i] < sizes[i];
            }
        } else {
            break;
        }
    }
    debug_assert_eq!(alloc.iter().sum::<usize>(), total);
    Ok(alloc)
}

/// Proportional allocation: `n_h ∝ N_h` with rebalancing.
///
/// # Errors
///
/// Same feasibility conditions as [`allocate`].
pub fn proportional_allocation(
    sizes: &[usize],
    total: usize,
    min_per_stratum: usize,
) -> SamplingResult<Vec<usize>> {
    let weights: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    allocate(&weights, sizes, total, min_per_stratum)
}

/// Neyman allocation: `n_h ∝ N_h·s_h` with rebalancing. `s` holds the
/// (estimated) within-stratum standard deviations.
///
/// # Errors
///
/// Same feasibility conditions as [`allocate`].
pub fn neyman_allocation(
    sizes: &[usize],
    s: &[f64],
    total: usize,
    min_per_stratum: usize,
) -> SamplingResult<Vec<usize>> {
    if s.len() != sizes.len() {
        return Err(SamplingError::LengthMismatch {
            expected: sizes.len(),
            found: s.len(),
        });
    }
    let weights: Vec<f64> = sizes
        .iter()
        .zip(s)
        .map(|(&n, &sd)| n as f64 * sd.max(0.0))
        .collect();
    allocate(&weights, sizes, total, min_per_stratum)
}

/// Group object indices `0..assignments.len()` by stratum id.
///
/// `num_strata` must exceed every assignment id.
pub fn group_by_stratum(assignments: &[usize], num_strata: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); num_strata];
    for (i, &s) in assignments.iter().enumerate() {
        groups[s].push(i);
    }
    groups
}

/// Draw `alloc[h]` objects from each stratum (SRS within stratum) and
/// return the drawn indices per stratum.
///
/// # Errors
///
/// Returns an error if an allocation exceeds its stratum size.
pub fn draw_stratified<R: Rng + ?Sized>(
    rng: &mut R,
    strata: &[Vec<usize>],
    alloc: &[usize],
) -> SamplingResult<Vec<Vec<usize>>> {
    if strata.len() != alloc.len() {
        return Err(SamplingError::LengthMismatch {
            expected: strata.len(),
            found: alloc.len(),
        });
    }
    let mut out = Vec::with_capacity(strata.len());
    for (members, &n_h) in strata.iter().zip(alloc) {
        let picks = sample_without_replacement(rng, n_h, members.len())?;
        out.push(picks.into_iter().map(|i| members[i]).collect());
    }
    Ok(out)
}

/// The stratified count estimate of Eq. (1):
/// `pˆ = Σ W_h pˆ_h`, `V̂(pˆ) = Σ W²_h s²_h/n_h − (1/N) Σ W_h s²_h`,
/// count `pˆ·N`, with a t-interval on `Σ(n_h−1)` degrees of freedom.
///
/// Strata with `n_h = 0` contribute their weight with `pˆ_h = 0` — the
/// caller is responsible for allocating at least one sample to strata
/// that may contain positives (the `min_per_stratum` constraint exists
/// for exactly this reason).
///
/// # Errors
///
/// Returns an error if no stratum was sampled or the level is invalid.
pub fn stratified_count_estimate(
    strata: &[StratumSample],
    level: f64,
) -> SamplingResult<CountEstimate> {
    let population: usize = strata.iter().map(|s| s.population).sum();
    if population == 0 {
        return Err(SamplingError::EmptyPopulation);
    }
    let total_sampled: usize = strata.iter().map(|s| s.sampled).sum();
    if total_sampled == 0 {
        return Err(SamplingError::EmptyPopulation);
    }
    let nf = population as f64;
    let mut p_hat = 0.0;
    let mut var = 0.0;
    let mut df = 0.0;
    for s in strata {
        if s.sampled > s.population {
            return Err(SamplingError::SampleTooLarge {
                requested: s.sampled,
                population: s.population,
            });
        }
        let w = s.population as f64 / nf;
        p_hat += w * s.p_hat();
        if s.sampled >= 2 {
            let s2 = s.s2();
            var += w * w * s2 / s.sampled as f64 - w * s2 / nf;
            df += (s.sampled - 1) as f64;
        }
    }
    let var = var.max(0.0);
    let se = var.sqrt();
    let df = df.max(1.0);
    let interval = t_interval(p_hat, se, df, level)?;
    Ok(CountEstimate {
        count: p_hat * nf,
        std_error: se * nf,
        interval: interval.scaled(nf).clamped(0.0, nf),
        df: Some(df),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proportional_allocation_basic() {
        let sizes = [100, 200, 700];
        // With no minimum the split is exactly proportional.
        let a = proportional_allocation(&sizes, 100, 0).unwrap();
        assert_eq!(a, vec![10, 20, 70]);
        // With a minimum the split stays near-proportional and exact-sum.
        let a = proportional_allocation(&sizes, 100, 1).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 100);
        assert!(a[2] >= 68 && a[1] >= 19 && a[0] >= 9, "{a:?}");
    }

    #[test]
    fn allocation_respects_minimum() {
        let sizes = [5, 1000, 1000];
        let a = proportional_allocation(&sizes, 50, 5).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 50);
        assert!(a[0] >= 5);
        assert!(a[1] >= 5 && a[2] >= 5);
    }

    #[test]
    fn allocation_caps_at_stratum_size() {
        // Middle stratum is tiny but heavy; its allocation must cap at 3.
        let sizes = [100, 3, 100];
        let weights = [1.0, 1000.0, 1.0];
        let a = allocate(&weights, &sizes, 23, 1).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 23);
        assert_eq!(a[1], 3);
        assert!(a[0] >= 1 && a[2] >= 1);
    }

    #[test]
    fn zero_weights_fall_back_to_room() {
        let sizes = [10, 10];
        let a = allocate(&[0.0, 0.0], &sizes, 10, 0).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 10);
        // Equal room → even split.
        assert_eq!(a, vec![5, 5]);
    }

    #[test]
    fn neyman_prefers_high_variance_strata() {
        let sizes = [500, 500];
        let a = neyman_allocation(&sizes, &[0.5, 0.05], 100, 2).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 100);
        assert!(a[0] > a[1], "Neyman should favor the noisy stratum: {a:?}");
    }

    #[test]
    fn neyman_with_zero_sd_still_meets_minimums() {
        let sizes = [100, 100, 100];
        let a = neyman_allocation(&sizes, &[0.0, 0.0, 0.5], 30, 5).unwrap();
        assert_eq!(a.iter().sum::<usize>(), 30);
        assert!(a[0] >= 5 && a[1] >= 5);
        assert!(a[2] >= 15, "weighted stratum should dominate: {a:?}");
    }

    #[test]
    fn infeasible_allocations_error() {
        assert!(proportional_allocation(&[10, 10], 21, 0).is_err());
        assert!(proportional_allocation(&[10, 10], 3, 5).is_err()); // lower bound 10 > 3
        assert!(allocate(&[1.0], &[1, 2], 1, 0).is_err()); // length mismatch
        assert!(allocate(&[-1.0], &[5], 1, 0).is_err());
        assert!(allocate(&[], &[], 0, 0).is_err());
    }

    #[test]
    fn census_allocation_is_exact() {
        let sizes = [3, 4, 5];
        let a = proportional_allocation(&sizes, 12, 1).unwrap();
        assert_eq!(a, vec![3, 4, 5]);
    }

    #[test]
    fn allocation_sums_exactly_for_awkward_totals() {
        // Weights that produce nasty fractions.
        let sizes = [17, 23, 31, 11];
        for total in [4usize, 7, 19, 40, 82] {
            let a = proportional_allocation(&sizes, total, 1).unwrap();
            assert_eq!(a.iter().sum::<usize>(), total, "total={total}");
            for (i, &n) in a.iter().enumerate() {
                assert!(n <= sizes[i]);
                assert!(n >= 1.min(sizes[i]));
            }
        }
    }

    #[test]
    fn group_by_stratum_partitions() {
        let assign = [0usize, 2, 1, 0, 2, 2];
        let groups = group_by_stratum(&assign, 3);
        assert_eq!(groups[0], vec![0, 3]);
        assert_eq!(groups[1], vec![2]);
        assert_eq!(groups[2], vec![1, 4, 5]);
    }

    #[test]
    fn draw_stratified_respects_allocation() {
        let strata = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8, 9]];
        let mut rng = StdRng::seed_from_u64(3);
        let draws = draw_stratified(&mut rng, &strata, &[2, 3]).unwrap();
        assert_eq!(draws[0].len(), 2);
        assert_eq!(draws[1].len(), 3);
        assert!(draws[0].iter().all(|i| strata[0].contains(i)));
        assert!(draws[1].iter().all(|i| strata[1].contains(i)));
        assert!(draw_stratified(&mut rng, &strata, &[5, 0]).is_err());
    }

    #[test]
    fn estimator_hand_computation() {
        // Two strata: (N=60, n=6, k=3), (N=40, n=4, k=4).
        let strata = [
            StratumSample {
                population: 60,
                sampled: 6,
                positives: 3,
            },
            StratumSample {
                population: 40,
                sampled: 4,
                positives: 4,
            },
        ];
        let e = stratified_count_estimate(&strata, 0.95).unwrap();
        // p̂ = 0.6*0.5 + 0.4*1.0 = 0.7 → count 70.
        assert!((e.count - 70.0).abs() < 1e-9);
        // Second stratum has zero variance; only the first contributes.
        assert!(e.std_error > 0.0);
        assert!(e.interval.contains(70.0));
    }

    #[test]
    fn homogeneous_strata_give_zero_variance() {
        let strata = [
            StratumSample {
                population: 50,
                sampled: 5,
                positives: 0,
            },
            StratumSample {
                population: 50,
                sampled: 5,
                positives: 5,
            },
        ];
        let e = stratified_count_estimate(&strata, 0.95).unwrap();
        assert!((e.count - 50.0).abs() < 1e-9);
        assert!(e.std_error.abs() < 1e-12);
    }

    #[test]
    fn estimator_is_unbiased_monte_carlo() {
        // Ground truth: stratum A 20% positive, stratum B 80% positive.
        let stratum_a: Vec<bool> = (0..50).map(|i| i % 5 == 0).collect();
        let stratum_b: Vec<bool> = (0..30).map(|i| i % 5 != 0).collect();
        let truth = (stratum_a.iter().filter(|&&b| b).count()
            + stratum_b.iter().filter(|&&b| b).count()) as f64;
        let mut rng = StdRng::seed_from_u64(404);
        let trials = 5000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let ia = sample_without_replacement(&mut rng, 8, 50).unwrap();
            let ib = sample_without_replacement(&mut rng, 6, 30).unwrap();
            let strata = [
                StratumSample {
                    population: 50,
                    sampled: 8,
                    positives: ia.iter().filter(|&&i| stratum_a[i]).count(),
                },
                StratumSample {
                    population: 30,
                    sampled: 6,
                    positives: ib.iter().filter(|&&i| stratum_b[i]).count(),
                },
            ];
            sum += stratified_count_estimate(&strata, 0.95).unwrap().count;
        }
        let mean = sum / trials as f64;
        assert!((mean - truth).abs() < 0.4, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn smoothed_allocation_sd_never_zero_and_shrinks() {
        let pure_small = StratumSample {
            population: 100,
            sampled: 5,
            positives: 5,
        };
        let pure_large = StratumSample {
            population: 100,
            sampled: 50,
            positives: 50,
        };
        let mixed = StratumSample {
            population: 100,
            sampled: 10,
            positives: 5,
        };
        assert!(pure_small.s_for_allocation() > 0.0);
        assert!(pure_large.s_for_allocation() > 0.0);
        // More evidence of purity → smaller allocation weight.
        assert!(pure_large.s_for_allocation() < pure_small.s_for_allocation());
        // Mixed strata still dominate.
        assert!(mixed.s_for_allocation() > pure_small.s_for_allocation());
        // Raw estimator is unchanged: zero for pure strata.
        assert_eq!(pure_small.s2(), 0.0);
    }

    #[test]
    fn estimator_validation() {
        assert!(stratified_count_estimate(&[], 0.95).is_err());
        let bad = [StratumSample {
            population: 3,
            sampled: 5,
            positives: 1,
        }];
        assert!(stratified_count_estimate(&bad, 0.95).is_err());
        let none_sampled = [StratumSample {
            population: 10,
            sampled: 0,
            positives: 0,
        }];
        assert!(stratified_count_estimate(&none_sampled, 0.95).is_err());
    }
}
