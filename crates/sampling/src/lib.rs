//! Sampling substrate for the `learning-to-sample` workspace.
//!
//! Implements the designs used by the paper's estimators (§3.1, §4.1):
//!
//! * [`srs`] — simple random sampling without replacement (Floyd's
//!   algorithm) and the SRS proportion estimator with Wald/Wilson
//!   intervals and finite-population correction;
//! * [`weighted`] — sequential weighted sampling **without replacement**
//!   (probability-proportional-to-size draw-by-draw over a Fenwick tree,
//!   plus the equivalent Efraimidis–Spirakis exponential-keys method);
//! * [`desraj`] — the Des Raj ordered estimator used by LWS (Eq. 3),
//!   with running mean/variance as draws arrive;
//! * [`ht`] — Horvitz–Thompson estimation under Poisson sampling
//!   (the "popular alternative" the paper mentions);
//! * [`stratified`] — stratified designs: proportional and Neyman
//!   allocation with the paper's footnote-1 rebalancing constraints, and
//!   the stratified proportion estimator of Eq. (1) with t-intervals.

#![warn(missing_docs)]

pub mod desraj;
pub mod error;
pub mod estimate;
pub mod fenwick;
pub mod ht;
pub mod srs;
pub mod stratified;
pub mod weighted;

pub use desraj::DesRaj;
pub use error::{SamplingError, SamplingResult};
pub use estimate::CountEstimate;
pub use fenwick::Fenwick;
pub use ht::{horvitz_thompson_count, poisson_sample};
pub use srs::{sample_without_replacement, srs_count_estimate};
pub use stratified::{
    allocate, draw_stratified, group_by_stratum, neyman_allocation, proportional_allocation,
    stratified_count_estimate, StratumSample,
};
pub use weighted::{
    systematic_pps_sample, weighted_sample_es, weighted_sample_fenwick, WeightedDraw,
};
