//! Error types for the sampling substrate.

use std::fmt;

/// Errors produced by sampling routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// Requested sample larger than the population (without replacement).
    SampleTooLarge {
        /// Requested sample size.
        requested: usize,
        /// Population size.
        population: usize,
    },
    /// Empty population or empty input where data is required.
    EmptyPopulation,
    /// A weight was negative, NaN, or all weights were zero.
    InvalidWeights {
        /// Description of the violation.
        message: String,
    },
    /// An allocation is infeasible under the given constraints.
    InfeasibleAllocation {
        /// Total requested.
        total: usize,
        /// Lower bound implied by constraints.
        lower: usize,
        /// Upper bound implied by stratum sizes.
        upper: usize,
    },
    /// Mismatched argument lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// An inclusion probability was outside `(0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// An underlying statistics routine failed.
    Stats(lts_stats::StatsError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::SampleTooLarge {
                requested,
                population,
            } => write!(
                f,
                "cannot draw {requested} without replacement from population of {population}"
            ),
            SamplingError::EmptyPopulation => write!(f, "population is empty"),
            SamplingError::InvalidWeights { message } => write!(f, "invalid weights: {message}"),
            SamplingError::InfeasibleAllocation {
                total,
                lower,
                upper,
            } => write!(
                f,
                "allocation of {total} infeasible: must lie in [{lower}, {upper}]"
            ),
            SamplingError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            SamplingError::InvalidProbability { value } => {
                write!(f, "inclusion probability must lie in (0, 1], got {value}")
            }
            SamplingError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lts_stats::StatsError> for SamplingError {
    fn from(e: lts_stats::StatsError) -> Self {
        SamplingError::Stats(e)
    }
}

/// Convenience result alias.
pub type SamplingResult<T> = Result<T, SamplingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SamplingError::SampleTooLarge {
            requested: 10,
            population: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = SamplingError::InfeasibleAllocation {
            total: 3,
            lower: 5,
            upper: 20,
        };
        assert!(e.to_string().contains('5'));
        let e: SamplingError = lts_stats::StatsError::EmptyInput.into();
        assert!(e.to_string().contains("statistics"));
    }
}
