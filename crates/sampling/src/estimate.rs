//! The common estimate type returned by all samplers.

use lts_stats::ConfidenceInterval;
use serde::{Deserialize, Serialize};

/// A count estimate with its uncertainty.
///
/// All estimators in this workspace ultimately produce one of these:
/// a point estimate of `C(O, q)`, a standard error in count units, and a
/// confidence interval (whose construction — Wald, Wilson, or t — depends
/// on the estimator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountEstimate {
    /// Point estimate of the count.
    pub count: f64,
    /// Standard error of the count estimate.
    pub std_error: f64,
    /// Two-sided confidence interval for the count.
    pub interval: ConfidenceInterval,
    /// Degrees of freedom behind `std_error` when `interval` is a
    /// t-interval (stratified, Des Raj); `None` for normal/Wald/Wilson
    /// constructions and exact counts. Carried so independent
    /// estimates can be composed with honest Welch–Satterthwaite df
    /// (the sharded merge) instead of guessing.
    pub df: Option<f64>,
}

impl CountEstimate {
    /// A degenerate (exact) estimate with zero uncertainty.
    pub fn exact(count: f64, level: f64) -> Self {
        Self {
            count,
            std_error: 0.0,
            interval: ConfidenceInterval::new(count, count, level),
            df: None,
        }
    }

    /// Shift the estimate by a known constant (e.g. adding the exactly
    /// counted positives from a labeled subset).
    #[must_use]
    pub fn shifted(&self, offset: f64) -> Self {
        Self {
            count: self.count + offset,
            std_error: self.std_error,
            interval: ConfidenceInterval::new(
                self.interval.lo + offset,
                self.interval.hi + offset,
                self.interval.level,
            ),
            df: self.df,
        }
    }

    /// Relative error against a known ground truth.
    pub fn relative_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            self.count.abs()
        } else {
            (self.count - truth).abs() / truth.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_has_zero_width() {
        let e = CountEstimate::exact(42.0, 0.95);
        assert_eq!(e.count, 42.0);
        assert_eq!(e.interval.width(), 0.0);
        assert!(e.interval.contains(42.0));
    }

    #[test]
    fn shifting_moves_everything() {
        let e = CountEstimate {
            count: 10.0,
            std_error: 2.0,
            interval: ConfidenceInterval::new(6.0, 14.0, 0.95),
            df: Some(7.0),
        };
        let s = e.shifted(5.0);
        assert_eq!(s.count, 15.0);
        assert_eq!(s.interval.lo, 11.0);
        assert_eq!(s.interval.hi, 19.0);
        assert_eq!(s.std_error, 2.0);
        assert_eq!(s.df, Some(7.0));
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        let e = CountEstimate::exact(3.0, 0.95);
        assert_eq!(e.relative_error(0.0), 3.0);
        assert!((e.relative_error(4.0) - 0.25).abs() < 1e-12);
    }
}
