//! Simple random sampling without replacement, and the SRS estimator.
//!
//! `pˆN` with the Wald interval
//! `pˆ ± z_{α/2} √(pˆ(1−pˆ)/n) · √((N−n)/(N−1))` — paper §3.1 — or the
//! Wilson interval for extreme selectivities.

use crate::error::{SamplingError, SamplingResult};
use crate::estimate::CountEstimate;
use lts_stats::{wald_proportion, wilson_proportion, IntervalKind};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use std::collections::HashSet;

/// Draw `n` distinct indices uniformly from `0..population`, in random
/// order (Floyd's algorithm followed by a shuffle).
///
/// # Errors
///
/// Returns an error if `n > population`.
pub fn sample_without_replacement<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    population: usize,
) -> SamplingResult<Vec<usize>> {
    if n > population {
        return Err(SamplingError::SampleTooLarge {
            requested: n,
            population,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    // Floyd's algorithm: uniform n-subsets in O(n) expected time.
    let mut chosen: HashSet<usize> = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    for j in (population - n)..population {
        let t = rng.random_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out.shuffle(rng);
    Ok(out)
}

/// The SRS count estimate from labeled draws: `N · pˆ` with a
/// Wald or Wilson interval (with finite-population correction).
///
/// `labels[i]` is `q(o_i)` for the i-th sampled object.
///
/// # Errors
///
/// Returns an error for an empty sample or invalid level.
pub fn srs_count_estimate(
    labels: &[bool],
    population: usize,
    level: f64,
    kind: IntervalKind,
) -> SamplingResult<CountEstimate> {
    if labels.is_empty() {
        return Err(SamplingError::EmptyPopulation);
    }
    let n = labels.len();
    let positives = labels.iter().filter(|&&b| b).count();
    let p_hat = positives as f64 / n as f64;
    let interval = match kind {
        IntervalKind::Wald => wald_proportion(p_hat, n, Some(population), level)?,
        IntervalKind::Wilson => wilson_proportion(positives, n, Some(population), level)?,
    };
    let fpc = lts_stats::interval::fpc(n, Some(population));
    let se_p = (p_hat * (1.0 - p_hat) / n as f64).sqrt() * fpc;
    let nf = population as f64;
    Ok(CountEstimate {
        count: p_hat * nf,
        std_error: se_p * nf,
        interval: interval.scaled(nf),
        df: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn draws_distinct_indices_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, pop) in &[(0usize, 10usize), (1, 1), (5, 10), (10, 10), (100, 1000)] {
            let s = sample_without_replacement(&mut rng, n, pop).unwrap();
            assert_eq!(s.len(), n);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), n, "duplicates for n={n}, pop={pop}");
            assert!(s.iter().all(|&i| i < pop));
        }
    }

    #[test]
    fn rejects_oversized_sample() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(sample_without_replacement(&mut rng, 11, 10).is_err());
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each element of a population of 10 should appear in a 5-sample
        // with probability 1/2.
        let mut rng = StdRng::seed_from_u64(123);
        let trials = 20_000;
        let mut counts = [0usize; 10];
        for _ in 0..trials {
            for i in sample_without_replacement(&mut rng, 5, 10).unwrap() {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.5).abs() < 0.02,
                "element {i}: frequency {freq} too far from 0.5"
            );
        }
    }

    #[test]
    fn draw_order_is_random() {
        // First drawn element should be uniform over the population, not
        // biased toward low indices.
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 10_000;
        let mut first_low = 0usize;
        for _ in 0..trials {
            let s = sample_without_replacement(&mut rng, 4, 8).unwrap();
            if s[0] < 4 {
                first_low += 1;
            }
        }
        let freq = first_low as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.03, "first-draw bias: {freq}");
    }

    #[test]
    fn estimate_matches_hand_computation() {
        // 3 of 4 positive, population 100.
        let labels = [true, true, true, false];
        let e = srs_count_estimate(&labels, 100, 0.95, IntervalKind::Wald).unwrap();
        assert!((e.count - 75.0).abs() < 1e-9);
        assert!(e.interval.contains(75.0));
        assert!(e.std_error > 0.0);
    }

    #[test]
    fn census_has_zero_error() {
        let labels = vec![true; 10];
        let e = srs_count_estimate(&labels, 10, 0.95, IntervalKind::Wald).unwrap();
        assert!((e.count - 10.0).abs() < 1e-9);
        assert!(e.std_error.abs() < 1e-12);
    }

    #[test]
    fn wilson_differs_from_wald_at_extremes() {
        let labels = vec![false; 30];
        let wald = srs_count_estimate(&labels, 1000, 0.95, IntervalKind::Wald).unwrap();
        let wilson = srs_count_estimate(&labels, 1000, 0.95, IntervalKind::Wilson).unwrap();
        assert_eq!(wald.interval.width(), 0.0);
        assert!(wilson.interval.width() > 0.0);
    }

    #[test]
    fn empty_sample_errors() {
        assert!(srs_count_estimate(&[], 10, 0.95, IntervalKind::Wald).is_err());
    }

    #[test]
    fn estimator_is_unbiased_monte_carlo() {
        // Population of 40 with 12 positives; mean of many SRS estimates
        // should approach 12.
        let truth: Vec<bool> = (0..40).map(|i| i % 10 < 3).collect();
        let true_count = truth.iter().filter(|&&b| b).count() as f64;
        let mut rng = StdRng::seed_from_u64(2024);
        let trials = 4000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let idx = sample_without_replacement(&mut rng, 10, 40).unwrap();
            let labels: Vec<bool> = idx.iter().map(|&i| truth[i]).collect();
            sum += srs_count_estimate(&labels, 40, 0.95, IntervalKind::Wald)
                .unwrap()
                .count;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - true_count).abs() < 0.3,
            "mean {mean} vs truth {true_count}"
        );
    }
}
