//! A Fenwick (binary indexed) tree over non-negative `f64` weights with
//! prefix-sum search.
//!
//! Backbone of the draw-by-draw weighted sampler: drawing an object and
//! removing it from the pool are both cheap (`O(log² N)` per update,
//! `O(log N)` per search).
//!
//! # Exact updates (no float drift)
//!
//! A classic Fenwick update propagates a *delta* up the tree
//! (`tree[idx] += delta`). Over floats that accumulates residue:
//! removing a leaf by adding `-w` leaves each touched node at
//! `(x + w) - w`, which is generally `≠ x`, so after many removals
//! `total()` drifts away from the true remaining weight and a
//! prefix-sum search can land on an already-zeroed leaf. This
//! implementation instead **recomputes** every node on the update path
//! from its children, in the same summation order the initial build
//! uses. The invariant (asserted by property tests): after *any*
//! sequence of `add`/`zero`/`set`, the tree is **bit-identical** to
//! `Fenwick::new` called on the current weights — node values depend
//! only on the current weights, never on the update history. Removed
//! leaves therefore contribute exactly `0.0`, not a rounding residue.

/// Fenwick tree over `f64` weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Fenwick {
    tree: Vec<f64>,
    /// Current weight per leaf (kept for exact recomputation).
    weights: Vec<f64>,
}

impl Fenwick {
    /// Build a tree from initial weights.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        // Canonical bottom-up build: seed each node with its own leaf,
        // then fold children into parents in ascending index order.
        // `recompute` reproduces exactly this summation order, which is
        // what makes incremental updates bit-identical to a rebuild.
        let mut tree = vec![0.0; n + 1];
        tree[1..].copy_from_slice(weights);
        for idx in 1..=n {
            let parent = idx + (idx & idx.wrapping_neg());
            if parent <= n {
                tree[parent] += tree[idx];
            }
        }
        Self {
            tree,
            weights: weights.to_vec(),
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of leaf `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.weights.len())
    }

    /// Sum of weights for leaves `0..i` (exclusive).
    pub fn prefix_sum(&self, i: usize) -> f64 {
        let mut idx = i.min(self.weights.len());
        let mut sum = 0.0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Recompute node `idx` from its leaf and child nodes, in the
    /// canonical build order (leaf first, then children by ascending
    /// index). Keeps every node a pure function of the current weights.
    fn recompute(&mut self, idx: usize) {
        let lowbit = idx & idx.wrapping_neg();
        let mut sum = self.weights[idx - 1];
        let mut sub = lowbit >> 1;
        while sub > 0 {
            sum += self.tree[idx - sub];
            sub >>= 1;
        }
        self.tree[idx] = sum;
    }

    /// Set leaf `i` to exactly `w`, recomputing the affected path (no
    /// delta propagation, no float residue).
    pub fn set(&mut self, i: usize, w: f64) {
        self.weights[i] = w;
        let n = self.weights.len();
        let mut idx = i + 1;
        while idx <= n {
            self.recompute(idx);
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Add `delta` to leaf `i` (may be negative). Exact: equivalent to
    /// [`Fenwick::set`] with `weights[i] + delta`.
    pub fn add(&mut self, i: usize, delta: f64) {
        self.set(i, self.weights[i] + delta);
    }

    /// Set leaf `i` to zero (removing it from the pool). The leaf's
    /// entire contribution vanishes exactly — repeated zero/re-add
    /// cycles leave no residue anywhere in the tree.
    pub fn zero(&mut self, i: usize) {
        if self.weights[i] != 0.0 {
            self.set(i, 0.0);
        }
    }

    /// The largest-index leaf with positive weight, if any. The
    /// fallback target when a caller's `target` hit the total exactly
    /// through float rounding.
    pub fn last_positive(&self) -> Option<usize> {
        (0..self.weights.len())
            .rev()
            .find(|&j| self.weights[j] > 0.0)
    }

    /// Find the smallest index `i` such that `prefix_sum(i + 1) > target`
    /// where `0 <= target < total()`. Never returns a zero-weight leaf.
    ///
    /// Returns `None` if the total weight is zero or `target` is out of
    /// range.
    pub fn search(&self, target: f64) -> Option<usize> {
        let n = self.weights.len();
        if n == 0 || target < 0.0 {
            return None;
        }
        let total = self.total();
        if total <= 0.0 || target >= total {
            return None;
        }
        // Standard Fenwick descent.
        let mut idx = 0usize;
        let mut rem = target;
        let mut bit = n.next_power_of_two();
        while bit > 0 {
            let next = idx + bit;
            if next <= n && self.tree[next] <= rem {
                rem -= self.tree[next];
                idx = next;
            }
            bit >>= 1;
        }
        // idx is now the count of leaves whose cumulative weight is <= target.
        let mut i = idx;
        // Guard against floating-point edge cases on zero-weight leaves.
        while i < n && self.weights[i] <= 0.0 {
            i += 1;
        }
        if i < n {
            Some(i)
        } else {
            // All remaining weight was rounding error; fall back to the
            // last positive-weight leaf.
            self.last_positive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let w = [1.0, 2.0, 0.0, 4.0, 0.5];
        let f = Fenwick::new(&w);
        let mut acc = 0.0;
        for i in 0..=w.len() {
            assert!((f.prefix_sum(i) - acc).abs() < 1e-12, "i={i}");
            if i < w.len() {
                acc += w[i];
            }
        }
        assert!((f.total() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn search_finds_correct_leaf() {
        let w = [1.0, 2.0, 0.0, 4.0];
        let f = Fenwick::new(&w);
        assert_eq!(f.search(0.0), Some(0));
        assert_eq!(f.search(0.999), Some(0));
        assert_eq!(f.search(1.0), Some(1));
        assert_eq!(f.search(2.5), Some(1));
        assert_eq!(f.search(3.0), Some(3)); // leaf 2 has zero weight
        assert_eq!(f.search(6.999), Some(3));
        assert_eq!(f.search(7.0), None);
        assert_eq!(f.search(-1.0), None);
    }

    #[test]
    fn zero_removes_from_pool() {
        let w = [1.0, 2.0, 3.0];
        let mut f = Fenwick::new(&w);
        f.zero(1);
        assert!((f.total() - 4.0).abs() < 1e-12);
        assert_eq!(f.search(1.0), Some(2));
        assert_eq!(f.weight(1), 0.0);
        f.zero(0);
        f.zero(2);
        assert_eq!(f.search(0.0), None);
        assert_eq!(f.last_positive(), None);
    }

    #[test]
    fn add_updates() {
        let mut f = Fenwick::new(&[0.0, 0.0]);
        f.add(1, 5.0);
        assert_eq!(f.search(0.0), Some(1));
        f.add(0, 2.0);
        assert_eq!(f.search(1.9), Some(0));
        assert_eq!(f.search(2.1), Some(1));
        assert_eq!(f.last_positive(), Some(1));
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(&[]);
        assert!(f.is_empty());
        assert_eq!(f.search(0.0), None);
        assert_eq!(f.total(), 0.0);
        assert_eq!(f.last_positive(), None);
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 3, 5, 7, 13, 100] {
            let w: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let f = Fenwick::new(&w);
            let total: f64 = w.iter().sum();
            assert!((f.total() - total).abs() < 1e-9);
            // Every leaf is findable at its cumulative offset.
            let mut acc = 0.0;
            for (i, &wi) in w.iter().enumerate() {
                assert_eq!(f.search(acc), Some(i), "n={n}, i={i}");
                acc += wi;
            }
        }
    }

    /// Deterministic splitmix-style generator for test sequences.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn updates_are_bit_identical_to_rebuild() {
        // The drift regression: with delta-propagated removal,
        // `(x + w) - w` residue accumulates in internal nodes, so the
        // incrementally-updated tree diverges from a fresh build on the
        // same weights. Exact recomputation keeps them bit-identical —
        // even with adversarially mixed magnitudes.
        for n in [1usize, 2, 5, 13, 64, 100] {
            let mut state = 0xABCD ^ n as u64;
            let mut weights: Vec<f64> = (0..n)
                .map(|_| match mix(&mut state) % 4 {
                    0 => 0.1,
                    1 => 1e15,
                    2 => 1e-7,
                    _ => (mix(&mut state) % 1000) as f64 / 3.0,
                })
                .collect();
            let mut f = Fenwick::new(&weights);
            for _ in 0..400 {
                let i = (mix(&mut state) as usize) % n;
                match mix(&mut state) % 3 {
                    0 => {
                        f.zero(i);
                        weights[i] = 0.0;
                    }
                    1 => {
                        let w = (mix(&mut state) % 100) as f64 * 0.1;
                        f.set(i, w);
                        weights[i] = w;
                    }
                    _ => {
                        let d = (mix(&mut state) % 100) as f64 * 0.01 - 0.3;
                        f.add(i, d);
                        weights[i] += d;
                    }
                }
                let fresh = Fenwick::new(&weights);
                assert_eq!(
                    f.total().to_bits(),
                    fresh.total().to_bits(),
                    "n={n}: total drifted from rebuild"
                );
                for k in 0..=n {
                    assert_eq!(
                        f.prefix_sum(k).to_bits(),
                        fresh.prefix_sum(k).to_bits(),
                        "n={n}, k={k}: prefix sum drifted from rebuild"
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_zero_readd_leaves_no_residue() {
        // The sampler's exact pattern: draw (zero a leaf), sometimes
        // re-add. With huge co-resident weights the old delta removal
        // drifted; now the total must equal the rebuild total exactly.
        let mut f = Fenwick::new(&[1e16, 0.1, 0.1, 0.1]);
        for _ in 0..10_000 {
            f.zero(1);
            f.add(1, 0.1);
        }
        let fresh = Fenwick::new(&[1e16, 0.1, 0.1, 0.1]);
        assert_eq!(f.total().to_bits(), fresh.total().to_bits());
        f.zero(0);
        // With the elephant gone, the small weights are exactly what a
        // fresh small-weight tree holds — zero contribution left over.
        let small = Fenwick::new(&[0.0, 0.1, 0.1, 0.1]);
        assert_eq!(f.total().to_bits(), small.total().to_bits());
    }

    #[test]
    fn random_ops_total_exact_and_search_skips_zeroed() {
        // Dyadic weights (multiples of 1/64, bounded) make every
        // partial sum exactly representable, so `total()` must equal
        // the naive Σ weights *exactly*, in any order — and search must
        // agree with a naive cumulative scan, never landing on a
        // zeroed leaf.
        for n in [1usize, 3, 17, 50] {
            let mut state = 0x5EED ^ (n as u64) << 8;
            let mut weights: Vec<f64> = (0..n)
                .map(|_| (mix(&mut state) % 512) as f64 / 64.0)
                .collect();
            let mut f = Fenwick::new(&weights);
            for _ in 0..300 {
                let i = (mix(&mut state) as usize) % n;
                if mix(&mut state).is_multiple_of(2) {
                    f.zero(i);
                    weights[i] = 0.0;
                } else {
                    let w = (mix(&mut state) % 512) as f64 / 64.0;
                    f.set(i, w);
                    weights[i] = w;
                }
                let naive: f64 = weights.iter().sum();
                assert_eq!(f.total().to_bits(), naive.to_bits(), "n={n}: inexact total");
                if naive > 0.0 {
                    // A handful of random targets in [0, total).
                    for _ in 0..8 {
                        let t = (mix(&mut state) % 1024) as f64 / 1024.0 * naive;
                        if t >= naive {
                            continue;
                        }
                        let got = f.search(t).expect("target < total must hit");
                        assert!(f.weight(got) > 0.0, "landed on zeroed leaf {got}");
                        // Naive reference: first leaf whose cumsum > t.
                        let mut acc = 0.0;
                        let want = weights
                            .iter()
                            .position(|&w| {
                                acc += w;
                                acc > t
                            })
                            .expect("t < Σ weights");
                        assert_eq!(got, want, "n={n}, t={t}");
                    }
                } else {
                    assert_eq!(f.search(0.0), None);
                }
            }
        }
    }
}
