//! A Fenwick (binary indexed) tree over non-negative `f64` weights with
//! prefix-sum search.
//!
//! Backbone of the draw-by-draw weighted sampler: drawing an object and
//! removing it from the pool are both `O(log N)`.

/// Fenwick tree over `f64` weights.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<f64>,
    /// Current weight per leaf (kept for exact removal).
    weights: Vec<f64>,
}

impl Fenwick {
    /// Build a tree from initial weights.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let mut tree = vec![0.0; n + 1];
        for (i, &w) in weights.iter().enumerate() {
            let mut idx = i + 1;
            while idx <= n {
                tree[idx] += w;
                idx += idx & idx.wrapping_neg();
            }
        }
        Self {
            tree,
            weights: weights.to_vec(),
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of leaf `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.weights.len())
    }

    /// Sum of weights for leaves `0..i` (exclusive).
    pub fn prefix_sum(&self, i: usize) -> f64 {
        let mut idx = i.min(self.weights.len());
        let mut sum = 0.0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Add `delta` to leaf `i` (may be negative).
    pub fn add(&mut self, i: usize, delta: f64) {
        self.weights[i] += delta;
        let n = self.weights.len();
        let mut idx = i + 1;
        while idx <= n {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Set leaf `i` to zero (removing it from the pool).
    pub fn zero(&mut self, i: usize) {
        let w = self.weights[i];
        if w != 0.0 {
            self.add(i, -w);
            self.weights[i] = 0.0;
        }
    }

    /// Find the smallest index `i` such that `prefix_sum(i + 1) > target`
    /// where `0 <= target < total()`. Skips zero-weight leaves.
    ///
    /// Returns `None` if the total weight is zero or `target` is out of
    /// range.
    pub fn search(&self, target: f64) -> Option<usize> {
        let n = self.weights.len();
        if n == 0 || target < 0.0 {
            return None;
        }
        let total = self.total();
        if total <= 0.0 || target >= total {
            return None;
        }
        // Standard Fenwick descent.
        let mut idx = 0usize;
        let mut rem = target;
        let mut bit = n.next_power_of_two();
        while bit > 0 {
            let next = idx + bit;
            if next <= n && self.tree[next] <= rem {
                rem -= self.tree[next];
                idx = next;
            }
            bit >>= 1;
        }
        // idx is now the count of leaves whose cumulative weight is <= target.
        let mut i = idx;
        // Guard against floating-point edge cases on zero-weight leaves.
        while i < n && self.weights[i] <= 0.0 {
            i += 1;
        }
        if i < n {
            Some(i)
        } else {
            // All remaining weight was rounding error; fall back to the
            // last positive-weight leaf.
            (0..n).rev().find(|&j| self.weights[j] > 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let w = [1.0, 2.0, 0.0, 4.0, 0.5];
        let f = Fenwick::new(&w);
        let mut acc = 0.0;
        for i in 0..=w.len() {
            assert!((f.prefix_sum(i) - acc).abs() < 1e-12, "i={i}");
            if i < w.len() {
                acc += w[i];
            }
        }
        assert!((f.total() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn search_finds_correct_leaf() {
        let w = [1.0, 2.0, 0.0, 4.0];
        let f = Fenwick::new(&w);
        assert_eq!(f.search(0.0), Some(0));
        assert_eq!(f.search(0.999), Some(0));
        assert_eq!(f.search(1.0), Some(1));
        assert_eq!(f.search(2.5), Some(1));
        assert_eq!(f.search(3.0), Some(3)); // leaf 2 has zero weight
        assert_eq!(f.search(6.999), Some(3));
        assert_eq!(f.search(7.0), None);
        assert_eq!(f.search(-1.0), None);
    }

    #[test]
    fn zero_removes_from_pool() {
        let w = [1.0, 2.0, 3.0];
        let mut f = Fenwick::new(&w);
        f.zero(1);
        assert!((f.total() - 4.0).abs() < 1e-12);
        assert_eq!(f.search(1.0), Some(2));
        assert_eq!(f.weight(1), 0.0);
        f.zero(0);
        f.zero(2);
        assert_eq!(f.search(0.0), None);
    }

    #[test]
    fn add_updates() {
        let mut f = Fenwick::new(&[0.0, 0.0]);
        f.add(1, 5.0);
        assert_eq!(f.search(0.0), Some(1));
        f.add(0, 2.0);
        assert_eq!(f.search(1.9), Some(0));
        assert_eq!(f.search(2.1), Some(1));
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(&[]);
        assert!(f.is_empty());
        assert_eq!(f.search(0.0), None);
        assert_eq!(f.total(), 0.0);
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 3, 5, 7, 13, 100] {
            let w: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let f = Fenwick::new(&w);
            let total: f64 = w.iter().sum();
            assert!((f.total() - total).abs() < 1e-9);
            // Every leaf is findable at its cumulative offset.
            let mut acc = 0.0;
            for (i, &wi) in w.iter().enumerate() {
                assert_eq!(f.search(acc), Some(i), "n={n}, i={i}");
                acc += wi;
            }
        }
    }
}
