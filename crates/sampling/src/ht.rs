//! Horvitz–Thompson estimation under Poisson sampling.
//!
//! The paper (§4.1) notes the Horvitz–Thompson estimator as the popular
//! choice for unequal-probability designs, before opting for Des Raj. We
//! provide HT under **Poisson sampling** (each object included
//! independently with its own probability), for which the first-order
//! inclusion probabilities are exact and the classical variance estimator
//! `Σ (1−π_i)/π_i² · q_i` applies.

use crate::error::{SamplingError, SamplingResult};
use crate::estimate::CountEstimate;
use lts_stats::normal_interval;
use rand::{Rng, RngExt};

/// Poisson sample: include index `i` independently with probability
/// `probs[i]`.
///
/// # Errors
///
/// Returns an error if any probability is outside `[0, 1]` or not finite.
pub fn poisson_sample<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> SamplingResult<Vec<usize>> {
    for &p in probs {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(SamplingError::InvalidProbability { value: p });
        }
    }
    Ok(probs
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0 && rng.random::<f64>() < p)
        .map(|(i, _)| i)
        .collect())
}

/// Horvitz–Thompson count estimate from a Poisson sample.
///
/// `sampled` holds `(inclusion_probability, label)` pairs for each
/// sampled object. The estimate is `Σ q_i/π_i`, its variance estimator
/// `Σ (1−π_i)/π_i² q_i`, and the interval is normal-approximation.
///
/// # Errors
///
/// Returns an error for invalid probabilities or level.
pub fn horvitz_thompson_count(
    sampled: &[(f64, bool)],
    level: f64,
) -> SamplingResult<CountEstimate> {
    let mut total = 0.0;
    let mut var = 0.0;
    for &(pi, label) in sampled {
        if !(pi > 0.0 && pi <= 1.0) {
            return Err(SamplingError::InvalidProbability { value: pi });
        }
        if label {
            total += 1.0 / pi;
            var += (1.0 - pi) / (pi * pi);
        }
    }
    let se = var.sqrt();
    Ok(CountEstimate {
        count: total,
        std_error: se,
        interval: normal_interval(total, se, level)?,
        df: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_respects_probabilities() {
        let probs = [0.0, 0.25, 0.5, 1.0];
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 20_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            for i in poisson_sample(&mut rng, &probs).unwrap() {
                counts[i] += 1;
            }
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], trials);
        assert!((counts[1] as f64 / trials as f64 - 0.25).abs() < 0.02);
        assert!((counts[2] as f64 / trials as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ht_is_unbiased_monte_carlo() {
        let labels = [true, true, false, true, false, false, true, false];
        let probs = [0.9, 0.2, 0.5, 0.4, 0.3, 0.8, 0.6, 0.1];
        let truth = labels.iter().filter(|&&b| b).count() as f64;
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 40_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let s = poisson_sample(&mut rng, &probs).unwrap();
            let pairs: Vec<(f64, bool)> = s.iter().map(|&i| (probs[i], labels[i])).collect();
            sum += horvitz_thompson_count(&pairs, 0.95).unwrap().count;
        }
        let mean = sum / trials as f64;
        assert!((mean - truth).abs() < 0.05, "HT mean {mean} vs {truth}");
    }

    #[test]
    fn certain_inclusion_gives_zero_variance() {
        let pairs = [(1.0, true), (1.0, false), (1.0, true)];
        let e = horvitz_thompson_count(&pairs, 0.95).unwrap();
        assert!((e.count - 2.0).abs() < 1e-12);
        assert!(e.std_error.abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(poisson_sample(&mut rng, &[1.5]).is_err());
        assert!(poisson_sample(&mut rng, &[-0.1]).is_err());
        assert!(horvitz_thompson_count(&[(0.0, true)], 0.95).is_err());
        assert!(horvitz_thompson_count(&[(1.1, true)], 0.95).is_err());
        // Empty sample is a valid (zero) estimate under Poisson sampling.
        let e = horvitz_thompson_count(&[], 0.95).unwrap();
        assert_eq!(e.count, 0.0);
    }
}
