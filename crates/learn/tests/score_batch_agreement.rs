//! Property tests: every classifier's vectorized `score_batch` is
//! **bit-identical** to mapping per-row `score` — over random matrices,
//! NaN/extreme query features, arbitrary row splits (the per-row-purity
//! property partition-parallel scoring relies on), and empty input.

use lts_learn::{
    Classifier, ConstantScore, GaussianNb, Gbm, GbmConfig, Knn, Logistic, Matrix, Mlp,
    RandomForest, RandomScores,
};
use proptest::prelude::*;

/// Every classifier family, fitted on the given training data.
fn fitted_models(x: &Matrix, y: &[bool]) -> Vec<Box<dyn Classifier>> {
    let mut models: Vec<Box<dyn Classifier>> = vec![
        Box::new(Knn::new(3).unwrap()),
        Box::new(RandomForest::with_trees(7, 13)),
        Box::new(Mlp::with_seed(5)),
        Box::new(Logistic::default()),
        Box::new(GaussianNb::default()),
        Box::new(Gbm::new(GbmConfig {
            n_rounds: 6,
            ..GbmConfig::default()
        })),
        Box::new(RandomScores::new(21)),
        Box::new(ConstantScore::new(0.4)),
    ];
    for m in &mut models {
        m.fit(x, y).unwrap();
    }
    models
}

/// Bitwise equality that also equates NaNs of identical payload.
fn assert_bits_eq(batch: &[f64], per_row: &[f64], tag: &str) {
    assert_eq!(batch.len(), per_row.len(), "{tag}: length");
    for (i, (b, r)) in batch.iter().zip(per_row).enumerate() {
        assert_eq!(
            b.to_bits(),
            r.to_bits(),
            "{tag}: row {i} diverged ({b} vs {r})"
        );
    }
}

fn check_agreement(models: &[Box<dyn Classifier>], queries: &Matrix, splits: &[usize]) {
    for m in models {
        let per_row: Vec<f64> = queries
            .iter_rows()
            .map(|row| m.score(row).unwrap())
            .collect();
        let batch = m.score_batch(queries).unwrap();
        assert_bits_eq(&batch, &per_row, m.name());

        // Per-row purity: scoring any contiguous split of the rows and
        // concatenating in order equals the single batch.
        let mut stitched = Vec::with_capacity(queries.rows());
        let mut prev = 0usize;
        for &cut in splits {
            let cut = cut.min(queries.rows()).max(prev);
            let part: Vec<usize> = (prev..cut).collect();
            stitched.extend(m.score_batch(&queries.gather(&part)).unwrap());
            prev = cut;
        }
        let part: Vec<usize> = (prev..queries.rows()).collect();
        stitched.extend(m.score_batch(&queries.gather(&part)).unwrap());
        assert_bits_eq(&stitched, &per_row, &format!("{} (split)", m.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_equals_per_row_on_random_matrices(
        train in proptest::collection::vec(
            proptest::collection::vec(-50.0f64..50.0, 2), 8..40),
        queries in proptest::collection::vec(
            proptest::collection::vec(-80.0f64..80.0, 2), 1..60),
        splits in proptest::collection::vec(0usize..60, 0..4),
    ) {
        let y: Vec<bool> = train.iter().map(|r| r[0] + r[1] > 0.0).collect();
        let x = Matrix::from_rows(&train).unwrap();
        let q = Matrix::from_rows(&queries).unwrap();
        let mut splits = splits;
        splits.sort_unstable();
        check_agreement(&fitted_models(&x, &y), &q, &splits);
    }

    #[test]
    fn batch_equals_per_row_on_single_class_training(
        train in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 2), 4..20),
        positive in any::<bool>(),
    ) {
        let y = vec![positive; train.len()];
        let x = Matrix::from_rows(&train).unwrap();
        let q = Matrix::from_rows(&train).unwrap();
        check_agreement(&fitted_models(&x, &y), &q, &[1, 3]);
    }
}

#[test]
fn batch_equals_per_row_on_nan_and_extreme_features() {
    let train: Vec<Vec<f64>> = (0..30)
        .map(|i| vec![f64::from(i), f64::from(i % 7)])
        .collect();
    let y: Vec<bool> = (0..30).map(|i| i >= 15).collect();
    let x = Matrix::from_rows(&train).unwrap();
    let models = fitted_models(&x, &y);

    // Queries may be non-finite even though training must be finite:
    // scoring must propagate them identically in both paths.
    let queries = Matrix::from_rows(&[
        vec![f64::NAN, 1.0],
        vec![1.0, f64::NAN],
        vec![f64::INFINITY, f64::NEG_INFINITY],
        vec![f64::MAX, f64::MIN],
        vec![f64::MIN_POSITIVE, -0.0],
        vec![1e300, -1e300],
        vec![f64::NAN, f64::NAN],
    ])
    .unwrap();
    check_agreement(&models, &queries, &[2, 5]);
}

#[test]
fn empty_input_yields_empty_output_even_unfitted() {
    let unfitted: Vec<Box<dyn Classifier>> = vec![
        Box::new(Knn::new(3).unwrap()),
        Box::new(RandomForest::with_trees(3, 1)),
        Box::new(Mlp::with_seed(0)),
        Box::new(Logistic::default()),
        Box::new(GaussianNb::default()),
        Box::new(Gbm::default()),
        Box::new(RandomScores::new(0)),
        Box::new(ConstantScore::new(0.5)),
    ];
    let empty = Matrix::empty(2);
    for m in &unfitted {
        assert!(
            m.score_batch(&empty).unwrap().is_empty(),
            "{}: empty input must yield empty output without a fitted check",
            m.name()
        );
        // But a non-empty batch on an unfitted model errors, exactly
        // like the per-row path (ConstantScore never errors).
        let one = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        assert_eq!(
            m.score_batch(&one).is_err(),
            m.score(&[0.0, 0.0]).is_err(),
            "{}: unfitted error parity",
            m.name()
        );
    }
}

#[test]
fn dimension_mismatch_errors_match_per_row() {
    let train: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i), 1.0]).collect();
    let y: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
    let x = Matrix::from_rows(&train).unwrap();
    let models = fitted_models(&x, &y);
    let wrong = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
    for m in &models {
        // ConstantScore and RandomScores accept any width, like their
        // per-row `score`; every real model rejects it in both paths.
        assert_eq!(
            m.score_batch(&wrong).is_err(),
            m.score(&[1.0, 2.0, 3.0]).is_err(),
            "{}: dimension error parity",
            m.name()
        );
    }
}
