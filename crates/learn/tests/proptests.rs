//! Property-based tests for the ML substrate.

use lts_learn::kdtree::KdTree;
use lts_learn::{
    accuracy, confusion, k_fold_indices, Classifier, Knn, Matrix, RandomForest, StandardScaler,
};
use proptest::prelude::*;

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kdtree_matches_linear_scan(
        points in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 1..120),
        k in 1usize..6,
    ) {
        let m = Matrix::from_rows(&points).unwrap();
        let tree = KdTree::build(m.clone());
        let query = points[0].clone();
        let got = tree.knn(&query, k);
        let mut want: Vec<f64> = points.iter().map(|p| dist2(p, &query)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for ((_, d_got), d_want) in got.iter().zip(&want) {
            prop_assert!((d_got - d_want).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_roundtrip_statistics(
        rows in proptest::collection::vec(
            proptest::collection::vec(-50.0f64..50.0, 2), 2..60),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let scaler = StandardScaler::fit(&m).unwrap();
        let t = scaler.transform(&m).unwrap();
        for c in 0..t.cols() {
            let vals: Vec<f64> = t.iter_rows().map(|r| r[c]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            prop_assert!(mean.abs() < 1e-8, "column {c} mean {mean}");
        }
    }

    #[test]
    fn classifier_scores_always_unit_interval(
        labels in proptest::collection::vec(any::<bool>(), 8..40),
        seed in any::<u64>(),
    ) {
        let rows: Vec<Vec<f64>> = (0..labels.len())
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut knn = Knn::new(3).unwrap();
        knn.fit(&x, &labels).unwrap();
        let mut rf = RandomForest::with_trees(8, seed);
        rf.fit(&x, &labels).unwrap();
        for row in x.iter_rows() {
            for model in [&knn as &dyn Classifier, &rf as &dyn Classifier] {
                let s = model.score(row).unwrap();
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn folds_partition(n in 4usize..200, k in 2usize..5, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let folds = k_fold_indices(n, k, seed).unwrap();
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn confusion_identities(
        pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..100),
    ) {
        let pred: Vec<bool> = pairs.iter().map(|&(p, _)| p).collect();
        let act: Vec<bool> = pairs.iter().map(|&(_, a)| a).collect();
        let m = confusion(&pred, &act).unwrap();
        prop_assert_eq!(m.total(), pairs.len());
        let acc = accuracy(&pred, &act).unwrap();
        prop_assert!((acc - m.accuracy()).abs() < 1e-12);
        // tpr·P + (1−fpr)·N = correct predictions count identity.
        if let (Some(tpr), Some(fpr)) = (m.tpr(), m.fpr()) {
            let p = (m.tp + m.fn_) as f64;
            let n = (m.fp + m.tn) as f64;
            let correct = tpr * p + (1.0 - fpr) * n;
            prop_assert!((correct - (m.tp + m.tn) as f64).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// New classifier families: Gaussian NB and gradient-boosted trees.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GNB scores are finite posteriors in [0, 1] for any training set,
    /// and mirroring every feature mirrors the posterior (class
    /// symmetry).
    #[test]
    fn gnb_scores_are_valid_posteriors(
        rows in proptest::collection::vec(
            proptest::collection::vec(-20.0f64..20.0, 2), 4..50),
        flip in any::<u8>(),
    ) {
        use lts_learn::GaussianNb;
        let m = Matrix::from_rows(&rows).unwrap();
        // Labels from a hash of the row index — both classes usually
        // present, sometimes single-class (also a valid input).
        let y: Vec<bool> = (0..rows.len())
            .map(|i| (i as u8).wrapping_mul(97).wrapping_add(flip) % 3 == 0)
            .collect();
        let mut nb = GaussianNb::default();
        nb.fit(&m, &y).unwrap();
        for row in m.iter_rows() {
            let s = nb.score(row).unwrap();
            prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "score {s}");
        }
    }

    /// GNB posterior is antisymmetric under label flip: swapping all
    /// labels maps the score g to 1 - g.
    #[test]
    fn gnb_label_flip_mirrors_posterior(
        rows in proptest::collection::vec(
            proptest::collection::vec(-20.0f64..20.0, 2), 6..40),
    ) {
        use lts_learn::GaussianNb;
        let m = Matrix::from_rows(&rows).unwrap();
        let y: Vec<bool> = (0..rows.len()).map(|i| i % 2 == 0).collect();
        let y_flip: Vec<bool> = y.iter().map(|&b| !b).collect();
        let mut a = GaussianNb::default();
        let mut b = GaussianNb::default();
        a.fit(&m, &y).unwrap();
        b.fit(&m, &y_flip).unwrap();
        for row in m.iter_rows() {
            let (sa, sb) = (a.score(row).unwrap(), b.score(row).unwrap());
            prop_assert!((sa - (1.0 - sb)).abs() < 1e-9, "{sa} vs 1-{sb}");
        }
    }

    /// GBM scores stay in (0, 1) and training reduces (or preserves)
    /// log-loss relative to the prior for any labeled set.
    #[test]
    fn gbm_training_never_hurts_fit(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 2), 8..40),
        salt in any::<u8>(),
    ) {
        use lts_learn::{Gbm, GbmConfig};
        let m = Matrix::from_rows(&rows).unwrap();
        // Learnable labels: sign of the first feature, salted.
        let y: Vec<bool> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] > f64::from(salt % 5) - 2.0 || i % 7 == 0)
            .collect();
        let positives = y.iter().filter(|&&b| b).count();
        let n = y.len();
        let p0 = ((positives as f64 + 0.5) / (n as f64 + 1.0)).clamp(1e-6, 1.0 - 1e-6);
        let log_loss = |scores: &[f64]| -> f64 {
            scores
                .iter()
                .zip(&y)
                .map(|(&s, &b)| {
                    let s = s.clamp(1e-9, 1.0 - 1e-9);
                    if b { -s.ln() } else { -(1.0 - s).ln() }
                })
                .sum::<f64>()
                / n as f64
        };
        let mut gbm = Gbm::new(GbmConfig { n_rounds: 20, ..GbmConfig::default() });
        gbm.fit(&m, &y).unwrap();
        let scores: Vec<f64> = m.iter_rows().map(|r| gbm.score(r).unwrap()).collect();
        for &s in &scores {
            prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s));
        }
        let prior_scores = vec![p0; n];
        prop_assert!(
            log_loss(&scores) <= log_loss(&prior_scores) + 1e-6,
            "boosted log-loss {} worse than prior {}",
            log_loss(&scores),
            log_loss(&prior_scores)
        );
    }
}
