//! The classifier trait: everything the paper needs from a model.

use crate::error::LearnResult;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A binary classifier with a confidence score `g : O → [0, 1]`.
///
/// `score == 1` means confidently positive, `0` confidently negative,
/// `0.5` a toss-up (§3.2). Implementations must return scores in
/// `[0, 1]`; they need not be calibrated probabilities.
pub trait Classifier: Send + Sync {
    /// Fit on feature rows `x` with boolean labels `y`.
    ///
    /// Implementations must handle single-class training sets (the score
    /// then collapses to a constant).
    ///
    /// # Errors
    ///
    /// Returns an error for empty/ragged/non-finite training data.
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()>;

    /// The confidence score `g(o)` for a feature row.
    ///
    /// # Errors
    ///
    /// Returns an error if unfitted or the dimension mismatches.
    fn score(&self, row: &[f64]) -> LearnResult<f64>;

    /// Hard prediction: `score >= 0.5`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::score`].
    fn predict(&self, row: &[f64]) -> LearnResult<bool> {
        Ok(self.score(row)? >= 0.5)
    }

    /// Scores for every row of a matrix.
    ///
    /// The default maps [`Classifier::score`] over the rows. Every
    /// model in this crate overrides it with a vectorized batch kernel
    /// (fused scaling, reused buffers, per-tree accumulation, batched
    /// kd-tree queries) under one contract, enforced by
    /// `tests/score_batch_agreement.rs`:
    ///
    /// * **bit-identical** to the per-row path — same values (to the
    ///   bit, including NaN propagation) and same first error;
    /// * **per-row pure** — row `i`'s score depends only on row `i`, so
    ///   any partition of the rows scored independently and
    ///   concatenated in order equals the single batch (the property
    ///   the partition-parallel scoring pipeline in `lts-core` builds
    ///   on);
    /// * an **empty matrix yields an empty vector** without touching
    ///   the model (the default loop never calls `score`, so overrides
    ///   must not error on empty input either — even unfitted).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::score`].
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for row in x.iter_rows() {
            out.push(self.score(row)?);
        }
        Ok(out)
    }

    /// Short display name ("knn", "rf", "nn", "random", …).
    fn name(&self) -> &'static str;

    /// Export the fitted parameters as a portable string
    /// ([`crate::persist`] format), when the family supports
    /// weight-level persistence and the model is fitted. The default is
    /// `None`; restoring via [`crate::persist::import_params`] yields a
    /// model that scores **bit-identically**. Families without direct
    /// export (tree ensembles, kNN, MLP) persist as refit snapshots
    /// instead — see `lts_core::warm::ModelSnapshot`.
    fn export_params(&self) -> Option<String> {
        None
    }
}

/// Enum of the classifier families evaluated in the paper, used by the
/// reproduction harness to parameterize experiments (Figures 6–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// k-nearest neighbours.
    Knn,
    /// Random forest (100 estimators).
    RandomForest,
    /// Two-layer neural network (5, 2).
    Mlp,
    /// Logistic regression.
    Logistic,
    /// Gaussian Naive Bayes.
    NaiveBayes,
    /// Gradient-boosted trees.
    Gbm,
    /// Adversarial random scores.
    Random,
}

impl ClassifierKind {
    /// All kinds in the order figures present them (the paper's four
    /// first, then this reproduction's extras).
    pub const ALL: [ClassifierKind; 7] = [
        ClassifierKind::Knn,
        ClassifierKind::Mlp,
        ClassifierKind::RandomForest,
        ClassifierKind::Logistic,
        ClassifierKind::NaiveBayes,
        ClassifierKind::Gbm,
        ClassifierKind::Random,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ClassifierKind::Knn => "KNN",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::Mlp => "NN",
            ClassifierKind::Logistic => "LOGIT",
            ClassifierKind::NaiveBayes => "GNB",
            ClassifierKind::Gbm => "GBM",
            ClassifierKind::Random => "Random",
        }
    }
}

/// Validate a (features, labels) pair before fitting.
///
/// # Errors
///
/// Returns an error for empty or mismatched training data or non-finite
/// features.
pub fn validate_training(x: &Matrix, y: &[bool]) -> LearnResult<()> {
    if x.is_empty() {
        return Err(crate::error::LearnError::EmptyTrainingSet);
    }
    if x.rows() != y.len() {
        return Err(crate::error::LearnError::LengthMismatch {
            rows: x.rows(),
            labels: y.len(),
        });
    }
    x.check_finite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dummy::ConstantScore;

    #[test]
    fn default_predict_thresholds_score() {
        let c = ConstantScore::new(0.7);
        assert!(c.predict(&[0.0]).unwrap());
        let c = ConstantScore::new(0.3);
        assert!(!c.predict(&[0.0]).unwrap());
    }

    #[test]
    fn score_batch_maps_rows() {
        let c = ConstantScore::new(0.25);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(c.score_batch(&x).unwrap(), vec![0.25, 0.25]);
    }

    #[test]
    fn validation_catches_problems() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(validate_training(&x, &[true]).is_ok());
        assert!(validate_training(&x, &[true, false]).is_err());
        assert!(validate_training(&Matrix::empty(2), &[]).is_err());
        let bad = Matrix::from_rows(&[vec![f64::INFINITY]]).unwrap();
        assert!(validate_training(&bad, &[true]).is_err());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ClassifierKind::RandomForest.label(), "RF");
        assert_eq!(ClassifierKind::Gbm.label(), "GBM");
        assert_eq!(ClassifierKind::ALL.len(), 7);
    }
}
