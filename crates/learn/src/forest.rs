//! Random forest: bagged CART trees with feature subsampling.
//!
//! The paper's default classifier (`n = 100` estimators). The score
//! `g(o)` is the mean of the trees' leaf probabilities — naturally spread
//! over `[0, 1]`, which is exactly what LSS's score-ordering relies on.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (paper default: 100).
    pub n_trees: usize,
    /// Per-tree configuration (max_features defaults to √d at fit time).
    pub tree: TreeConfig,
    /// Master seed; tree `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig::default(),
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    dims: usize,
}

impl RandomForest {
    /// Create an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            dims: 0,
        }
    }

    /// Convenience: `n` trees with default tree settings and a seed.
    pub fn with_trees(n_trees: usize, seed: u64) -> Self {
        Self::new(ForestConfig {
            n_trees,
            seed,
            ..ForestConfig::default()
        })
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether no trees have been fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(ForestConfig::default())
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        if self.config.n_trees == 0 {
            return Err(LearnError::InvalidParameter {
                name: "n_trees",
                message: "forest needs at least one tree".into(),
            });
        }
        self.dims = x.cols();
        let n = x.rows();
        let max_features = self
            .config
            .tree
            .max_features
            .unwrap_or_else(|| ((x.cols() as f64).sqrt().round() as usize).max(1));
        self.trees = Vec::with_capacity(self.config.n_trees);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut boot_idx = Vec::with_capacity(n);
        let mut boot_y = Vec::with_capacity(n);
        for t in 0..self.config.n_trees {
            // Bootstrap resample.
            boot_idx.clear();
            boot_y.clear();
            for _ in 0..n {
                let i = rng.random_range(0..n);
                boot_idx.push(i);
                boot_y.push(y[i]);
            }
            let boot_x = x.gather(&boot_idx);
            let cfg = TreeConfig {
                max_features: Some(max_features),
                seed: self
                    .config
                    .seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..self.config.tree
            };
            let mut tree = DecisionTree::new(cfg);
            tree.fit(&boot_x, &boot_y)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted);
        }
        if row.len() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: row.len(),
            });
        }
        let mut sum = 0.0;
        for t in &self.trees {
            sum += t.score(row)?;
        }
        Ok(sum / self.trees.len() as f64)
    }

    /// Batch scoring by per-tree accumulation over row blocks: each
    /// tree's nodes stay cache-hot across a block of rows instead of
    /// all trees being walked per row. Every row still accumulates its
    /// trees in index order, so the mean is bit-identical to the
    /// per-row path.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if self.trees.is_empty() {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: x.cols(),
            });
        }
        // Block size balances feature-row locality against re-reading
        // each tree once per block.
        const BLOCK: usize = 512;
        let n = x.rows();
        let mut acc = vec![0.0f64; n];
        let mut start = 0usize;
        while start < n {
            let end = (start + BLOCK).min(n);
            for tree in &self.trees {
                for (i, slot) in (start..end).zip(&mut acc[start..end]) {
                    *slot += tree.score_unchecked(x.row(i));
                }
            }
            start = end;
        }
        let count = self.trees.len() as f64;
        Ok(acc.into_iter().map(|sum| sum / count).collect())
    }

    fn name(&self) -> &'static str {
        "rf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons_ish() -> (Matrix, Vec<bool>) {
        // Two offset noisy arcs (deterministic LCG noise).
        let mut state = 17u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let t = f64::from(i) / 150.0 * std::f64::consts::PI;
            rows.push(vec![t.cos() + 0.1 * next(), t.sin() + 0.1 * next()]);
            y.push(false);
            rows.push(vec![
                1.0 - t.cos() + 0.1 * next(),
                0.5 - t.sin() + 0.1 * next(),
            ]);
            y.push(true);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn forest_fits_nonlinear_boundary() {
        let (x, y) = two_moons_ish();
        let mut f = RandomForest::with_trees(30, 7);
        f.fit(&x, &y).unwrap();
        // Training accuracy should be high.
        let mut correct = 0;
        for (i, row) in x.iter_rows().enumerate() {
            if f.predict(row).unwrap() == y[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.9, "training accuracy {acc}");
        assert_eq!(f.len(), 30);
    }

    #[test]
    fn scores_are_probabilities_with_spread() {
        let (x, y) = two_moons_ish();
        let mut f = RandomForest::with_trees(25, 3);
        f.fit(&x, &y).unwrap();
        let scores = f.score_batch(&x).unwrap();
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Forest scores must not be all 0/1 — the score ordering LSS uses
        // needs intermediate confidence values.
        let intermediate = scores.iter().filter(|&&s| s > 0.0 && s < 1.0).count();
        assert!(intermediate > 0, "no intermediate scores");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons_ish();
        let mut a = RandomForest::with_trees(10, 99);
        let mut b = RandomForest::with_trees(10, 99);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for row in x.iter_rows().take(20) {
            assert_eq!(a.score(row).unwrap(), b.score(row).unwrap());
        }
        let mut c = RandomForest::with_trees(10, 100);
        c.fit(&x, &y).unwrap();
        // A different seed should (almost surely) change some score.
        let diff = x
            .iter_rows()
            .any(|r| (a.score(r).unwrap() - c.score(r).unwrap()).abs() > 1e-12);
        assert!(diff);
    }

    #[test]
    fn single_class_collapses_to_constant() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut f = RandomForest::with_trees(5, 1);
        f.fit(&x, &[false, false, false]).unwrap();
        assert_eq!(f.score(&[1.5]).unwrap(), 0.0);
    }

    #[test]
    fn errors() {
        let f = RandomForest::default();
        assert!(matches!(f.score(&[1.0]), Err(LearnError::NotFitted)));
        assert!(f.is_empty());
        let mut zero = RandomForest::with_trees(0, 0);
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(zero.fit(&x, &[true]).is_err());
        let mut f = RandomForest::with_trees(3, 0);
        f.fit(&x, &[true]).unwrap();
        assert!(f.score(&[1.0, 2.0]).is_err());
        assert_eq!(f.name(), "rf");
    }
}
