//! Degenerate classifiers for robustness experiments.
//!
//! [`RandomScores`] reproduces the paper's "dummy classifier (Random)
//! that generated arbitrary random probabilities" (§5.4.4) — the worst
//! case for LSS, where the score-induced ordering carries no information.
//! Scores are a deterministic hash of the feature vector and seed so that
//! an object keeps the same (meaningless) score across calls, which is
//! what scoring an object pool requires.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;

/// Classifier returning uniform pseudo-random scores independent of the
/// training data.
#[derive(Debug, Clone)]
pub struct RandomScores {
    seed: u64,
    fitted: bool,
}

impl RandomScores {
    /// Create with a seed (scores are a pure function of seed + features).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            fitted: false,
        }
    }

    /// Rebuild a fitted instance from its persisted seed (the
    /// [`crate::persist`] import path; scores are a pure function of
    /// seed + features, so the seed is the whole state).
    pub(crate) fn restore(seed: u64) -> Self {
        Self { seed, fitted: true }
    }
}

impl Classifier for RandomScores {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        self.fitted = true;
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        // SplitMix64-style hash over the feature bits.
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &v in row {
            h ^= v.to_bits();
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        Ok((h >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Batch hashing with the fitted check hoisted out of the loop.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        x.iter_rows().map(|row| self.score(row)).collect()
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn export_params(&self) -> Option<String> {
        self.fitted
            .then(|| format!("{} random seed={}", crate::persist::MAGIC, self.seed))
    }
}

/// Classifier returning one constant score (edge-case testing: all
/// objects tie in the LSS ordering; LWS weights become uniform).
#[derive(Debug, Clone)]
pub struct ConstantScore {
    value: f64,
}

impl ConstantScore {
    /// Create with the constant score `value` (clamped to `[0, 1]`).
    pub fn new(value: f64) -> Self {
        Self {
            value: value.clamp(0.0, 1.0),
        }
    }
}

impl Classifier for ConstantScore {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)
    }

    fn score(&self, _row: &[f64]) -> LearnResult<f64> {
        Ok(self.value)
    }

    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        Ok(vec![self.value; x.rows()])
    }

    fn name(&self) -> &'static str {
        "constant"
    }

    fn export_params(&self) -> Option<String> {
        Some(format!(
            "{} const value={}",
            crate::persist::MAGIC,
            crate::persist::enc_f64(self.value)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scores_are_deterministic_per_object() {
        let mut c = RandomScores::new(42);
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        c.fit(&x, &[true]).unwrap();
        let a = c.score(&[3.0, 4.0]).unwrap();
        let b = c.score(&[3.0, 4.0]).unwrap();
        assert_eq!(a, b);
        let other = c.score(&[3.0, 4.1]).unwrap();
        assert_ne!(a, other);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn random_scores_are_roughly_uniform() {
        let mut c = RandomScores::new(7);
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        c.fit(&x, &[true]).unwrap();
        let n = 10_000;
        let mut sum = 0.0;
        let mut below_half = 0usize;
        for i in 0..n {
            let s = c.score(&[f64::from(i)]).unwrap();
            sum += s;
            if s < 0.5 {
                below_half += 1;
            }
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let frac = below_half as f64 / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "frac below 0.5: {frac}");
    }

    #[test]
    fn different_seeds_differ() {
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let mut a = RandomScores::new(1);
        let mut b = RandomScores::new(2);
        a.fit(&x, &[true]).unwrap();
        b.fit(&x, &[true]).unwrap();
        assert_ne!(a.score(&[5.0]).unwrap(), b.score(&[5.0]).unwrap());
    }

    #[test]
    fn unfitted_errors() {
        let c = RandomScores::new(0);
        assert!(matches!(c.score(&[0.0]), Err(LearnError::NotFitted)));
        assert_eq!(c.name(), "random");
    }

    #[test]
    fn constant_clamps_and_returns() {
        let c = ConstantScore::new(1.7);
        assert_eq!(c.score(&[0.0]).unwrap(), 1.0);
        let c = ConstantScore::new(0.5);
        assert_eq!(c.score(&[1.0, 2.0, 3.0]).unwrap(), 0.5);
        assert_eq!(c.name(), "constant");
    }
}
