//! k-fold cross-validation.
//!
//! QLAC (paper §3.2, Eq. 2) adjusts the observed classifier count with
//! `t̂pr` and `f̂pr` estimated by k-fold cross-validation on the training
//! sample; [`cross_validated_rates`] implements exactly that.

use crate::classifier::Classifier;
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use crate::metrics::ConfusionMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Cross-validated true/false-positive rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvRates {
    /// Estimated true-positive rate (`None` if no positives appeared in
    /// any validation fold).
    pub tpr: Option<f64>,
    /// Estimated false-positive rate (`None` if no negatives appeared).
    pub fpr: Option<f64>,
    /// Pooled confusion matrix over all folds.
    pub confusion: ConfusionMatrix,
}

/// Produce `k` shuffled folds of `0..n` (sizes differing by at most one).
///
/// # Errors
///
/// Returns an error if `k < 2` or `k > n`.
pub fn k_fold_indices(n: usize, k: usize, seed: u64) -> LearnResult<Vec<Vec<usize>>> {
    if k < 2 {
        return Err(LearnError::InvalidParameter {
            name: "k",
            message: "cross-validation needs at least 2 folds".into(),
        });
    }
    if k > n {
        return Err(LearnError::InvalidParameter {
            name: "k",
            message: format!("cannot split {n} samples into {k} folds"),
        });
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut folds = vec![Vec::new(); k];
    for (pos, idx) in order.into_iter().enumerate() {
        folds[pos % k].push(idx);
    }
    Ok(folds)
}

/// Estimate tpr/fpr by k-fold cross-validation: for each fold, train a
/// fresh classifier (from `factory`) on the other folds, predict the held
/// out fold, and pool the confusion counts.
///
/// # Errors
///
/// Returns fold-construction or fit/predict errors.
pub fn cross_validated_rates<F>(
    x: &Matrix,
    y: &[bool],
    k: usize,
    seed: u64,
    factory: F,
) -> LearnResult<CvRates>
where
    F: Fn() -> Box<dyn Classifier>,
{
    if x.rows() != y.len() {
        return Err(LearnError::LengthMismatch {
            rows: x.rows(),
            labels: y.len(),
        });
    }
    let folds = k_fold_indices(x.rows(), k, seed)?;
    let mut pooled = ConfusionMatrix::default();
    for fold in &folds {
        let mut train_idx = Vec::with_capacity(x.rows() - fold.len());
        for other in &folds {
            if !std::ptr::eq(other, fold) {
                train_idx.extend_from_slice(other);
            }
        }
        let train_x = x.gather(&train_idx);
        let train_y: Vec<bool> = train_idx.iter().map(|&i| y[i]).collect();
        // A fold whose training part is single-class still trains (our
        // classifiers handle it); skip only if empty.
        if train_y.is_empty() {
            continue;
        }
        let mut model = factory();
        model.fit(&train_x, &train_y)?;
        for &i in fold {
            let pred = model.predict(x.row(i))?;
            pooled.record(pred, y[i]);
        }
    }
    Ok(CvRates {
        tpr: pooled.tpr(),
        fpr: pooled.fpr(),
        confusion: pooled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dummy::ConstantScore;
    use crate::knn::Knn;

    #[test]
    fn folds_partition_everything() {
        let folds = k_fold_indices(10, 3, 1).unwrap();
        assert_eq!(folds.len(), 3);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn folds_validation() {
        assert!(k_fold_indices(10, 1, 0).is_err());
        assert!(k_fold_indices(3, 5, 0).is_err());
        assert!(k_fold_indices(5, 5, 0).is_ok());
    }

    #[test]
    fn folds_deterministic_by_seed() {
        assert_eq!(
            k_fold_indices(20, 4, 9).unwrap(),
            k_fold_indices(20, 4, 9).unwrap()
        );
        assert_ne!(
            k_fold_indices(20, 4, 9).unwrap(),
            k_fold_indices(20, 4, 10).unwrap()
        );
    }

    #[test]
    fn always_positive_classifier_has_unit_rates() {
        let x =
            Matrix::from_rows(&(0..20).map(|i| vec![f64::from(i)]).collect::<Vec<_>>()).unwrap();
        let y: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let rates =
            cross_validated_rates(&x, &y, 4, 0, || Box::new(ConstantScore::new(1.0))).unwrap();
        assert_eq!(rates.tpr, Some(1.0));
        assert_eq!(rates.fpr, Some(1.0));
        assert_eq!(rates.confusion.total(), 20);
    }

    #[test]
    fn good_classifier_has_high_tpr_low_fpr() {
        // Separable data: feature > 9.5 ⇒ positive.
        let x =
            Matrix::from_rows(&(0..40).map(|i| vec![f64::from(i)]).collect::<Vec<_>>()).unwrap();
        let y: Vec<bool> = (0..40).map(|i| i >= 10).collect();
        let rates = cross_validated_rates(&x, &y, 5, 3, || Box::new(Knn::new(3).unwrap())).unwrap();
        assert!(rates.tpr.unwrap() > 0.85, "tpr {:?}", rates.tpr);
        assert!(rates.fpr.unwrap() < 0.3, "fpr {:?}", rates.fpr);
    }

    #[test]
    fn length_mismatch_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(
            cross_validated_rates(&x, &[true], 2, 0, || Box::new(ConstantScore::new(0.5))).is_err()
        );
    }
}
