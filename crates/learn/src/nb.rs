//! Gaussian Naive Bayes.
//!
//! Not in the paper's lineup, but §3.2 stresses that the methods "can
//! work with any" classifier exposing a confidence score; NB is the
//! cheapest fully probabilistic family and widens the classifier-quality
//! sweep of Figures 6–7. Each feature is modelled per class as an
//! independent Gaussian; the score is the posterior `P(q(o)=1 | x)`.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Gaussian-NB hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianNbConfig {
    /// Portion of the largest per-feature variance added to every
    /// variance for numerical stability (sklearn's `var_smoothing`).
    pub var_smoothing: f64,
}

impl Default for GaussianNbConfig {
    fn default() -> Self {
        Self {
            var_smoothing: 1e-9,
        }
    }
}

/// Per-class sufficient statistics: one Gaussian per feature.
#[derive(Debug, Clone, Default)]
struct ClassStats {
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

impl ClassStats {
    /// Joint log-likelihood `log P(class) + Σ log N(x_j; μ_j, σ²_j)`.
    fn log_joint(&self, row: &[f64]) -> f64 {
        let mut ll = self.log_prior;
        for ((&x, &m), &v) in row.iter().zip(&self.means).zip(&self.vars) {
            let d = x - m;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + d * d / v);
        }
        ll
    }
}

/// A fitted Gaussian Naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    config: GaussianNbConfig,
    /// `None` for a class absent from training (single-class data).
    pos: Option<ClassStats>,
    neg: Option<ClassStats>,
    dims: usize,
    fitted: bool,
}

impl GaussianNb {
    /// Create an unfitted model.
    pub fn new(config: GaussianNbConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Fitted per-feature means of the positive class, if any positives
    /// were seen in training.
    pub fn positive_means(&self) -> Option<&[f64]> {
        self.pos.as_ref().map(|s| s.means.as_slice())
    }

    /// Rebuild a fitted model from persisted per-class moments (the
    /// [`crate::persist`] import path). Each class is
    /// `(log_prior, means, vars)` or `None` when absent from training.
    pub(crate) fn restore(
        dims: usize,
        pos: Option<(f64, Vec<f64>, Vec<f64>)>,
        neg: Option<(f64, Vec<f64>, Vec<f64>)>,
    ) -> Self {
        let stats = |c: Option<(f64, Vec<f64>, Vec<f64>)>| {
            c.map(|(log_prior, means, vars)| ClassStats {
                log_prior,
                means,
                vars,
            })
        };
        Self {
            config: GaussianNbConfig::default(),
            pos: stats(pos),
            neg: stats(neg),
            dims,
            fitted: true,
        }
    }

    fn export_class(stats: &Option<ClassStats>) -> String {
        match stats {
            None => "none".to_string(),
            Some(s) => format!(
                "{};{};{}",
                crate::persist::enc_f64(s.log_prior),
                crate::persist::enc_f64s(&s.means),
                crate::persist::enc_f64s(&s.vars),
            ),
        }
    }
}

/// Mean and (population) variance per column over the selected rows.
fn column_moments(x: &Matrix, idx: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let d = x.cols();
    let n = idx.len() as f64;
    let mut means = vec![0.0; d];
    for &i in idx {
        for (m, &v) in means.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; d];
    for &i in idx {
        for ((s, &v), &m) in vars.iter_mut().zip(x.row(i)).zip(&means) {
            let dlt = v - m;
            *s += dlt * dlt;
        }
    }
    for s in &mut vars {
        *s /= n;
    }
    (means, vars)
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        if !(self.config.var_smoothing > 0.0 && self.config.var_smoothing.is_finite()) {
            return Err(LearnError::InvalidParameter {
                name: "var_smoothing",
                message: format!(
                    "must be a positive finite number, got {}",
                    self.config.var_smoothing
                ),
            });
        }
        self.dims = x.cols();
        let n = x.rows();
        let pos_idx: Vec<usize> = (0..n).filter(|&i| y[i]).collect();
        let neg_idx: Vec<usize> = (0..n).filter(|&i| !y[i]).collect();

        // Global smoothing floor: a fraction of the largest overall
        // feature variance, so constant features don't divide by zero.
        let all: Vec<usize> = (0..n).collect();
        let (_, gvars) = column_moments(x, &all);
        let floor = self.config.var_smoothing * gvars.iter().cloned().fold(1.0, f64::max);

        let stats_for = |idx: &[usize]| -> Option<ClassStats> {
            if idx.is_empty() {
                return None;
            }
            let (means, mut vars) = column_moments(x, idx);
            for v in &mut vars {
                *v += floor;
            }
            Some(ClassStats {
                log_prior: (idx.len() as f64 / n as f64).ln(),
                means,
                vars,
            })
        };
        self.pos = stats_for(&pos_idx);
        self.neg = stats_for(&neg_idx);
        self.fitted = true;
        Ok(())
    }

    fn export_params(&self) -> Option<String> {
        if !self.fitted {
            return None;
        }
        Some(format!(
            "{} gnb dims={} pos={} neg={}",
            crate::persist::MAGIC,
            self.dims,
            Self::export_class(&self.pos),
            Self::export_class(&self.neg),
        ))
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if row.len() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: row.len(),
            });
        }
        match (&self.pos, &self.neg) {
            (Some(p), Some(q)) => {
                let (lp, lq) = (p.log_joint(row), q.log_joint(row));
                // Posterior via the log-sum-exp trick.
                let m = lp.max(lq);
                let (ep, eq) = ((lp - m).exp(), (lq - m).exp());
                Ok(ep / (ep + eq))
            }
            // Single-class training data: the score collapses to the
            // prior (1 or 0), per the `Classifier::fit` contract.
            (Some(_), None) => Ok(1.0),
            (None, Some(_)) => Ok(0.0),
            (None, None) => Err(LearnError::NotFitted),
        }
    }

    /// Batch scoring: the per-row posterior arithmetic with the class
    /// dispatch and validity checks hoisted out of the loop
    /// (single-class models fill a constant without touching rows).
    /// Bit-identical to the per-row path.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: x.cols(),
            });
        }
        match (&self.pos, &self.neg) {
            (Some(p), Some(q)) => {
                let mut out = Vec::with_capacity(x.rows());
                for row in x.iter_rows() {
                    let (lp, lq) = (p.log_joint(row), q.log_joint(row));
                    let m = lp.max(lq);
                    let (ep, eq) = ((lp - m).exp(), (lq - m).exp());
                    out.push(ep / (ep + eq));
                }
                Ok(out)
            }
            (Some(_), None) => Ok(vec![1.0; x.rows()]),
            (None, Some(_)) => Ok(vec![0.0; x.rows()]),
            (None, None) => Err(LearnError::NotFitted),
        }
    }

    fn name(&self) -> &'static str {
        "gnb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs along the first axis, exactly mirrored
    /// about 0 so the midpoint posterior is 0.5 by symmetry.
    fn blobs() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let jitter = f64::from(i % 11) * 0.05 - 0.25;
            rows.push(vec![-2.0 + jitter, f64::from(i % 5)]);
            y.push(false);
            rows.push(vec![2.0 - jitter, f64::from(i % 5)]);
            y.push(true);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = blobs();
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        let correct = x
            .iter_rows()
            .enumerate()
            .filter(|(i, row)| m.predict(row).unwrap() == y[*i])
            .count();
        assert_eq!(correct, y.len(), "blobs are linearly separable");
        assert!(m.score(&[2.0, 2.0]).unwrap() > 0.99);
        assert!(m.score(&[-2.0, 2.0]).unwrap() < 0.01);
    }

    #[test]
    fn score_is_calibrated_posterior_at_midpoint() {
        let (x, y) = blobs();
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        // Equidistant from both symmetric blobs with balanced priors.
        let s = m.score(&[0.0, 2.0]).unwrap();
        assert!((s - 0.5).abs() < 0.05, "midpoint posterior {s}");
    }

    #[test]
    fn positive_means_recovered() {
        let (x, y) = blobs();
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        let means = m.positive_means().unwrap();
        assert!((means[0] - 2.0).abs() < 0.3);
    }

    #[test]
    fn single_class_collapses_to_constant() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut m = GaussianNb::default();
        m.fit(&x, &[true, true, true]).unwrap();
        assert_eq!(m.score(&[-100.0]).unwrap(), 1.0);
        m.fit(&x, &[false, false, false]).unwrap();
        assert_eq!(m.score(&[100.0]).unwrap(), 0.0);
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let x = Matrix::from_rows(&[
            vec![1.0, 5.0],
            vec![1.0, 5.0],
            vec![1.0, 5.0],
            vec![1.0, 5.0],
        ])
        .unwrap();
        let y = vec![true, false, true, false];
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        let s = m.score(&[1.0, 5.0]).unwrap();
        assert!(s.is_finite());
        assert!((s - 0.5).abs() < 1e-9, "no signal → prior 0.5, got {s}");
    }

    #[test]
    fn unbalanced_priors_shift_the_boundary() {
        // 90% negatives: the midpoint should now lean negative.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let jitter = f64::from(i % 7) * 0.1;
            if i < 90 {
                rows.push(vec![-1.0 + jitter]);
                y.push(false);
            } else {
                rows.push(vec![1.0 + jitter]);
                y.push(true);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        assert!(m.score(&[0.0]).unwrap() < 0.5);
    }

    #[test]
    fn errors() {
        let m = GaussianNb::default();
        assert!(matches!(m.score(&[0.0]), Err(LearnError::NotFitted)));
        let mut m = GaussianNb::default();
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        m.fit(&x, &[true, false]).unwrap();
        assert!(matches!(
            m.score(&[1.0]),
            Err(LearnError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
        let mut bad = GaussianNb::new(GaussianNbConfig { var_smoothing: 0.0 });
        assert!(bad.fit(&x, &[true, false]).is_err());
        assert_eq!(m.name(), "gnb");
    }
}
