//! From-scratch machine-learning substrate for `learning-to-sample`.
//!
//! The paper treats classifiers as off-the-shelf black boxes whose only
//! required interface is a **scoring function** `g : O → [0, 1]`
//! reflecting prediction confidence (§3.2). The Rust ML ecosystem is thin,
//! so this crate implements the classifiers the paper evaluates, from
//! scratch, behind one trait:
//!
//! * [`knn::Knn`] — k-nearest-neighbours over a kd-tree (`g` = fraction
//!   of positive neighbours), the classifier of Figure 1;
//! * [`forest::RandomForest`] — bagged CART trees with feature
//!   subsampling (`n = 100` estimators, the paper's default);
//! * [`mlp::Mlp`] — the paper's "simple two-layer neural network"
//!   with (5, 2) intermediate layers;
//! * [`linear::Logistic`] — logistic regression (a useful extra);
//! * [`nb::GaussianNb`] — Gaussian Naive Bayes (cheap, calibrated);
//! * [`gbm::Gbm`] — gradient-boosted trees with logistic loss and
//!   Newton leaf values (stronger than the paper's forest);
//! * [`dummy::RandomScores`] — the adversarial "Random" classifier of
//!   §5.4.4 (arbitrary scores, the worst case for LSS);
//! * [`dummy::ConstantScore`] — degenerate edge-case classifier.
//!
//! Supporting machinery: a minimal row-major [`matrix::Matrix`],
//! [`scaler::StandardScaler`], classification [`metrics`], k-fold
//! [`cv`] (the tpr/fpr estimation QLAC needs), and uncertainty-sampling
//! [`active`] learning (§3.2).

#![warn(missing_docs)]

pub mod active;
pub mod classifier;
pub mod cv;
pub mod dummy;
pub mod error;
pub mod forest;
pub mod gbm;
pub mod kdtree;
pub mod knn;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod nb;
pub mod persist;
pub mod scaler;
pub mod tree;

pub use active::{select_uncertain, AugmentConfig};
pub use classifier::{Classifier, ClassifierKind};
pub use cv::{cross_validated_rates, k_fold_indices, CvRates};
pub use dummy::{ConstantScore, RandomScores};
pub use error::{LearnError, LearnResult};
pub use forest::RandomForest;
pub use gbm::{Gbm, GbmConfig};
pub use knn::Knn;
pub use linear::Logistic;
pub use matrix::Matrix;
pub use metrics::{accuracy, confusion, ConfusionMatrix};
pub use mlp::Mlp;
pub use nb::{GaussianNb, GaussianNbConfig};
pub use persist::import_params;
pub use scaler::StandardScaler;
pub use tree::{DecisionTree, TreeConfig};
