//! Feature standardization (zero mean, unit variance).

use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-column standardizer: `x' = (x − μ) / σ` with `σ = 1` for constant
/// columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit on a feature matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input.
    pub fn fit(x: &Matrix) -> LearnResult<Self> {
        if x.is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let (rows, cols) = (x.rows(), x.cols());
        let mut means = vec![0.0; cols];
        for row in x.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= rows as f64;
        }
        let mut vars = vec![0.0; cols];
        for row in x.iter_rows() {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / rows as f64).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { means, stds })
    }

    /// Number of features this scaler expects.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// The fitted per-column `(means, stds)` — the scaler's entire
    /// state, for weight-level persistence.
    pub(crate) fn params(&self) -> (&[f64], &[f64]) {
        (&self.means, &self.stds)
    }

    /// Rebuild from persisted moments.
    pub(crate) fn restore(means: Vec<f64>, stds: Vec<f64>) -> Self {
        Self { means, stds }
    }

    /// Standardize one row into a new vector.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn transform_row(&self, row: &[f64]) -> LearnResult<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(LearnError::DimensionMismatch {
                expected: self.means.len(),
                found: row.len(),
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect())
    }

    /// Standardize one row into a reusable buffer — the allocation-free
    /// variant batch scoring kernels loop over. Element-for-element the
    /// same arithmetic as [`StandardScaler::transform_row`], so results
    /// are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) -> LearnResult<()> {
        if row.len() != self.means.len() {
            return Err(LearnError::DimensionMismatch {
                expected: self.means.len(),
                found: row.len(),
            });
        }
        out.clear();
        out.extend(
            row.iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(&x, (&m, &s))| (x - m) / s),
        );
        Ok(())
    }

    /// Standardize a whole matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn transform(&self, x: &Matrix) -> LearnResult<Matrix> {
        if x.cols() != self.means.len() {
            return Err(LearnError::DimensionMismatch {
                expected: self.means.len(),
                found: x.cols(),
            });
        }
        let mut out = Matrix::empty(x.cols());
        for row in x.iter_rows() {
            out.push_row(&self.transform_row(row)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for c in 0..2 {
            let vals: Vec<f64> = t.iter_rows().map(|r| r[c]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / 3.0;
            let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_do_not_blow_up() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform_row(&[7.0]).unwrap();
        assert_eq!(t, vec![0.0]);
    }

    #[test]
    fn transform_row_into_matches_transform_row() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let mut buf = Vec::new();
        for row in x.iter_rows() {
            s.transform_row_into(row, &mut buf).unwrap();
            assert_eq!(buf, s.transform_row(row).unwrap());
        }
        assert!(s.transform_row_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn dimension_checks() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        assert_eq!(s.dims(), 2);
        assert!(s.transform_row(&[1.0]).is_err());
        let bad = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(s.transform(&bad).is_err());
        assert!(StandardScaler::fit(&Matrix::empty(3)).is_err());
    }
}
