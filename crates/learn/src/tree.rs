//! CART decision tree (Gini impurity).
//!
//! The base learner for [`crate::forest::RandomForest`]. Supports feature
//! subsampling at every split (the forest's decorrelation device) and the
//! usual depth/leaf-size stopping rules. Leaf scores are the positive
//! fraction of training labels reaching the leaf.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        p: f64,
    },
    Split {
        feat: usize,
        thr: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    dims: usize,
    fitted: bool,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            dims: 0,
            fitted: false,
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf probability for a row without the per-call fitted/dimension
    /// checks — the batch-traversal kernel the forest accumulates over
    /// (callers validate once per batch).
    pub(crate) fn score_unchecked(&self, row: &[f64]) -> f64 {
        let mut node = self.nodes.len() - 1; // root is last
        loop {
            match &self.nodes[node] {
                Node::Leaf { p } => return *p,
                Node::Split {
                    feat,
                    thr,
                    left,
                    right,
                } => {
                    node = if row[*feat] <= *thr { *left } else { *right };
                }
            }
        }
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[bool],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let positives = idx.iter().filter(|&&i| y[i]).count();
        let n = idx.len();
        let p = positives as f64 / n as f64;
        let pure = positives == 0 || positives == n;
        if pure || depth >= self.config.max_depth || n < self.config.min_samples_split {
            self.nodes.push(Node::Leaf { p });
            return self.nodes.len() - 1;
        }

        // Candidate features (subsampled for forests).
        let mut feats: Vec<usize> = (0..x.cols()).collect();
        if let Some(m) = self.config.max_features {
            feats.shuffle(rng);
            feats.truncate(m.max(1).min(x.cols()));
        }

        let parent_gini = gini(p);
        let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, gain)
        let mut sorted: Vec<usize> = Vec::with_capacity(n);
        for &feat in &feats {
            sorted.clear();
            sorted.extend_from_slice(idx);
            sorted.sort_by(|&a, &b| x.row(a)[feat].total_cmp(&x.row(b)[feat]));
            // Prefix positives for O(1) impurity at every cut.
            let mut pos_left = 0usize;
            for cut in 1..n {
                let prev = sorted[cut - 1];
                if y[prev] {
                    pos_left += 1;
                }
                let (a, b) = (x.row(prev)[feat], x.row(sorted[cut])[feat]);
                if a == b {
                    continue; // can't cut between equal values
                }
                let n_l = cut;
                let n_r = n - cut;
                if n_l < self.config.min_samples_leaf || n_r < self.config.min_samples_leaf {
                    continue;
                }
                let p_l = pos_left as f64 / n_l as f64;
                let p_r = (positives - pos_left) as f64 / n_r as f64;
                let w_gini = (n_l as f64 * gini(p_l) + n_r as f64 * gini(p_r)) / n as f64;
                let gain = parent_gini - w_gini;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((feat, 0.5 * (a + b), gain));
                }
            }
        }

        let Some((feat, thr, _)) = best else {
            self.nodes.push(Node::Leaf { p });
            return self.nodes.len() - 1;
        };

        // Partition indices.
        let (mut l, mut r): (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for &i in idx.iter() {
            if x.row(i)[feat] <= thr {
                l.push(i);
            } else {
                r.push(i);
            }
        }
        if l.is_empty() || r.is_empty() {
            self.nodes.push(Node::Leaf { p });
            return self.nodes.len() - 1;
        }
        let left = self.build(x, y, &mut l, depth + 1, rng);
        let right = self.build(x, y, &mut r, depth + 1, rng);
        self.nodes.push(Node::Split {
            feat,
            thr,
            left,
            right,
        });
        self.nodes.len() - 1
    }
}

#[inline]
fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        self.nodes.clear();
        self.dims = x.cols();
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let root = self.build(x, y, &mut idx, 0, &mut rng);
        debug_assert_eq!(root, self.nodes.len() - 1, "root is last node");
        self.fitted = true;
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if row.len() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: row.len(),
            });
        }
        Ok(self.score_unchecked(row))
    }

    /// Batch traversal: validity checked once, then the unchecked
    /// traversal per row (identical node walk → bit-identical scores).
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: x.cols(),
            });
        }
        Ok(x.iter_rows().map(|row| self.score_unchecked(row)).collect())
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        // Noisy XOR: needs depth ≥ 2.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f64::from(i % 2);
            let b = f64::from((i / 2) % 2);
            let jitter = f64::from(i % 7) * 0.01;
            rows.push(vec![a + jitter, b - jitter]);
            y.push((a > 0.5) != (b > 0.5));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert!(!t.predict(&[0.0, 0.0]).unwrap());
        assert!(t.predict(&[1.0, 0.0]).unwrap());
        assert!(t.predict(&[0.0, 1.0]).unwrap());
        assert!(!t.predict(&[1.0, 1.0]).unwrap());
    }

    #[test]
    fn pure_training_set_is_a_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &[true, true, true]).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.score(&[9.9]).unwrap(), 1.0);
    }

    #[test]
    fn max_depth_zero_gives_prior() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&x, &y).unwrap();
        let prior = y.iter().filter(|&&b| b).count() as f64 / y.len() as f64;
        assert!((t.score(&[0.0, 0.0]).unwrap() - prior).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_respected() {
        // With a huge min_samples_leaf no split is possible.
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig {
            min_samples_leaf: 1000,
            ..TreeConfig::default()
        });
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let y = vec![true, false, true, false];
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!((t.score(&[1.0]).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_and_errors() {
        let t = DecisionTree::new(TreeConfig::default());
        assert!(matches!(t.score(&[0.0]), Err(LearnError::NotFitted)));
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert!(t.score(&[0.0]).is_err()); // wrong dims
        assert_eq!(t.name(), "tree");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            max_features: Some(1),
            seed: 42,
            ..TreeConfig::default()
        };
        let mut a = DecisionTree::new(cfg);
        let mut b = DecisionTree::new(cfg);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for pt in [[0.0, 0.0], [1.0, 0.0], [0.3, 0.8]] {
            assert_eq!(a.score(&pt).unwrap(), b.score(&pt).unwrap());
        }
    }
}
