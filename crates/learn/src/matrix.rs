//! A minimal dense row-major matrix of `f64` features.

use crate::error::{LearnError, LearnResult};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix: `rows × cols` feature values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_flat(data: Vec<f64>, rows: usize, cols: usize) -> LearnResult<Self> {
        if data.len() != rows * cols {
            return Err(LearnError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
            });
        }
        Ok(Self { data, rows, cols })
    }

    /// Create from row vectors (all must have equal length).
    ///
    /// # Errors
    ///
    /// Returns an error for ragged rows or an empty input.
    pub fn from_rows(rows: &[Vec<f64>]) -> LearnResult<Self> {
        let Some(first) = rows.first() else {
            return Err(LearnError::EmptyTrainingSet);
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LearnError::DimensionMismatch {
                    expected: cols,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// An empty matrix with a fixed column count.
    pub fn empty(cols: usize) -> Self {
        Self {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Append one row.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch.
    pub fn push_row(&mut self, row: &[f64]) -> LearnResult<()> {
        if row.len() != self.cols {
            return Err(LearnError::DimensionMismatch {
                expected: self.cols,
                found: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Gather the given rows into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Verify every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns the position of the first non-finite entry.
    pub fn check_finite(&self) -> LearnResult<()> {
        for (idx, &v) in self.data.iter().enumerate() {
            if !v.is_finite() {
                return Err(LearnError::NonFiniteFeature {
                    row: idx / self.cols.max(1),
                    col: idx % self.cols.max(1),
                });
            }
        }
        Ok(())
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Copy out column `j` in one strided pass (column-at-a-time
    /// extraction for the scoring pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of range ({})", self.cols);
        self.data
            .get(j..)
            .unwrap_or(&[]) // no rows: data is shorter than j
            .iter()
            .step_by(self.cols)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_flat_validates() {
        assert!(Matrix::from_flat(vec![1.0, 2.0, 3.0], 2, 2).is_err());
        let m = Matrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn push_row_and_gather() {
        let mut m = Matrix::empty(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        m.push_row(&[4.0, 5.0, 6.0]).unwrap();
        m.push_row(&[7.0, 8.0, 9.0]).unwrap();
        assert!(m.push_row(&[1.0]).is_err());
        let g = m.gather(&[2, 0]);
        assert_eq!(g.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(g.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn finite_check() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN]]).unwrap();
        assert!(matches!(
            m.check_finite(),
            Err(LearnError::NonFiniteFeature { row: 0, col: 1 })
        ));
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(m.check_finite().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let m = Matrix::empty(2);
        let _ = m.row(0);
    }

    #[test]
    fn column_extracts_strided_values() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0, 6.0]);
        assert!(Matrix::empty(2).column(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let m = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let _ = m.column(1);
    }

    #[test]
    fn iter_rows_visits_all() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let sums: Vec<f64> = m.iter_rows().map(|r| r[0]).collect();
        assert_eq!(sums, vec![1.0, 2.0, 3.0]);
    }
}
