//! k-nearest-neighbour classifier.
//!
//! The classifier used for Figure 1's decision-boundary heat maps. The
//! score `g(o)` is the fraction of positive labels among the `k` nearest
//! training points (standardized features, Euclidean distance) — a value
//! in `{0, 1/k, …, 1}` that directly expresses confidence.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::kdtree::KdTree;
use crate::matrix::Matrix;
use crate::scaler::StandardScaler;

/// k-NN classifier over a kd-tree.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    scaler: Option<StandardScaler>,
    tree: Option<KdTree>,
    labels: Vec<bool>,
}

impl Knn {
    /// Create an (unfitted) k-NN classifier.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0`.
    pub fn new(k: usize) -> LearnResult<Self> {
        if k == 0 {
            return Err(LearnError::InvalidParameter {
                name: "k",
                message: "k must be at least 1".into(),
            });
        }
        Ok(Self {
            k,
            scaler: None,
            tree: None,
            labels: Vec::new(),
        })
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Default for Knn {
    /// `k = 5`, a common default.
    fn default() -> Self {
        Self::new(5).expect("5 > 0")
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        let scaler = StandardScaler::fit(x)?;
        let scaled = scaler.transform(x)?;
        self.tree = Some(KdTree::build(scaled));
        self.scaler = Some(scaler);
        self.labels = y.to_vec();
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        let (tree, scaler) = match (&self.tree, &self.scaler) {
            (Some(t), Some(s)) => (t, s),
            _ => return Err(LearnError::NotFitted),
        };
        let q = scaler.transform_row(row)?;
        let nn = tree.knn(&q, self.k.min(self.labels.len()));
        if nn.is_empty() {
            return Err(LearnError::NotFitted);
        }
        let pos = nn.iter().filter(|&&(i, _)| self.labels[i]).count();
        Ok(pos as f64 / nn.len() as f64)
    }

    /// Batched kd-tree querying: validity and `k` resolved once, the
    /// query row standardized into a reused buffer, then one pruned
    /// tree query per row — the same query the per-row path runs, so
    /// scores are bit-identical.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        let (tree, scaler) = match (&self.tree, &self.scaler) {
            (Some(t), Some(s)) => (t, s),
            _ => return Err(LearnError::NotFitted),
        };
        if x.cols() != scaler.dims() {
            return Err(LearnError::DimensionMismatch {
                expected: scaler.dims(),
                found: x.cols(),
            });
        }
        let k = self.k.min(self.labels.len());
        let mut out = Vec::with_capacity(x.rows());
        let mut q = Vec::with_capacity(x.cols());
        for row in x.iter_rows() {
            scaler.transform_row_into(row, &mut q)?;
            let nn = tree.knn(&q, k);
            if nn.is_empty() {
                return Err(LearnError::NotFitted);
            }
            let pos = nn.iter().filter(|&&(i, _)| self.labels[i]).count();
            out.push(pos as f64 / nn.len() as f64);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<bool>) {
        // Two well-separated clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..60 {
            rows.push(vec![next() + 0.0, next() + 0.0]);
            labels.push(false);
            rows.push(vec![next() + 5.0, next() + 5.0]);
            labels.push(true);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separable_clusters_classified_confidently() {
        let (x, y) = blobs();
        let mut knn = Knn::new(5).unwrap();
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.score(&[0.1, -0.1]).unwrap(), 0.0);
        assert_eq!(knn.score(&[5.1, 4.9]).unwrap(), 1.0);
        assert!(knn.predict(&[4.8, 5.2]).unwrap());
        assert!(!knn.predict(&[0.0, 0.0]).unwrap());
        // Midpoint is uncertain-ish (score strictly between 0 and 1 not
        // guaranteed, but must be a valid probability).
        let s = knn.score(&[2.5, 2.5]).unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn k_larger_than_training_set() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![false, true, true];
        let mut knn = Knn::new(10).unwrap();
        knn.fit(&x, &y).unwrap();
        // Uses all 3 neighbours → score 2/3 everywhere.
        assert!((knn.score(&[0.5]).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_class_training() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut knn = Knn::default();
        knn.fit(&x, &[true, true]).unwrap();
        assert_eq!(knn.score(&[0.5]).unwrap(), 1.0);
    }

    #[test]
    fn unfitted_and_invalid() {
        assert!(Knn::new(0).is_err());
        let knn = Knn::default();
        assert!(matches!(knn.score(&[1.0]), Err(LearnError::NotFitted)));
        let mut knn = Knn::default();
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(knn.fit(&x, &[]).is_err());
        knn.fit(&x, &[true]).unwrap();
        assert!(knn.score(&[1.0, 2.0]).is_err()); // wrong dims
        assert_eq!(knn.name(), "knn");
        assert_eq!(knn.k(), 5);
    }

    #[test]
    fn scores_reflect_neighbourhood_mix() {
        // 1-d line: negatives at 0..5, positives at 10..15. Query at 7.5
        // with k=4 sees a mix.
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![f64::from(i)])
            .chain((10..15).map(|i| vec![f64::from(i)]))
            .collect();
        let y: Vec<bool> = (0..10).map(|i| i >= 5).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut knn = Knn::new(4).unwrap();
        knn.fit(&x, &y).unwrap();
        let s = knn.score(&[7.4]).unwrap();
        assert!(s > 0.0 && s < 1.0, "mixed neighbourhood: {s}");
    }
}
