//! A kd-tree for exact k-nearest-neighbour queries.
//!
//! Built by recursive median splits (`select_nth_unstable`), queried with
//! branch-and-bound pruning. Distances are squared Euclidean.

use crate::matrix::Matrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node of the kd-tree (indices into the owned point matrix).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Point ids in this leaf.
        points: Vec<u32>,
    },
    Split {
        /// Splitting dimension.
        dim: usize,
        /// Splitting value (points with `x[dim] < value` go left).
        value: f64,
        left: usize,
        right: usize,
    },
}

/// An exact kd-tree over a set of points.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Matrix,
    root: usize,
}

/// Max-heap entry: (distance², point id).
#[derive(Debug, PartialEq)]
struct HeapItem(f64, u32);
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

const LEAF_SIZE: usize = 16;

impl KdTree {
    /// Build a tree over the rows of `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty (callers validate first).
    pub fn build(points: Matrix) -> Self {
        assert!(!points.is_empty(), "kd-tree needs at least one point");
        let mut ids: Vec<u32> = (0..points.rows())
            .map(|i| u32::try_from(i).expect("point count fits u32"))
            .collect();
        let mut tree = Self {
            nodes: Vec::new(),
            points,
            root: 0,
        };
        let root = tree.build_rec(&mut ids, 0);
        tree.root = root;
        tree
    }

    fn build_rec(&mut self, ids: &mut [u32], depth: usize) -> usize {
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                points: ids.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        let dim = depth % self.points.cols();
        let mid = ids.len() / 2;
        // Borrow-checker friendly: compare through a raw accessor closure.
        let pts = &self.points;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            pts.row(a as usize)[dim].total_cmp(&pts.row(b as usize)[dim])
        });
        let value = self.points.row(ids[mid] as usize)[dim];
        let (l, r) = ids.split_at_mut(mid);
        // Degenerate split (all equal along dim): fall back to a leaf to
        // guarantee termination.
        if l.is_empty() || r.is_empty() {
            self.nodes.push(Node::Leaf {
                points: ids.to_vec(),
            });
            return self.nodes.len() - 1;
        }
        let left = self.build_rec(l, depth + 1);
        let right = self.build_rec(r, depth + 1);
        self.nodes.push(Node::Split {
            dim,
            value,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Whether the tree is empty (never true: construction requires
    /// points).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest neighbours of `query` as `(point_id, distance²)`
    /// pairs, nearest first. Returns fewer if the tree holds fewer points.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(self.root, query, k, &mut heap);
        let mut out: Vec<(usize, f64)> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|HeapItem(d, i)| (i as usize, d))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    fn knn_rec(&self, node: usize, query: &[f64], k: usize, heap: &mut BinaryHeap<HeapItem>) {
        match &self.nodes[node] {
            Node::Leaf { points } => {
                for &p in points {
                    let d = dist2(self.points.row(p as usize), query);
                    if heap.len() < k {
                        heap.push(HeapItem(d, p));
                    } else if let Some(top) = heap.peek() {
                        if d < top.0 {
                            heap.pop();
                            heap.push(HeapItem(d, p));
                        }
                    }
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let delta = query[*dim] - value;
                let (near, far) = if delta < 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.knn_rec(near, query, k, heap);
                let worst = heap.peek().map_or(f64::INFINITY, |t| t.0);
                if heap.len() < k || delta * delta <= worst {
                    self.knn_rec(far, query, k, heap);
                }
            }
        }
    }
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| next() * 10.0).collect())
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    fn brute_knn(points: &Matrix, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = points
            .iter_rows()
            .enumerate()
            .map(|(i, r)| (i, dist2(r, query)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force() {
        for &(n, d) in &[(40usize, 2usize), (200, 3), (500, 5)] {
            let pts = pseudo_points(n, d, 7);
            let tree = KdTree::build(pts.clone());
            for qi in (0..n).step_by(13) {
                let q: Vec<f64> = pts.row(qi).to_vec();
                for &k in &[1usize, 3, 7] {
                    let got = tree.knn(&q, k);
                    let want = brute_knn(&pts, &q, k);
                    let got_d: Vec<f64> = got.iter().map(|x| x.1).collect();
                    let want_d: Vec<f64> = want.iter().map(|x| x.1).collect();
                    assert_eq!(got_d.len(), want_d.len());
                    for (g, w) in got_d.iter().zip(&want_d) {
                        assert!((g - w).abs() < 1e-9, "n={n} d={d} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let rows = vec![vec![1.0, 1.0]; 50];
        let pts = Matrix::from_rows(&rows).unwrap();
        let tree = KdTree::build(pts);
        let nn = tree.knn(&[1.0, 1.0], 5);
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn k_larger_than_population() {
        let pts = pseudo_points(4, 2, 3);
        let tree = KdTree::build(pts);
        let nn = tree.knn(&[0.0, 0.0], 10);
        assert_eq!(nn.len(), 4);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        let pts = pseudo_points(10, 2, 3);
        let tree = KdTree::build(pts);
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn results_sorted_by_distance() {
        let pts = pseudo_points(300, 4, 99);
        let tree = KdTree::build(pts);
        let nn = tree.knn(&[5.0, 5.0, 5.0, 5.0], 10);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
