//! Gradient-boosted trees (logistic loss, Newton leaf values).
//!
//! Not in the paper's lineup, but the strongest off-the-shelf tabular
//! family today; §3.2 explicitly invites "a growing toolbox of
//! classification algorithms". Boosting shallow regression trees on the
//! logistic loss gives well-calibrated scores `g(o)` that slot straight
//! into LWS/LSS, and extends the classifier-quality sweep of Figures
//! 6–7 with a model stronger than the paper's random forest.
//!
//! Each round fits a depth-limited regression tree to the loss
//! gradient `y − σ(F)` (variance-reduction splits), then replaces each
//! leaf's mean with the Newton step `Σ r / Σ σ(F)(1−σ(F))` (Friedman's
//! TreeBoost for binomial deviance).

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbmConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum training rows in each leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbmConfig {
    fn default() -> Self {
        Self {
            n_rounds: 50,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_leaf: 4,
        }
    }
}

/// Nodes of one regression tree, root last (matching
/// [`crate::tree::DecisionTree`]'s layout).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feat: usize,
        thr: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, Default)]
struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    fn eval(&self, row: &[f64]) -> f64 {
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feat,
                    thr,
                    left,
                    right,
                } => {
                    node = if row[*feat] <= *thr { *left } else { *right };
                }
            }
        }
    }
}

/// Builder state shared across the recursive construction of one tree.
struct TreeBuilder<'a> {
    x: &'a Matrix,
    /// Loss gradients `y − σ(F)` (the regression targets).
    grad: &'a [f64],
    /// Hessians `σ(F)(1 − σ(F))` for Newton leaf values.
    hess: &'a [f64],
    config: GbmConfig,
    nodes: Vec<Node>,
}

impl TreeBuilder<'_> {
    /// Newton-step leaf value, clamped for numerical safety when a leaf
    /// is nearly pure (hessians → 0).
    fn leaf_value(&self, idx: &[usize]) -> f64 {
        let g: f64 = idx.iter().map(|&i| self.grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| self.hess[i]).sum();
        (g / (h + 1e-12)).clamp(-4.0, 4.0)
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let n = idx.len();
        if depth >= self.config.max_depth || n < 2 * self.config.min_samples_leaf {
            let value = self.leaf_value(idx);
            self.nodes.push(Node::Leaf { value });
            return self.nodes.len() - 1;
        }

        // Best variance-reduction split on the gradient targets.
        let total: f64 = idx.iter().map(|&i| self.grad[i]).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, score)
        let mut sorted: Vec<usize> = Vec::with_capacity(n);
        for feat in 0..self.x.cols() {
            sorted.clear();
            sorted.extend_from_slice(idx);
            sorted.sort_by(|&a, &b| self.x.row(a)[feat].total_cmp(&self.x.row(b)[feat]));
            let mut left_sum = 0.0;
            for cut in 1..n {
                let prev = sorted[cut - 1];
                left_sum += self.grad[prev];
                let (a, b) = (self.x.row(prev)[feat], self.x.row(sorted[cut])[feat]);
                if a == b {
                    continue;
                }
                let (n_l, n_r) = (cut, n - cut);
                if n_l < self.config.min_samples_leaf || n_r < self.config.min_samples_leaf {
                    continue;
                }
                // Maximizing Σ²_L/n_L + Σ²_R/n_R is equivalent to
                // minimizing within-child variance of the targets.
                let right_sum = total - left_sum;
                let score = left_sum * left_sum / n_l as f64 + right_sum * right_sum / n_r as f64;
                if score > best.map_or(total * total / n as f64 + 1e-12, |(_, _, s)| s) {
                    best = Some((feat, 0.5 * (a + b), score));
                }
            }
        }

        let Some((feat, thr, _)) = best else {
            let value = self.leaf_value(idx);
            self.nodes.push(Node::Leaf { value });
            return self.nodes.len() - 1;
        };

        let (mut l, mut r): (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for &i in idx.iter() {
            if self.x.row(i)[feat] <= thr {
                l.push(i);
            } else {
                r.push(i);
            }
        }
        let left = self.build(&mut l, depth + 1);
        let right = self.build(&mut r, depth + 1);
        self.nodes.push(Node::Split {
            feat,
            thr,
            left,
            right,
        });
        self.nodes.len() - 1
    }
}

/// A fitted gradient-boosted-trees classifier.
#[derive(Debug, Clone, Default)]
pub struct Gbm {
    config: GbmConfig,
    base_score: f64,
    trees: Vec<RegressionTree>,
    dims: usize,
    fitted: bool,
}

impl Gbm {
    /// Create an unfitted model.
    pub fn new(config: GbmConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Number of fitted boosting rounds (trees).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    fn raw(&self, row: &[f64]) -> f64 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.eval(row))
                .sum::<f64>()
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for Gbm {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        if self.config.n_rounds == 0 {
            return Err(LearnError::InvalidParameter {
                name: "n_rounds",
                message: "must be at least 1".into(),
            });
        }
        if !(self.config.learning_rate > 0.0 && self.config.learning_rate <= 1.0) {
            return Err(LearnError::InvalidParameter {
                name: "learning_rate",
                message: format!("must be in (0, 1], got {}", self.config.learning_rate),
            });
        }
        if self.config.min_samples_leaf == 0 {
            return Err(LearnError::InvalidParameter {
                name: "min_samples_leaf",
                message: "must be at least 1".into(),
            });
        }
        self.trees.clear();
        self.dims = x.cols();
        let n = x.rows();
        let positives = y.iter().filter(|&&b| b).count();

        // Prior log-odds; single-class data trains no trees — the score
        // collapses to the (clamped) prior, per the trait contract.
        let p0 = ((positives as f64 + 0.5) / (n as f64 + 1.0)).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (p0 / (1.0 - p0)).ln();
        self.fitted = true;
        if positives == 0 || positives == n {
            return Ok(());
        }

        let mut f: Vec<f64> = vec![self.base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for _ in 0..self.config.n_rounds {
            for i in 0..n {
                let p = sigmoid(f[i]);
                grad[i] = if y[i] { 1.0 } else { 0.0 } - p;
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }
            let mut builder = TreeBuilder {
                x,
                grad: &grad,
                hess: &hess,
                config: self.config,
                nodes: Vec::new(),
            };
            let mut idx: Vec<usize> = (0..n).collect();
            builder.build(&mut idx, 0);
            let tree = RegressionTree {
                nodes: builder.nodes,
            };
            for (fi, row) in f.iter_mut().zip(x.iter_rows()) {
                *fi += self.config.learning_rate * tree.eval(row);
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if row.len() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: row.len(),
            });
        }
        Ok(sigmoid(self.raw(row)))
    }

    /// Batch scoring by per-tree accumulation over row blocks (each
    /// regression tree stays cache-hot across a block). Rows accumulate
    /// shrunken leaf values in boosting order, so the raw margin — and
    /// the sigmoid of it — is bit-identical to the per-row path.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        if x.cols() != self.dims {
            return Err(LearnError::DimensionMismatch {
                expected: self.dims,
                found: x.cols(),
            });
        }
        const BLOCK: usize = 512;
        let n = x.rows();
        let mut acc = vec![0.0f64; n];
        let mut start = 0usize;
        while start < n {
            let end = (start + BLOCK).min(n);
            for tree in &self.trees {
                for (i, slot) in (start..end).zip(&mut acc[start..end]) {
                    *slot += self.config.learning_rate * tree.eval(x.row(i));
                }
            }
            start = end;
        }
        Ok(acc
            .into_iter()
            .map(|sum| sigmoid(self.base_score + sum))
            .collect())
    }

    fn name(&self) -> &'static str {
        "gbm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f64::from(i % 2);
            let b = f64::from((i / 2) % 2);
            let jitter = f64::from(i % 7) * 0.01;
            rows.push(vec![a + jitter, b - jitter]);
            y.push((a > 0.5) != (b > 0.5));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut m = Gbm::default();
        m.fit(&x, &y).unwrap();
        assert!(!m.predict(&[0.0, 0.0]).unwrap());
        assert!(m.predict(&[1.0, 0.0]).unwrap());
        assert!(m.predict(&[0.0, 1.0]).unwrap());
        assert!(!m.predict(&[1.0, 1.0]).unwrap());
        assert_eq!(m.tree_count(), GbmConfig::default().n_rounds);
    }

    #[test]
    fn scores_sharpen_with_rounds() {
        let (x, y) = xor_data();
        let mut weak = Gbm::new(GbmConfig {
            n_rounds: 2,
            ..GbmConfig::default()
        });
        let mut strong = Gbm::new(GbmConfig {
            n_rounds: 80,
            ..GbmConfig::default()
        });
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let margin = |m: &Gbm| (m.score(&[1.0, 0.0]).unwrap() - 0.5).abs();
        assert!(margin(&strong) > margin(&weak));
    }

    #[test]
    fn single_class_returns_clamped_prior() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut m = Gbm::default();
        m.fit(&x, &[true, true, true]).unwrap();
        assert_eq!(m.tree_count(), 0);
        assert!(m.score(&[0.0]).unwrap() > 0.8);
        m.fit(&x, &[false, false, false]).unwrap();
        assert!(m.score(&[0.0]).unwrap() < 0.2);
    }

    #[test]
    fn constant_features_fall_back_to_prior() {
        let x = Matrix::from_rows(&vec![vec![7.0]; 10]).unwrap();
        let y: Vec<bool> = (0..10).map(|i| i < 3).collect();
        let mut m = Gbm::default();
        m.fit(&x, &y).unwrap();
        let s = m.score(&[7.0]).unwrap();
        assert!((s - 0.3).abs() < 0.1, "≈30% positive prior, got {s}");
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let (x, y) = xor_data();
        let mut m = Gbm::new(GbmConfig {
            n_rounds: 200,
            learning_rate: 1.0,
            ..GbmConfig::default()
        });
        m.fit(&x, &y).unwrap();
        for row in x.iter_rows() {
            let s = m.score(row).unwrap();
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic() {
        let (x, y) = xor_data();
        let mut a = Gbm::default();
        let mut b = Gbm::default();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for pt in [[0.1, 0.2], [0.9, 0.1], [0.5, 0.5]] {
            assert_eq!(a.score(&pt).unwrap(), b.score(&pt).unwrap());
        }
    }

    #[test]
    fn errors() {
        let m = Gbm::default();
        assert!(matches!(m.score(&[0.0]), Err(LearnError::NotFitted)));
        let (x, y) = xor_data();
        let mut m = Gbm::new(GbmConfig {
            n_rounds: 0,
            ..GbmConfig::default()
        });
        assert!(m.fit(&x, &y).is_err());
        let mut m = Gbm::new(GbmConfig {
            learning_rate: 0.0,
            ..GbmConfig::default()
        });
        assert!(m.fit(&x, &y).is_err());
        let mut m = Gbm::new(GbmConfig {
            min_samples_leaf: 0,
            ..GbmConfig::default()
        });
        assert!(m.fit(&x, &y).is_err());
        let mut m = Gbm::default();
        m.fit(&x, &y).unwrap();
        assert!(m.score(&[0.0]).is_err()); // wrong dims
        assert_eq!(m.name(), "gbm");
    }
}
