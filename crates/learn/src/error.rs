//! Error types for the learning substrate.

use std::fmt;

/// Errors produced by classifiers and learning utilities.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// Training data was empty.
    EmptyTrainingSet,
    /// Features and labels have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature vector had the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// The model has not been fitted yet.
    NotFitted,
    /// An invalid hyperparameter.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// Training data contained NaN or infinite features.
    NonFiniteFeature {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// A model persistence (export/import) failure.
    Persist {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptyTrainingSet => write!(f, "training set is empty"),
            LearnError::LengthMismatch { rows, labels } => {
                write!(f, "feature rows ({rows}) and labels ({labels}) differ")
            }
            LearnError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected}-dimensional input, got {found}")
            }
            LearnError::NotFitted => write!(f, "model has not been fitted"),
            LearnError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            LearnError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
            LearnError::Persist { message } => {
                write!(f, "model persistence failure: {message}")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Convenience result alias.
pub type LearnResult<T> = Result<T, LearnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_context() {
        assert!(LearnError::NotFitted.to_string().contains("fitted"));
        let e = LearnError::DimensionMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains('4'));
        let e = LearnError::NonFiniteFeature { row: 3, col: 1 };
        assert!(e.to_string().contains('3'));
    }
}
