//! The paper's "simple two-layer neural network": hidden layers of
//! (5, 2) units, tanh activations, sigmoid output, Adam-optimized binary
//! cross-entropy, with internal feature standardization.
//!
//! The paper observes (§5.5.1) that this small network sometimes has
//! "poor predictive performance and produces extremely poor estimates"
//! for quantification learning, while LSS remains robust to it — so a
//! faithful reproduction needs an NN of exactly this modest capacity, not
//! a stronger one.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use crate::scaler::StandardScaler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// First hidden layer width (paper: 5).
    pub hidden1: usize,
    /// Second hidden layer width (paper: 2).
    pub hidden2: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden1: 5,
            hidden2: 2,
            epochs: 200,
            learning_rate: 0.01,
            batch_size: 32,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Dense layer parameters plus Adam state.
#[derive(Debug, Clone, Default)]
struct Layer {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform init.
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * limit)
            .collect();
        Self {
            w,
            b: vec![0.0; outputs],
            mw: vec![0.0; inputs * outputs],
            vw: vec![0.0; inputs * outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.b[o];
            for (w, &xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out.push(acc);
        }
    }
}

/// The two-hidden-layer MLP classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    scaler: Option<StandardScaler>,
    l1: Layer,
    l2: Layer,
    l3: Layer,
    fitted: bool,
    dims: usize,
}

impl Mlp {
    /// Create an unfitted MLP.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            scaler: None,
            l1: Layer::default(),
            l2: Layer::default(),
            l3: Layer::default(),
            fitted: false,
            dims: 0,
        }
    }

    /// Default (5, 2) network with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
    }

    /// Forward pass on a standardized row; returns (h1, h2, output).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
        let mut a1 = Vec::new();
        self.l1.forward(x, &mut a1);
        for v in &mut a1 {
            *v = v.tanh();
        }
        let mut a2 = Vec::new();
        self.l2.forward(&a1, &mut a2);
        for v in &mut a2 {
            *v = v.tanh();
        }
        let mut z3 = Vec::new();
        self.l3.forward(&a2, &mut z3);
        (a1, a2, sigmoid(z3[0]))
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// One Adam update for a parameter.
#[inline]
#[allow(clippy::too_many_arguments)]
fn adam_step(w: &mut f64, m: &mut f64, v: &mut f64, g: f64, lr: f64, t: f64, b1: f64, b2: f64) {
    const EPS: f64 = 1e-8;
    *m = b1 * *m + (1.0 - b1) * g;
    *v = b2 * *v + (1.0 - b2) * g * g;
    let mhat = *m / (1.0 - b1.powf(t));
    let vhat = *v / (1.0 - b2.powf(t));
    *w -= lr * mhat / (vhat.sqrt() + EPS);
}

impl Classifier for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        if self.config.hidden1 == 0 || self.config.hidden2 == 0 {
            return Err(LearnError::InvalidParameter {
                name: "hidden",
                message: "hidden layer widths must be positive".into(),
            });
        }
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x)?;
        self.dims = x.cols();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.l1 = Layer::new(self.dims, self.config.hidden1, &mut rng);
        self.l2 = Layer::new(self.config.hidden1, self.config.hidden2, &mut rng);
        self.l3 = Layer::new(self.config.hidden2, 1, &mut rng);
        self.scaler = Some(scaler);

        let n = xs.rows();
        let (b1, b2) = (0.9, 0.999);
        let lr = self.config.learning_rate;
        let lambda = self.config.l2;
        let mut order: Vec<usize> = (0..n).collect();
        let mut step = 0.0f64;
        for _epoch in 0..self.config.epochs {
            // Fisher–Yates shuffle with our seeded rng.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.config.batch_size.max(1)) {
                step += 1.0;
                // Accumulate gradients over the batch.
                let mut g1w = vec![0.0; self.l1.w.len()];
                let mut g1b = vec![0.0; self.l1.b.len()];
                let mut g2w = vec![0.0; self.l2.w.len()];
                let mut g2b = vec![0.0; self.l2.b.len()];
                let mut g3w = vec![0.0; self.l3.w.len()];
                let mut g3b = vec![0.0; self.l3.b.len()];
                for &i in batch {
                    let xi = xs.row(i);
                    let (a1, a2, p) = self.forward(xi);
                    let target = if y[i] { 1.0 } else { 0.0 };
                    // dL/dz3 for BCE + sigmoid.
                    let d3 = p - target;
                    for (j, &a) in a2.iter().enumerate() {
                        g3w[j] += d3 * a;
                    }
                    g3b[0] += d3;
                    // Backprop into layer 2.
                    let mut d2 = vec![0.0; a2.len()];
                    for (j, d) in d2.iter_mut().enumerate() {
                        *d = d3 * self.l3.w[j] * (1.0 - a2[j] * a2[j]);
                    }
                    for (o, &d) in d2.iter().enumerate() {
                        for (j, &a) in a1.iter().enumerate() {
                            g2w[o * self.l2.inputs + j] += d * a;
                        }
                        g2b[o] += d;
                    }
                    // Backprop into layer 1.
                    let mut d1 = vec![0.0; a1.len()];
                    for (j, d) in d1.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (o, &dd) in d2.iter().enumerate() {
                            acc += dd * self.l2.w[o * self.l2.inputs + j];
                        }
                        *d = acc * (1.0 - a1[j] * a1[j]);
                    }
                    for (o, &d) in d1.iter().enumerate() {
                        for (j, &xv) in xi.iter().enumerate() {
                            g1w[o * self.l1.inputs + j] += d * xv;
                        }
                        g1b[o] += d;
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                // Apply Adam to all three layers.
                for (layer, gw, gb) in [
                    (&mut self.l1, &g1w, &g1b),
                    (&mut self.l2, &g2w, &g2b),
                    (&mut self.l3, &g3w, &g3b),
                ] {
                    let weights = layer
                        .w
                        .iter_mut()
                        .zip(layer.mw.iter_mut())
                        .zip(layer.vw.iter_mut());
                    for (((w, m), v), &g_raw) in weights.zip(gw.iter()) {
                        let g = g_raw * scale + lambda * *w;
                        adam_step(w, m, v, g, lr, step, b1, b2);
                    }
                    let biases = layer
                        .b
                        .iter_mut()
                        .zip(layer.mb.iter_mut())
                        .zip(layer.vb.iter_mut());
                    for (((w, m), v), &g_raw) in biases.zip(gb.iter()) {
                        adam_step(w, m, v, g_raw * scale, lr, step, b1, b2);
                    }
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(LearnError::NotFitted)?;
        let xs = scaler.transform_row(row)?;
        let (_, _, p) = self.forward(&xs);
        Ok(p)
    }

    /// Batch forward pass reusing one set of activation buffers for the
    /// whole matrix (the per-row path allocates four vectors per row).
    /// Layer arithmetic is element-for-element the per-row forward, so
    /// scores are bit-identical.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(LearnError::NotFitted)?;
        if x.cols() != scaler.dims() {
            return Err(LearnError::DimensionMismatch {
                expected: scaler.dims(),
                found: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        let mut xs = Vec::with_capacity(x.cols());
        let mut a1 = Vec::with_capacity(self.l1.outputs);
        let mut a2 = Vec::with_capacity(self.l2.outputs);
        let mut z3 = Vec::with_capacity(1);
        for row in x.iter_rows() {
            scaler.transform_row_into(row, &mut xs)?;
            self.l1.forward(&xs, &mut a1);
            for v in &mut a1 {
                *v = v.tanh();
            }
            self.l2.forward(&a1, &mut a2);
            for v in &mut a2 {
                *v = v.tanh();
            }
            self.l3.forward(&a2, &mut z3);
            out.push(sigmoid(z3[0]));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "nn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<bool>) {
        // Linearly separable: y = x0 + x1 > 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            let a = next() * 2.0;
            let b = next() * 2.0;
            rows.push(vec![a, b]);
            y.push(a + b > 2.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_linear_boundary() {
        let (x, y) = linear_data();
        let mut nn = Mlp::with_seed(4);
        nn.fit(&x, &y).unwrap();
        let mut correct = 0;
        for (i, row) in x.iter_rows().enumerate() {
            if nn.predict(row).unwrap() == y[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn scores_in_unit_interval_and_ordered() {
        let (x, y) = linear_data();
        let mut nn = Mlp::with_seed(4);
        nn.fit(&x, &y).unwrap();
        let deep_neg = nn.score(&[0.0, 0.0]).unwrap();
        let deep_pos = nn.score(&[2.0, 2.0]).unwrap();
        assert!((0.0..=1.0).contains(&deep_neg));
        assert!((0.0..=1.0).contains(&deep_pos));
        assert!(deep_pos > deep_neg);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_data();
        let mut a = Mlp::with_seed(11);
        let mut b = Mlp::with_seed(11);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.score(&[1.0, 1.0]).unwrap(), b.score(&[1.0, 1.0]).unwrap());
    }

    #[test]
    fn single_class_training_is_confident() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut nn = Mlp::new(MlpConfig {
            epochs: 300,
            ..MlpConfig::default()
        });
        nn.fit(&x, &[true, true, true, true]).unwrap();
        assert!(nn.score(&[1.5]).unwrap() > 0.9);
    }

    #[test]
    fn errors() {
        let nn = Mlp::with_seed(0);
        assert!(matches!(nn.score(&[1.0]), Err(LearnError::NotFitted)));
        let mut bad = Mlp::new(MlpConfig {
            hidden1: 0,
            ..MlpConfig::default()
        });
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(bad.fit(&x, &[true]).is_err());
        let mut nn = Mlp::new(MlpConfig {
            epochs: 5,
            ..MlpConfig::default()
        });
        nn.fit(&x, &[true]).unwrap();
        assert!(nn.score(&[1.0, 2.0]).is_err());
        assert_eq!(nn.name(), "nn");
    }
}
