//! Classification metrics: confusion matrix, rates, accuracy, AUC.
//!
//! The true/false-positive rates feed QLAC's adjusted count (Eq. 2);
//! accuracy and AUC quantify "classifier quality" for Figures 6–7.

use crate::error::{LearnError, LearnResult};
use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Accumulate one (prediction, truth) pair.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// True-positive rate (recall); `None` when no actual positives.
    pub fn tpr(&self) -> Option<f64> {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            None
        } else {
            Some(self.tp as f64 / pos as f64)
        }
    }

    /// False-positive rate; `None` when no actual negatives.
    pub fn fpr(&self) -> Option<f64> {
        let neg = self.fp + self.tn;
        if neg == 0 {
            None
        } else {
            Some(self.fp as f64 / neg as f64)
        }
    }

    /// Precision; `None` when nothing was predicted positive.
    pub fn precision(&self) -> Option<f64> {
        let pred_pos = self.tp + self.fp;
        if pred_pos == 0 {
            None
        } else {
            Some(self.tp as f64 / pred_pos as f64)
        }
    }

    /// F1 score; `None` when undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.tpr()?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

/// Build a confusion matrix from aligned prediction/truth slices.
///
/// # Errors
///
/// Returns an error on length mismatch.
pub fn confusion(predicted: &[bool], actual: &[bool]) -> LearnResult<ConfusionMatrix> {
    if predicted.len() != actual.len() {
        return Err(LearnError::LengthMismatch {
            rows: predicted.len(),
            labels: actual.len(),
        });
    }
    let mut m = ConfusionMatrix::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        m.record(p, a);
    }
    Ok(m)
}

/// Plain accuracy.
///
/// # Errors
///
/// Returns an error on length mismatch or empty input.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> LearnResult<f64> {
    if predicted.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    Ok(confusion(predicted, actual)?.accuracy())
}

/// Area under the ROC curve from scores and labels (rank statistic /
/// Mann–Whitney with midrank tie handling).
///
/// # Errors
///
/// Returns an error on length mismatch or when one class is absent.
pub fn auc(scores: &[f64], actual: &[bool]) -> LearnResult<f64> {
    if scores.len() != actual.len() {
        return Err(LearnError::LengthMismatch {
            rows: scores.len(),
            labels: actual.len(),
        });
    }
    let pos = actual.iter().filter(|&&a| a).count();
    let neg = actual.len() - pos;
    if pos == 0 || neg == 0 {
        return Err(LearnError::InvalidParameter {
            name: "actual",
            message: "AUC needs both classes present".into(),
        });
    }
    // Midrank computation.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if actual[idx] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    Ok((rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f))
}

/// Brier score (mean squared error of scores against 0/1 labels).
///
/// # Errors
///
/// Returns an error on empty input or length mismatch.
pub fn brier(scores: &[f64], actual: &[bool]) -> LearnResult<f64> {
    if scores.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if scores.len() != actual.len() {
        return Err(LearnError::LengthMismatch {
            rows: scores.len(),
            labels: actual.len(),
        });
    }
    Ok(scores
        .iter()
        .zip(actual)
        .map(|(&s, &a)| {
            let t = if a { 1.0 } else { 0.0 };
            (s - t) * (s - t)
        })
        .sum::<f64>()
        / scores.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let act = [true, false, false, true, true];
        let m = confusion(&pred, &act).unwrap();
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.fpr().unwrap() - 0.5).abs() < 1e-12);
        assert!((m.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(m.f1().unwrap() > 0.0);
    }

    #[test]
    fn rates_undefined_without_class() {
        let m = confusion(&[true, false], &[false, false]).unwrap();
        assert!(m.tpr().is_none());
        assert!(m.fpr().is_some());
        let m = confusion(&[true, false], &[true, true]).unwrap();
        assert!(m.fpr().is_none());
    }

    #[test]
    fn merge_adds() {
        let mut a = confusion(&[true], &[true]).unwrap();
        let b = confusion(&[false], &[true]).unwrap();
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fn_, 1);
    }

    #[test]
    fn auc_perfect_and_random() {
        let labels = [false, false, true, true];
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels).unwrap() - 1.0).abs() < 1e-12);
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels).unwrap() - 0.0).abs() < 1e-12);
        // Constant scores → AUC 0.5 via midranks.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_needs_both_classes() {
        assert!(auc(&[0.5, 0.6], &[true, true]).is_err());
        assert!(auc(&[0.5], &[true, false]).is_err());
    }

    #[test]
    fn brier_bounds() {
        let perfect = brier(&[0.0, 1.0], &[false, true]).unwrap();
        assert!(perfect.abs() < 1e-12);
        let worst = brier(&[1.0, 0.0], &[false, true]).unwrap();
        assert!((worst - 1.0).abs() < 1e-12);
        assert!(brier(&[], &[]).is_err());
    }

    #[test]
    fn accuracy_validation() {
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[true], &[true, false]).is_err());
        assert!((accuracy(&[true, false], &[true, true]).unwrap() - 0.5).abs() < 1e-12);
    }
}
