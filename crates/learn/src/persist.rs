//! Fitted-model persistence: a compact, dependency-free text codec.
//!
//! The workspace's vendored `serde` is a no-op derive shim, so models
//! serialize through a hand-rolled line format instead:
//!
//! ```text
//! lts-model/v1 <tag> key=value key=v1,v2,... ...
//! ```
//!
//! Floats are encoded as their IEEE-754 bit patterns in hex, so a
//! round-trip is **bit-exact** — a restored model scores bit-identically
//! to the original, the same contract the batch-scoring pipeline holds.
//!
//! Two persistence strategies coexist in the workspace:
//!
//! * **Weight-level** (this module): models whose fitted state is a
//!   small flat parameter set export it directly via
//!   [`Classifier::export_params`] and restore via [`import_params`].
//!   Currently: logistic regression, Gaussian NB, and the constant /
//!   random dummies. Tree ensembles, kNN, and the MLP return `None`.
//! * **Refit snapshots** (`lts_core::warm::ModelSnapshot`): *every*
//!   family is reproducible from `(spec, seed, training set)` because
//!   each `fit` re-seeds deterministically; the serving layer's model
//!   store persists that triple and uses weight-level export only as an
//!   inspection/debug surface.

use crate::classifier::Classifier;
use crate::dummy::{ConstantScore, RandomScores};
use crate::error::{LearnError, LearnResult};
use crate::linear::Logistic;
use crate::nb::GaussianNb;

/// Magic prefix of every exported parameter string.
pub const MAGIC: &str = "lts-model/v1";

/// Encode one float as its bit pattern (16 hex digits).
pub(crate) fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Encode a float slice as comma-separated bit patterns.
pub(crate) fn enc_f64s(vs: &[f64]) -> String {
    vs.iter().map(|&v| enc_f64(v)).collect::<Vec<_>>().join(",")
}

pub(crate) fn dec_f64(s: &str) -> LearnResult<f64> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| persist_err(format!("bad f64 bit pattern `{s}`")))
}

pub(crate) fn dec_f64s(s: &str) -> LearnResult<Vec<f64>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(dec_f64).collect()
}

pub(crate) fn persist_err(message: String) -> LearnError {
    LearnError::Persist { message }
}

/// Per-class GNB moments `(log_prior, means, vars)`, absent when the
/// class never appeared in training.
type GnbClassParams = Option<(f64, Vec<f64>, Vec<f64>)>;

/// Split an exported string into `(tag, key → value)` pairs.
fn parse_fields(text: &str) -> LearnResult<(String, Vec<(String, String)>)> {
    let mut parts = text.split_whitespace();
    match parts.next() {
        Some(m) if m == MAGIC => {}
        other => {
            return Err(persist_err(format!(
                "expected `{MAGIC}` header, found {other:?}"
            )))
        }
    }
    let tag = parts
        .next()
        .ok_or_else(|| persist_err("missing model tag".into()))?
        .to_string();
    let mut fields = Vec::new();
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| persist_err(format!("malformed field `{kv}`")))?;
        fields.push((k.to_string(), v.to_string()));
    }
    Ok((tag, fields))
}

fn get<'a>(fields: &'a [(String, String)], key: &str) -> LearnResult<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| persist_err(format!("missing field `{key}`")))
}

/// Restore a classifier from a string produced by
/// [`Classifier::export_params`]. The restored model scores
/// **bit-identically** to the exporter.
///
/// # Errors
///
/// Returns [`LearnError::Persist`] for unknown tags or malformed
/// payloads.
pub fn import_params(text: &str) -> LearnResult<Box<dyn Classifier>> {
    let (tag, fields) = parse_fields(text)?;
    match tag.as_str() {
        "logit" => {
            let weights = dec_f64s(get(&fields, "weights")?)?;
            let bias = dec_f64(get(&fields, "bias")?)?;
            let means = dec_f64s(get(&fields, "means")?)?;
            let stds = dec_f64s(get(&fields, "stds")?)?;
            if means.len() != stds.len() || means.len() != weights.len() {
                return Err(persist_err(format!(
                    "inconsistent logit dims: {} weights, {} means, {} stds",
                    weights.len(),
                    means.len(),
                    stds.len()
                )));
            }
            Ok(Box::new(Logistic::restore(weights, bias, means, stds)))
        }
        "gnb" => {
            let dims: usize = get(&fields, "dims")?
                .parse()
                .map_err(|_| persist_err("bad gnb dims".into()))?;
            let class = |key: &str| -> LearnResult<GnbClassParams> {
                let v = get(&fields, key)?;
                if v == "none" {
                    return Ok(None);
                }
                let mut parts = v.split(';');
                let (lp, means, vars) = (
                    parts
                        .next()
                        .ok_or_else(|| persist_err(format!("bad gnb `{key}`")))?,
                    parts
                        .next()
                        .ok_or_else(|| persist_err(format!("bad gnb `{key}`")))?,
                    parts
                        .next()
                        .ok_or_else(|| persist_err(format!("bad gnb `{key}`")))?,
                );
                let (means, vars) = (dec_f64s(means)?, dec_f64s(vars)?);
                if means.len() != dims || vars.len() != dims {
                    return Err(persist_err(format!(
                        "gnb `{key}` moment length mismatches dims={dims}"
                    )));
                }
                Ok(Some((dec_f64(lp)?, means, vars)))
            };
            Ok(Box::new(GaussianNb::restore(
                dims,
                class("pos")?,
                class("neg")?,
            )))
        }
        "const" => Ok(Box::new(ConstantScore::new(dec_f64(get(
            &fields, "value",
        )?)?))),
        "random" => {
            let seed: u64 = get(&fields, "seed")?
                .parse()
                .map_err(|_| persist_err("bad random seed".into()))?;
            Ok(Box::new(RandomScores::restore(seed)))
        }
        other => Err(persist_err(format!(
            "unknown model tag `{other}` (weight-level persistence covers \
             logit/gnb/const/random; use a refit snapshot for the rest)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn training() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![f64::from(i), f64::from(i % 7) * 0.3])
            .collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 18).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn assert_roundtrip(model: &dyn Classifier) {
        let text = model
            .export_params()
            .expect("model should export parameters");
        assert!(text.starts_with(MAGIC));
        let restored = import_params(&text).unwrap();
        let (x, _) = training();
        let a = model.score_batch(&x).unwrap();
        let b = restored.score_batch(&x).unwrap();
        assert!(
            a.iter().zip(&b).all(|(p, q)| p.to_bits() == q.to_bits()),
            "{}: restored scores must be bit-identical",
            model.name()
        );
    }

    #[test]
    fn logistic_roundtrips_bit_exact() {
        let (x, y) = training();
        let mut m = Logistic::default();
        assert!(m.export_params().is_none(), "unfitted exports nothing");
        m.fit(&x, &y).unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn gaussian_nb_roundtrips_bit_exact() {
        let (x, y) = training();
        let mut m = GaussianNb::default();
        m.fit(&x, &y).unwrap();
        assert_roundtrip(&m);
        // Single-class fit (pos only) still round-trips.
        let ones = vec![true; y.len()];
        m.fit(&x, &ones).unwrap();
        assert_roundtrip(&m);
    }

    #[test]
    fn dummies_roundtrip() {
        assert_roundtrip(&ConstantScore::new(0.375));
        let (x, y) = training();
        let mut r = RandomScores::new(99);
        r.fit(&x, &y).unwrap();
        assert_roundtrip(&r);
    }

    #[test]
    fn unsupported_families_decline_politely() {
        let (x, y) = training();
        let mut knn = crate::knn::Knn::new(3).unwrap();
        knn.fit(&x, &y).unwrap();
        assert!(knn.export_params().is_none());
        let mut forest = crate::forest::RandomForest::with_trees(3, 1);
        forest.fit(&x, &y).unwrap();
        assert!(forest.export_params().is_none());
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_params("not a model").is_err());
        assert!(import_params(&format!("{MAGIC} nope a=b")).is_err());
        assert!(import_params(&format!("{MAGIC} logit bias=zz")).is_err());
        assert!(import_params(&format!(
            "{MAGIC} logit bias={} weights={} means= stds=",
            enc_f64(0.0),
            enc_f64(1.0)
        ))
        .is_err());
        // NaN/∞ survive the bit-pattern encoding.
        assert_eq!(
            dec_f64(&enc_f64(f64::NAN)).unwrap().to_bits(),
            f64::NAN.to_bits()
        );
        assert_eq!(dec_f64(&enc_f64(f64::INFINITY)).unwrap(), f64::INFINITY);
    }
}
