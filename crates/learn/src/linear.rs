//! Logistic regression (gradient descent, L2-regularized).
//!
//! Not in the paper's classifier lineup, but a useful calibrated
//! baseline for the classifier-quality experiments (Figures 6–7) —
//! it sits between the random forest and the dummy Random classifier in
//! expressive power.

use crate::classifier::{validate_training, Classifier};
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use crate::scaler::StandardScaler;
use serde::{Deserialize, Serialize};

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            iterations: 400,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// A fitted logistic-regression classifier.
#[derive(Debug, Clone, Default)]
pub struct Logistic {
    config: LogisticConfig,
    scaler: Option<StandardScaler>,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl Logistic {
    /// Create an unfitted model.
    pub fn new(config: LogisticConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The fitted coefficient vector (standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rebuild a fitted model from persisted parameters (the
    /// [`crate::persist`] import path).
    pub(crate) fn restore(weights: Vec<f64>, bias: f64, means: Vec<f64>, stds: Vec<f64>) -> Self {
        Self {
            config: LogisticConfig::default(),
            scaler: Some(crate::scaler::StandardScaler::restore(means, stds)),
            weights,
            bias,
            fitted: true,
        }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for Logistic {
    fn fit(&mut self, x: &Matrix, y: &[bool]) -> LearnResult<()> {
        validate_training(x, y)?;
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x)?;
        let (n, d) = (xs.rows(), xs.cols());
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let lr = self.config.learning_rate;
        for _ in 0..self.config.iterations {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (i, row) in xs.iter_rows().enumerate() {
                let z = b + w.iter().zip(row).map(|(&wv, &xv)| wv * xv).sum::<f64>();
                let err = sigmoid(z) - if y[i] { 1.0 } else { 0.0 };
                for (g, &xv) in gw.iter_mut().zip(row) {
                    *g += err * xv;
                }
                gb += err;
            }
            let scale = 1.0 / n as f64;
            for (wv, g) in w.iter_mut().zip(&gw) {
                *wv -= lr * (g * scale + self.config.l2 * *wv);
            }
            b -= lr * gb * scale;
        }
        self.weights = w;
        self.bias = b;
        self.scaler = Some(scaler);
        self.fitted = true;
        Ok(())
    }

    fn export_params(&self) -> Option<String> {
        let scaler = self.scaler.as_ref()?;
        if !self.fitted {
            return None;
        }
        let (means, stds) = scaler.params();
        Some(format!(
            "{} logit bias={} weights={} means={} stds={}",
            crate::persist::MAGIC,
            crate::persist::enc_f64(self.bias),
            crate::persist::enc_f64s(&self.weights),
            crate::persist::enc_f64s(means),
            crate::persist::enc_f64s(stds),
        ))
    }

    fn score(&self, row: &[f64]) -> LearnResult<f64> {
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(LearnError::NotFitted)?;
        let xs = scaler.transform_row(row)?;
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(&xs)
                .map(|(&w, &x)| w * x)
                .sum::<f64>();
        Ok(sigmoid(z))
    }

    /// Vectorized batch scoring: one pass over the row-major buffer
    /// with scaling fused into the dot product — per row, the exact
    /// per-element operations of `transform_row` + dot + sigmoid, so
    /// results are bit-identical to the per-row path.
    fn score_batch(&self, x: &Matrix) -> LearnResult<Vec<f64>> {
        if x.is_empty() {
            return Ok(Vec::new());
        }
        if !self.fitted {
            return Err(LearnError::NotFitted);
        }
        let scaler = self.scaler.as_ref().ok_or(LearnError::NotFitted)?;
        if x.cols() != scaler.dims() {
            return Err(LearnError::DimensionMismatch {
                expected: scaler.dims(),
                found: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        let mut xs = Vec::with_capacity(x.cols());
        for row in x.iter_rows() {
            scaler.transform_row_into(row, &mut xs)?;
            let z = self
                .weights
                .iter()
                .zip(&xs)
                .map(|(&w, &x)| w * x)
                .sum::<f64>();
            out.push(sigmoid(self.bias + z));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "logit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Matrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![f64::from(i) / 10.0, f64::from(i % 10)])
            .collect();
        let y: Vec<bool> = rows.iter().map(|r| r[0] > 5.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_separable_data() {
        let (x, y) = separable();
        let mut m = Logistic::default();
        m.fit(&x, &y).unwrap();
        let mut correct = 0;
        for (i, row) in x.iter_rows().enumerate() {
            if m.predict(row).unwrap() == y[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / y.len() as f64 > 0.95);
        // The informative feature should carry the weight.
        assert!(m.weights()[0].abs() > m.weights()[1].abs());
    }

    #[test]
    fn scores_monotone_along_informative_axis() {
        let (x, y) = separable();
        let mut m = Logistic::default();
        m.fit(&x, &y).unwrap();
        let lo = m.score(&[1.0, 5.0]).unwrap();
        let hi = m.score(&[9.0, 5.0]).unwrap();
        assert!(hi > lo);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn errors() {
        let m = Logistic::default();
        assert!(matches!(m.score(&[0.0]), Err(LearnError::NotFitted)));
        let mut m = Logistic::default();
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        m.fit(&x, &[true]).unwrap();
        assert!(m.score(&[1.0]).is_err());
        assert_eq!(m.name(), "logit");
    }
}
