//! Uncertainty-sampling active learning (paper §3.2).
//!
//! Given a trained scoring function `g`, the next objects to label are
//! those with the smallest `|g(o) − 0.5|` ("closest to the toss-up").
//! As the paper recommends, candidates are drawn from a random pool
//! rather than scoring the entire population, and a **single**
//! augment-and-retrain step is the practical default.

use crate::classifier::Classifier;
use crate::error::{LearnError, LearnResult};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for one uncertainty-sampling augmentation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Number of augmentation steps (paper recommends 1).
    pub steps: usize,
    /// Objects labeled per step (Figure 1 uses 100).
    pub per_step: usize,
    /// Random pool size scored per step; `0` means "score the whole
    /// remaining pool".
    pub pool_size: usize,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            steps: 1,
            per_step: 100,
            pool_size: 2000,
        }
    }
}

/// Select the `count` most uncertain candidates (smallest `|g − 0.5|`)
/// from `candidates`, scoring each with `model` on its feature row in
/// `features`.
///
/// Returns the selected candidate indices (into the same space as
/// `candidates` values).
///
/// # Errors
///
/// Propagates scoring errors.
pub fn select_uncertain(
    model: &dyn Classifier,
    features: &Matrix,
    candidates: &[usize],
    count: usize,
) -> LearnResult<Vec<usize>> {
    // One vectorized batch score over the gathered candidate rows
    // (bit-identical to scoring each row individually).
    let scores = model.score_batch(&features.gather(candidates))?;
    let mut scored: Vec<(f64, usize)> = scores
        .into_iter()
        .zip(candidates.iter().copied())
        .map(|(g, i)| ((g - 0.5).abs(), i))
        .collect();
    let take = count.min(scored.len());
    if take == 0 {
        return Ok(Vec::new());
    }
    scored.select_nth_unstable_by(take - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(take);
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    Ok(scored.into_iter().map(|(_, i)| i).collect())
}

/// Draw a pool of unlabeled candidates, pick the most uncertain, label
/// them with `label_fn`, and retrain — repeated `config.steps` times.
///
/// `labeled` holds indices already labeled (they are excluded from the
/// pool and extended in place with the new picks). `labels` is extended
/// in lockstep. Returns the number of labels spent.
///
/// # Errors
///
/// Propagates classifier and labeling errors.
#[allow(clippy::too_many_arguments)]
pub fn augment_training<R, F>(
    rng: &mut R,
    model: &mut dyn Classifier,
    features: &Matrix,
    labeled: &mut Vec<usize>,
    labels: &mut Vec<bool>,
    config: AugmentConfig,
    mut label_fn: F,
) -> LearnResult<usize>
where
    R: Rng + ?Sized,
    F: FnMut(usize) -> LearnResult<bool>,
{
    if labeled.len() != labels.len() {
        return Err(LearnError::LengthMismatch {
            rows: labeled.len(),
            labels: labels.len(),
        });
    }
    let n = features.rows();
    let mut spent = 0usize;
    for _ in 0..config.steps {
        // Build the unlabeled pool.
        let mut in_labeled = vec![false; n];
        for &i in labeled.iter() {
            in_labeled[i] = true;
        }
        let mut pool: Vec<usize> = (0..n).filter(|&i| !in_labeled[i]).collect();
        if pool.is_empty() {
            break;
        }
        // Subsample the pool (paper: "a large enough number of objects").
        if config.pool_size > 0 && pool.len() > config.pool_size {
            // Partial Fisher–Yates.
            for i in 0..config.pool_size {
                let j = rng.random_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(config.pool_size);
        }
        let picks = select_uncertain(model, features, &pool, config.per_step)?;
        if picks.is_empty() {
            break;
        }
        for &i in &picks {
            labeled.push(i);
            labels.push(label_fn(i)?);
            spent += 1;
        }
        // Retrain on the augmented training set.
        let x = features.gather(labeled);
        model.fit(&x, labels)?;
    }
    Ok(spent)
}

// `Rng::random_range` comes from `RngExt` in rand 0.10.
use rand::RngExt as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Knn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_features(n: usize) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|i| vec![i as f64 / n as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn selects_scores_nearest_half() {
        // Model = identity-ish: use a Knn fitted so scores increase along
        // the line; the most uncertain points sit near the boundary.
        let features = line_features(100);
        let truth = |i: usize| i >= 50;
        let mut model = Knn::new(5).unwrap();
        let labeled: Vec<usize> = (0..100).step_by(10).collect();
        let labels: Vec<bool> = labeled.iter().map(|&i| truth(i)).collect();
        model.fit(&features.gather(&labeled), &labels).unwrap();
        let candidates: Vec<usize> = (0..100).collect();
        let picks = select_uncertain(&model, &features, &candidates, 10).unwrap();
        // Picks should cluster near the decision boundary at 50.
        let near = picks.iter().filter(|&&i| (30..70).contains(&i)).count();
        assert!(near >= 7, "picks {picks:?} not near boundary");
    }

    #[test]
    fn augmentation_improves_boundary_accuracy() {
        // Reproduces Figure 1's mechanism on a 1-d problem.
        let features = line_features(400);
        let truth = |i: usize| i >= 200;
        let mut model = Knn::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut labeled: Vec<usize> = (0..400).step_by(40).collect(); // coarse init
        let mut labels: Vec<bool> = labeled.iter().map(|&i| truth(i)).collect();
        model.fit(&features.gather(&labeled), &labels).unwrap();
        let boundary_err_before: usize = (180..220)
            .filter(|&i| model.predict(features.row(i)).unwrap() != truth(i))
            .count();
        let spent = augment_training(
            &mut rng,
            &mut model,
            &features,
            &mut labeled,
            &mut labels,
            AugmentConfig {
                steps: 2,
                per_step: 20,
                pool_size: 0,
            },
            |i| Ok(truth(i)),
        )
        .unwrap();
        assert_eq!(spent, 40);
        let boundary_err_after: usize = (180..220)
            .filter(|&i| model.predict(features.row(i)).unwrap() != truth(i))
            .count();
        assert!(
            boundary_err_after <= boundary_err_before,
            "boundary errors {boundary_err_before} -> {boundary_err_after}"
        );
    }

    #[test]
    fn pool_exhaustion_stops_gracefully() {
        let features = line_features(10);
        let mut model = Knn::new(3).unwrap();
        let mut labeled: Vec<usize> = (0..10).collect(); // everything labeled
        let mut labels: Vec<bool> = (0..10).map(|i| i >= 5).collect();
        model.fit(&features.gather(&labeled), &labels).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let spent = augment_training(
            &mut rng,
            &mut model,
            &features,
            &mut labeled,
            &mut labels,
            AugmentConfig::default(),
            |_| Ok(true),
        )
        .unwrap();
        assert_eq!(spent, 0);
    }

    #[test]
    fn mismatched_bookkeeping_rejected() {
        let features = line_features(10);
        let mut model = Knn::new(3).unwrap();
        let mut labeled = vec![0usize, 1];
        let mut labels = vec![true];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(augment_training(
            &mut rng,
            &mut model,
            &features,
            &mut labeled,
            &mut labels,
            AugmentConfig::default(),
            |_| Ok(true),
        )
        .is_err());
    }

    #[test]
    fn select_uncertain_empty_and_zero() {
        let features = line_features(10);
        let mut model = Knn::new(3).unwrap();
        model
            .fit(&features.gather(&[0, 9]), &[false, true])
            .unwrap();
        assert!(select_uncertain(&model, &features, &[], 5)
            .unwrap()
            .is_empty());
        assert!(select_uncertain(&model, &features, &[1, 2], 0)
            .unwrap()
            .is_empty());
    }
}
