//! Allocation audit for the scenario construction paths.
//!
//! The scenario constructors are the table-construction path behind
//! every benchmark and behind `lts-serve`'s `register` command, so a
//! reintroduced full-column copy there taxes every cold start. This
//! test pins the number of **column-sized** heap allocations made while
//! building each scenario, via a counting global allocator: any change
//! that clones a whole column (or a whole per-row work vector) bumps
//! the count by at least one and trips the ceiling.
//!
//! The ceilings are intentionally tight — they sit just above the
//! audited allocation inventory (generator columns, calibration work
//! vectors, predicate captures, the feature matrix) and below
//! "inventory + one more full-column copy".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations of at least `THRESHOLD` bytes; `usize::MAX`
/// disarms it outside the measured section.
struct CountingAlloc;

static THRESHOLD: AtomicUsize = AtomicUsize::new(usize::MAX);
static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

impl CountingAlloc {
    fn record(size: usize) {
        if size >= THRESHOLD.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc that crosses the threshold is a fresh
        // column-sized allocation as far as the audit is concerned.
        if new_size >= layout.size() {
            Self::record(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f`, counting heap allocations of `threshold` bytes or more.
fn count_large<T>(threshold: usize, f: impl FnOnce() -> T) -> (T, usize) {
    LARGE_ALLOCS.store(0, Ordering::SeqCst);
    THRESHOLD.store(threshold, Ordering::SeqCst);
    let out = f();
    THRESHOLD.store(usize::MAX, Ordering::SeqCst);
    (out, LARGE_ALLOCS.load(Ordering::SeqCst))
}

const ROWS: usize = 4096;

// One column (or per-row work vector) is ≥ rows × 8 bytes; anything
// smaller is bookkeeping noise the audit ignores.
const COLUMN_BYTES: usize = ROWS * 8;

// lts-data is rayon-free and its generators are seeded, so the
// allocation stream of a scenario build is deterministic; the single
// #[test] below keeps the harness from running anything concurrently.
#[test]
fn scenario_construction_makes_no_surplus_column_copies() {
    let (sports, sports_allocs) = count_large(COLUMN_BYTES, || {
        lts_data::sports_scenario(ROWS, lts_data::SelectivityLevel::M, 7).unwrap()
    });
    assert_eq!(sports.table.len(), ROWS);

    let (neighbors, neighbors_allocs) = count_large(COLUMN_BYTES, || {
        lts_data::neighbors_scenario(ROWS, lts_data::SelectivityLevel::M, 7).unwrap()
    });
    assert_eq!(neighbors.table.len(), ROWS);

    // Inventory (sports): 9 generator columns + dominator-count
    // structures (y-rank copy, duplicate map, sweep order, counts) +
    // 2 predicate captures + 2 feature-column materializations +
    // the row-major feature matrix = 20 measured. The pre-audit path
    // made 3 more (2 calibration column copies + 1 sort copy), so the
    // ceiling is exact: one new copy trips it.
    assert!(
        sports_allocs <= 20,
        "sports scenario made {sports_allocs} column-sized allocations — \
         a full-column copy crept back into the construction path"
    );

    // Inventory (neighbors): 41 feature columns + labels + kNN-radius
    // work + grid index + 2 predicate captures + features = 54
    // measured. The pre-audit path made 4 more (2 informative-column
    // clones + 2 calibration column copies); exact ceiling again.
    assert!(
        neighbors_allocs <= 54,
        "neighbors scenario made {neighbors_allocs} column-sized allocations — \
         a full-column copy crept back into the construction path"
    );
}
