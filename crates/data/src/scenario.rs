//! Scenario assembly: the paper's Table-1 grid of dataset × selectivity.
//!
//! A [`Scenario`] bundles a generated dataset, a calibrated query
//! parameter (`k` for the skyband, `d` for few-neighbors), the exact
//! ground-truth count, and a ready-to-run [`CountingProblem`].
//! Calibration inverts the exact selectivity curves — dominator-count
//! quantiles for the skyband, (k+1)-NN-radius quantiles for
//! few-neighbors — so hitting a target like "XS ≈ 1%" is exact, not
//! search-based.

use crate::neighborhood::{knn_radii, neighbors_fast_predicate, neighbors_sql_predicate};
use crate::neighbors::{neighbors_table, NeighborsConfig};
use crate::skyband::{dominator_counts, skyband_fast_predicate, skyband_sql_predicate};
use crate::sports::{sports_table, SportsConfig};
use lts_core::{CoreResult, CountingProblem};
use lts_table::{ObjectPredicate, Table};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The two evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MLB-pitching-like; k-skyband query (paper "Type 1 - Sports").
    Sports,
    /// KDD-99-like; few-neighbors query (paper "Type 2 - Neighbors").
    Neighbors,
}

impl DatasetKind {
    /// Display name matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Sports => "Sports",
            DatasetKind::Neighbors => "Neighbors",
        }
    }
}

/// The paper's six selectivity settings (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectivityLevel {
    /// ≈ 1–2% of objects qualify.
    XS,
    /// ≈ 10%.
    S,
    /// ≈ 25–29%.
    M,
    /// ≈ 40–50%.
    L,
    /// ≈ 70–75%.
    XL,
    /// ≈ 87–90%.
    XXL,
}

impl SelectivityLevel {
    /// All levels in Table-1 order.
    pub const ALL: [SelectivityLevel; 6] = [
        SelectivityLevel::XS,
        SelectivityLevel::S,
        SelectivityLevel::M,
        SelectivityLevel::L,
        SelectivityLevel::XL,
        SelectivityLevel::XXL,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SelectivityLevel::XS => "XS",
            SelectivityLevel::S => "S",
            SelectivityLevel::M => "M",
            SelectivityLevel::L => "L",
            SelectivityLevel::XL => "XL",
            SelectivityLevel::XXL => "XXL",
        }
    }

    /// Target selectivity for a dataset (Table 1's percentages).
    pub fn target(&self, dataset: DatasetKind) -> f64 {
        match (dataset, self) {
            (DatasetKind::Sports, SelectivityLevel::XS) => 0.01,
            (DatasetKind::Sports, SelectivityLevel::S) => 0.10,
            (DatasetKind::Sports, SelectivityLevel::M) => 0.29,
            (DatasetKind::Sports, SelectivityLevel::L) => 0.50,
            (DatasetKind::Sports, SelectivityLevel::XL) => 0.70,
            (DatasetKind::Sports, SelectivityLevel::XXL) => 0.90,
            (DatasetKind::Neighbors, SelectivityLevel::XS) => 0.02,
            (DatasetKind::Neighbors, SelectivityLevel::S) => 0.10,
            (DatasetKind::Neighbors, SelectivityLevel::M) => 0.25,
            (DatasetKind::Neighbors, SelectivityLevel::L) => 0.40,
            (DatasetKind::Neighbors, SelectivityLevel::XL) => 0.75,
            (DatasetKind::Neighbors, SelectivityLevel::XXL) => 0.87,
        }
    }
}

/// The calibrated query parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryParam {
    /// Skyband threshold `k` ("dominated by fewer than k").
    K(usize),
    /// Neighbor radius `d` (with the fixed neighbour cap below).
    D(f64),
}

/// Fixed neighbour cap `k` for the few-neighbors query (the paper tunes
/// `d` to control selectivity; the cap stays constant).
pub const NEIGHBORS_K: usize = 10;

/// A fully assembled experimental scenario.
pub struct Scenario {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Selectivity level.
    pub level: SelectivityLevel,
    /// The calibrated query parameter.
    pub param: QueryParam,
    /// Exact ground-truth count.
    pub truth: usize,
    /// Achieved selectivity (`truth / N`).
    pub selectivity: f64,
    /// Ready-to-run problem using the fast (compiled) predicate.
    pub problem: CountingProblem,
    /// The shared object table.
    pub table: Arc<Table>,
}

impl Scenario {
    /// The same problem with the faithful SQL-expression predicate
    /// (nested-loop evaluation; orders of magnitude more expensive per
    /// label — used by the Figure-3 overhead experiment).
    ///
    /// # Errors
    ///
    /// Propagates problem construction errors.
    pub fn sql_problem(&self) -> CoreResult<CountingProblem> {
        let (x_col, y_col) = self.query_columns();
        let predicate: Arc<dyn ObjectPredicate> = match self.param {
            QueryParam::K(k) => Arc::new(skyband_sql_predicate(
                Arc::clone(&self.table),
                x_col,
                y_col,
                k as i64,
            )),
            QueryParam::D(d) => Arc::new(neighbors_sql_predicate(
                Arc::clone(&self.table),
                x_col,
                y_col,
                d,
                NEIGHBORS_K as i64,
            )),
        };
        CountingProblem::new(Arc::clone(&self.table), predicate, &[x_col, y_col])
    }

    /// The two attribute columns the query references (also the feature
    /// columns).
    pub fn query_columns(&self) -> (&'static str, &'static str) {
        match self.dataset {
            DatasetKind::Sports => ("strikeouts", "wins"),
            DatasetKind::Neighbors => ("src_rate", "dst_rate"),
        }
    }

    /// Scenario descriptor like `Sports/M (k=87, truth=13744, 29.2%)`.
    pub fn describe(&self) -> String {
        let param = match self.param {
            QueryParam::K(k) => format!("k={k}"),
            QueryParam::D(d) => format!("d={d:.4}"),
        };
        format!(
            "{}/{} ({param}, truth={}, {:.1}%)",
            self.dataset.label(),
            self.level.label(),
            self.truth,
            self.selectivity * 100.0
        )
    }
}

/// Build the Sports scenario: generate the table, calibrate `k` to the
/// level's target selectivity via the exact dominator-count
/// distribution, and assemble the problem.
///
/// # Errors
///
/// Propagates generation or problem-construction errors.
pub fn sports_scenario(rows: usize, level: SelectivityLevel, seed: u64) -> CoreResult<Scenario> {
    let table = Arc::new(sports_table(&SportsConfig { rows, seed })?);
    let xs = table.floats("strikeouts")?;
    let ys = table.floats("wins")?;

    // Selectivity(k) = #{dom(i) < k} / N — calibrate k by quantile.
    // Both uses of `dom` below are order-insensitive (an order statistic
    // and a permutation-invariant count), so sort in place — no copy.
    let mut dom = dominator_counts(xs, ys);
    let target = level.target(DatasetKind::Sports);
    dom.sort_unstable();
    let want = ((rows as f64 * target).round() as usize).clamp(1, rows);
    // Smallest k with at least `want` qualifying points: k = dom value at
    // the want-th order statistic + 1.
    let k = dom[want - 1] + 1;
    let truth = dom.iter().filter(|&&c| c < k).count();

    let predicate: Arc<dyn ObjectPredicate> = Arc::new(skyband_fast_predicate(
        &table,
        "strikeouts",
        "wins",
        k as i64,
    )?);
    let problem = CountingProblem::new(Arc::clone(&table), predicate, &["strikeouts", "wins"])?;
    Ok(Scenario {
        dataset: DatasetKind::Sports,
        level,
        param: QueryParam::K(k),
        truth,
        selectivity: truth as f64 / rows as f64,
        problem,
        table,
    })
}

/// Build the Neighbors scenario: generate the table, calibrate the
/// radius `d` to the level's target selectivity via the exact
/// (k+1)-NN-radius distribution, and assemble the problem.
///
/// # Errors
///
/// Propagates generation or problem-construction errors.
pub fn neighbors_scenario(rows: usize, level: SelectivityLevel, seed: u64) -> CoreResult<Scenario> {
    let table = Arc::new(neighbors_table(&NeighborsConfig {
        rows,
        features: 41,
        seed,
    })?);
    let xs = table.floats("src_rate")?;
    let ys = table.floats("dst_rate")?;

    // Selectivity(d) = #{radius_i > d} / N (decreasing in d): pick d as
    // the (1 − target) quantile of the radii.
    let mut radii = knn_radii(xs, ys, NEIGHBORS_K);
    let target = level.target(DatasetKind::Neighbors);
    radii.sort_by(f64::total_cmp);
    let idx = (((1.0 - target) * rows as f64).round() as usize).min(rows - 1);
    // Nudge just below the boundary radius so the boundary point counts.
    let d = radii[idx] * (1.0 - 1e-12);
    let truth = radii.iter().filter(|&&r| r > d).count();

    let predicate: Arc<dyn ObjectPredicate> = Arc::new(neighbors_fast_predicate(
        &table,
        "src_rate",
        "dst_rate",
        d,
        NEIGHBORS_K as i64,
    )?);
    let problem = CountingProblem::new(Arc::clone(&table), predicate, &["src_rate", "dst_rate"])?;
    Ok(Scenario {
        dataset: DatasetKind::Neighbors,
        level,
        param: QueryParam::D(d),
        truth,
        selectivity: truth as f64 / rows as f64,
        problem,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sports_calibration_hits_targets() {
        for level in SelectivityLevel::ALL {
            let sc = sports_scenario(4000, level, 5).unwrap();
            let target = level.target(DatasetKind::Sports);
            // Dominator counts are discrete: allow slack, tighter for
            // mid-range levels.
            let slack = (target * 0.5).max(0.04);
            assert!(
                (sc.selectivity - target).abs() <= slack,
                "{}: got {:.3}, want {target}",
                sc.describe(),
                sc.selectivity
            );
            assert_eq!(sc.truth, sc.problem.exact_count().unwrap());
        }
    }

    #[test]
    fn neighbors_calibration_hits_targets() {
        for level in SelectivityLevel::ALL {
            let sc = neighbors_scenario(3000, level, 5).unwrap();
            let target = level.target(DatasetKind::Neighbors);
            assert!(
                (sc.selectivity - target).abs() <= 0.02,
                "{}: got {:.3}, want {target}",
                sc.describe(),
                sc.selectivity
            );
            assert_eq!(sc.truth, sc.problem.exact_count().unwrap());
        }
    }

    #[test]
    fn sql_problem_agrees_with_fast_problem() {
        let sc = sports_scenario(400, SelectivityLevel::M, 9).unwrap();
        let sql = sc.sql_problem().unwrap();
        assert_eq!(sql.exact_count().unwrap(), sc.truth);
        let sc = neighbors_scenario(300, SelectivityLevel::S, 9).unwrap();
        let sql = sc.sql_problem().unwrap();
        assert_eq!(sql.exact_count().unwrap(), sc.truth);
    }

    #[test]
    fn describe_is_informative() {
        let sc = sports_scenario(500, SelectivityLevel::XS, 1).unwrap();
        let d = sc.describe();
        assert!(d.contains("Sports/XS"));
        assert!(d.contains("k="));
        assert!(d.contains("truth="));
    }
}
