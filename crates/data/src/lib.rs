//! Datasets and queries for reproducing the paper's evaluation (§5).
//!
//! The paper uses two real datasets we cannot redistribute, so this
//! crate generates **synthetic equivalents** whose joint distributions
//! exercise the same code paths (see ARCHITECTURE.md "Synthetic datasets" for the substitution
//! rationale):
//!
//! * [`sports`] — MLB-pitching-like player-season statistics (~47k rows
//!   at paper scale). Query: **k-skyband size** over two performance
//!   attributes (Example 2).
//! * [`neighbors`] — KDD-Cup-99-like connection records (73k rows at
//!   paper scale, 41 features). Query: **few-neighbors count** — records
//!   with at most `k` records within distance `d` (Example 1).
//!
//! For each query we provide the expensive predicate in two equivalent
//! forms — a nested-loop SQL expression over the table engine (the
//! faithful "no better plan" path) and a compiled closure with early
//! exit (for experiment throughput) — plus **exact ground-truth
//! algorithms** ([`skyband`]: Fenwick dominance sweep; [`neighborhood`]:
//! kd-tree (k+1)-NN radii) used for calibration and error measurement.
//!
//! [`scenario`] assembles everything into the paper's Table-1 grid:
//! selectivity levels XS…XXL with calibrated query parameters.

#![warn(missing_docs)]

pub mod gen;
pub mod neighborhood;
pub mod neighbors;
pub mod scaled;
pub mod scenario;
pub mod skyband;
pub mod sports;

pub use scaled::{scaled_scenario, ScaledTier, SCALED_BASE_ROWS};
pub use scenario::{
    neighbors_scenario, sports_scenario, DatasetKind, QueryParam, Scenario, SelectivityLevel,
};
