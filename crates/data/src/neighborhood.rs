//! The few-neighbors query (paper Example 1).
//!
//! `q(o)` holds when at most `k` records lie within Euclidean distance
//! `d` of `o` in the informative 2-d space (counts include the record
//! itself, matching the paper's self-join SQL). Forms:
//!
//! * [`neighbors_sql_predicate`] — the paper's
//!   `SQRT(POWER(o.x−x,2)+POWER(o.y−y,2)) <= d … COUNT(*) <= k`
//!   correlated subquery (row-wise `eval` is the faithful interpreted
//!   nested loop; batched `eval_batch` runs one *vectorized* inner scan
//!   per object through `lts_table::vector`);
//! * [`neighbors_fast_predicate`] — grid-accelerated count with early
//!   exit past `k` (semantically identical).
//!
//! Ground truth and calibration use [`knn_radii`]: the distance to each
//! record's `(k+1)`-th nearest neighbour (self included); a record
//! qualifies at radius `d` iff that distance exceeds `d`, so the exact
//! selectivity curve in `d` is just the empirical distribution of radii.

use lts_learn::kdtree::KdTree;
use lts_learn::Matrix;
use lts_table::{AggThresholdPredicate, CmpOp, Expr, FnPredicate, GridIndex, Table, TableResult};
use std::sync::Arc;

/// Distance to the `(k+1)`-th nearest neighbour (self included) for
/// every point — the radius at which the point stops qualifying.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or are empty.
pub fn knn_radii(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "coordinate slices must align");
    assert!(!xs.is_empty(), "need at least one point");
    let rows: Vec<Vec<f64>> = xs.iter().zip(ys).map(|(&x, &y)| vec![x, y]).collect();
    let matrix = Matrix::from_rows(&rows).expect("rectangular rows");
    let tree = KdTree::build(matrix);
    let want = (k + 1).min(xs.len());
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let nn = tree.knn(&[x, y], want);
            // If the population is smaller than k+1 the point always
            // qualifies; represent that as an infinite radius.
            if nn.len() < k + 1 {
                f64::INFINITY
            } else {
                nn.last().expect("non-empty").1.sqrt()
            }
        })
        .collect()
}

/// Exact count of records with at most `k` neighbours (self included
/// in the distance count ⇒ at most `k + 1` points within `d`).
///
/// Matches the SQL predicate `COUNT(*) <= k` where the self-join pairs
/// each record with itself too; i.e. a record qualifies iff
/// `#{j : dist(i, j) <= d} <= k`.
pub fn exact_neighbors_count(xs: &[f64], ys: &[f64], d: f64, k: usize) -> usize {
    if k == 0 {
        // Even the record itself violates COUNT(*) <= 0.
        return 0;
    }
    // #within(d) <= k  ⟺  the (k+1)-th nearest (self included) is
    // farther than d.
    knn_radii(xs, ys, k).iter().filter(|&&r| r > d).count()
}

/// The paper's SQL-form predicate (Example 1 / §2):
///
/// ```sql
/// (SELECT COUNT(*) FROM D
///   WHERE SQRT(POWER(o.x−x, 2) + POWER(o.y−y, 2)) <= d) <= k
/// ```
pub fn neighbors_sql_predicate(
    table: Arc<Table>,
    x_col: &str,
    y_col: &str,
    d: f64,
    k: i64,
) -> AggThresholdPredicate {
    let dist = Expr::outer(x_col)
        .sub(Expr::col(x_col))
        .power(Expr::lit(2.0))
        .add(
            Expr::outer(y_col)
                .sub(Expr::col(y_col))
                .power(Expr::lit(2.0)),
        )
        .sqrt();
    AggThresholdPredicate::count("few-neighbors", table, dist.le(Expr::lit(d)), CmpOp::Le, k)
}

/// Grid-accelerated predicate with early exit: counts candidates in
/// cells intersecting the query disk and stops past `k`.
///
/// # Errors
///
/// Returns an error if the named columns are missing or non-float.
pub fn neighbors_fast_predicate(
    table: &Arc<Table>,
    x_col: &str,
    y_col: &str,
    d: f64,
    k: i64,
) -> TableResult<FnPredicate<impl Fn(&Table, usize) -> TableResult<bool> + Send + Sync>> {
    let xs: Vec<f64> = table.floats(x_col)?.to_vec();
    let ys: Vec<f64> = table.floats(y_col)?.to_vec();
    // Cell size on the order of the query radius keeps candidate lists
    // tight; grid dims capped for memory sanity.
    let side = ((table.len() as f64).sqrt() as usize).clamp(8, 256);
    let grid = GridIndex::build(&xs, &ys, side, side)?;
    let k = k.max(0);
    Ok(FnPredicate::new(
        "few-neighbors-fast",
        move |_t: &Table, i| {
            let (x, y) = (xs[i], ys[i]);
            let d2 = d * d;
            let mut count: i64 = 0;
            let mut exceeded = false;
            grid.for_each_candidate_within(x, y, d, |j| {
                if exceeded {
                    return;
                }
                let dx = xs[j] - x;
                let dy = ys[j] - y;
                if dx * dx + dy * dy <= d2 {
                    count += 1;
                    if count > k {
                        exceeded = true;
                    }
                }
            });
            Ok(!exceeded)
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::table::table_of_floats;
    use lts_table::ObjectPredicate;

    fn pseudo(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    fn brute_count(xs: &[f64], ys: &[f64], d: f64, k: usize) -> usize {
        (0..xs.len())
            .filter(|&i| {
                let within = (0..xs.len())
                    .filter(|&j| {
                        let dx = xs[j] - xs[i];
                        let dy = ys[j] - ys[i];
                        (dx * dx + dy * dy).sqrt() <= d
                    })
                    .count();
                within <= k
            })
            .count()
    }

    #[test]
    fn radii_method_matches_brute_force() {
        let (xs, ys) = pseudo(200, 31);
        for &d in &[0.2, 0.5, 1.0, 3.0] {
            for &k in &[1usize, 3, 8] {
                assert_eq!(
                    exact_neighbors_count(&xs, &ys, d, k),
                    brute_count(&xs, &ys, d, k),
                    "d={d}, k={k}"
                );
            }
        }
    }

    #[test]
    fn k_zero_matches_sql_semantics() {
        let (xs, ys) = pseudo(30, 1);
        // COUNT(*) <= 0 is unsatisfiable (self always matches).
        assert_eq!(exact_neighbors_count(&xs, &ys, 1.0, 0), 0);
        assert_eq!(brute_count(&xs, &ys, 1.0, 0), 0);
    }

    #[test]
    fn sql_and_fast_predicates_agree() {
        let (xs, ys) = pseudo(100, 77);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        for &(d, k) in &[(0.4f64, 2i64), (1.0, 5), (2.5, 20)] {
            let sql = neighbors_sql_predicate(Arc::clone(&t), "x", "y", d, k);
            let fast = neighbors_fast_predicate(&t, "x", "y", d, k).unwrap();
            for i in 0..t.len() {
                assert_eq!(
                    sql.eval(&t, i).unwrap(),
                    fast.eval(&t, i).unwrap(),
                    "d={d}, k={k}, i={i}"
                );
            }
        }
    }

    #[test]
    fn sql_batch_path_agrees_with_row_path() {
        // The batched oracle call goes through the vectorized engine;
        // it must label exactly like row-at-a-time evaluation, for
        // arbitrary index multisets.
        let (xs, ys) = pseudo(80, 5);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        let sql = neighbors_sql_predicate(Arc::clone(&t), "x", "y", 0.9, 4);
        let idxs: Vec<usize> = (0..t.len()).chain([3, 3, 0]).collect();
        let batch = sql.eval_batch(&t, &idxs).unwrap();
        for (k, &i) in idxs.iter().enumerate() {
            assert_eq!(batch[k], sql.eval(&t, i).unwrap(), "index {i}");
        }
    }

    #[test]
    fn fast_predicate_count_matches_exact() {
        let (xs, ys) = pseudo(300, 13);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        let (d, k) = (0.8, 4i64);
        let fast = neighbors_fast_predicate(&t, "x", "y", d, k).unwrap();
        let mut count = 0;
        for i in 0..t.len() {
            if fast.eval(&t, i).unwrap() {
                count += 1;
            }
        }
        assert_eq!(count, exact_neighbors_count(&xs, &ys, d, k as usize));
    }

    #[test]
    fn infinite_radius_when_population_small() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let radii = knn_radii(&xs, &ys, 5);
        assert!(radii.iter().all(|r| r.is_infinite()));
    }
}
