//! The scaled synthetic tier: 10–100× the quick-test row counts.
//!
//! Shard-level experiments (the `bench_shard` speedup curve, the shard
//! agreement tests) need populations large enough that the design
//! phase's superlinear cost is visible, while staying deterministic:
//! the same `(dataset, tier, level, seed)` tuple must generate the same
//! table, the same calibrated query parameter, and the same ground
//! truth on every machine and thread count. Tier seeds are salted by
//! the tier's row count so different tiers are genuinely different
//! populations, not prefixes of one another.

use crate::scenario::{
    neighbors_scenario, sports_scenario, DatasetKind, Scenario, SelectivityLevel,
};
use lts_core::{mix_seed, CoreResult};
use serde::{Deserialize, Serialize};

/// Base row count the tiers multiply (the repo's quick-test scale).
pub const SCALED_BASE_ROWS: usize = 800;

/// Domain-separation salt for tier seeds.
const SALT_SCALED: u64 = 0x5343_414C_4544; // "SCALED"

/// Row-count multipliers over [`SCALED_BASE_ROWS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaledTier {
    /// 10× the base (8 000 rows).
    X10,
    /// 30× the base (24 000 rows).
    X30,
    /// 100× the base (80 000 rows).
    X100,
}

impl ScaledTier {
    /// All tiers, smallest first.
    pub const ALL: [ScaledTier; 3] = [ScaledTier::X10, ScaledTier::X30, ScaledTier::X100];

    /// The multiplier over the base row count.
    pub fn multiplier(&self) -> usize {
        match self {
            ScaledTier::X10 => 10,
            ScaledTier::X30 => 30,
            ScaledTier::X100 => 100,
        }
    }

    /// Rows this tier generates.
    pub fn rows(&self) -> usize {
        SCALED_BASE_ROWS * self.multiplier()
    }

    /// Display label (`x10`, `x30`, `x100`).
    pub fn label(&self) -> &'static str {
        match self {
            ScaledTier::X10 => "x10",
            ScaledTier::X30 => "x30",
            ScaledTier::X100 => "x100",
        }
    }
}

/// Build a scenario at a scaled tier: same calibration machinery as the
/// quick-test scenarios, deterministic per `(dataset, tier, level,
/// seed)`.
///
/// # Errors
///
/// Propagates generation or problem-construction errors.
pub fn scaled_scenario(
    dataset: DatasetKind,
    tier: ScaledTier,
    level: SelectivityLevel,
    seed: u64,
) -> CoreResult<Scenario> {
    let rows = tier.rows();
    let tier_seed = mix_seed(seed, SALT_SCALED ^ rows as u64);
    match dataset {
        DatasetKind::Sports => sports_scenario(rows, level, tier_seed),
        DatasetKind::Neighbors => neighbors_scenario(rows, level, tier_seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_scale_the_base() {
        assert_eq!(ScaledTier::X10.rows(), 8_000);
        assert_eq!(ScaledTier::X30.rows(), 24_000);
        assert_eq!(ScaledTier::X100.rows(), 80_000);
        assert!(ScaledTier::ALL
            .windows(2)
            .all(|w| w[0].rows() < w[1].rows()));
    }

    #[test]
    fn scaled_scenarios_are_deterministic() {
        let a =
            scaled_scenario(DatasetKind::Sports, ScaledTier::X10, SelectivityLevel::M, 7).unwrap();
        let b =
            scaled_scenario(DatasetKind::Sports, ScaledTier::X10, SelectivityLevel::M, 7).unwrap();
        assert_eq!(a.table.as_ref(), b.table.as_ref());
        assert_eq!(a.param, b.param);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.table.len(), 8_000);
        // A different seed is a different population.
        let c =
            scaled_scenario(DatasetKind::Sports, ScaledTier::X10, SelectivityLevel::M, 8).unwrap();
        assert_ne!(a.table.as_ref(), c.table.as_ref());
    }

    #[test]
    fn tier_seeds_are_salted_apart_from_quick_scale() {
        // The x10 tier at seed 7 is not the plain 8 000-row scenario at
        // seed 7: tier populations are domain-separated.
        let tiered =
            scaled_scenario(DatasetKind::Sports, ScaledTier::X10, SelectivityLevel::M, 7).unwrap();
        let plain = sports_scenario(8_000, SelectivityLevel::M, 7).unwrap();
        assert_ne!(tiered.table.as_ref(), plain.table.as_ref());
    }
}
