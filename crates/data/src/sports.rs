//! Synthetic MLB-pitching-like dataset (the paper's "Sports" workload).
//!
//! Each row is one player-season of pitching statistics. A latent
//! per-player skill drives correlated, heavy-tailed performance columns,
//! producing a realistic 2-d dominance structure for the k-skyband query
//! over `(strikeouts, wins)`: many dominated journeyman seasons, a thin
//! Pareto frontier of star seasons.

use lts_table::{Column, Schema, Table, TableResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::{heavy_tail, randn, randn_with};

/// Configuration for the Sports generator.
#[derive(Debug, Clone, Copy)]
pub struct SportsConfig {
    /// Number of player-season rows (paper scale ≈ 47 000).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SportsConfig {
    fn default() -> Self {
        Self {
            rows: 47_000,
            seed: 0xBA5E_BA11,
        }
    }
}

/// Generate the synthetic Sports table.
///
/// Columns: `player_id`, `year`, `ipouts` (innings-pitched outs),
/// `strikeouts`, `walks`, `hits`, `wins`, `losses`, `era`.
///
/// # Errors
///
/// Propagates table-construction errors (none expected in practice).
pub fn sports_table(config: &SportsConfig) -> TableResult<Table> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.rows.max(1);

    let mut player_id = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut ipouts = Vec::with_capacity(n);
    let mut strikeouts = Vec::with_capacity(n);
    let mut walks = Vec::with_capacity(n);
    let mut hits = Vec::with_capacity(n);
    let mut wins = Vec::with_capacity(n);
    let mut losses = Vec::with_capacity(n);
    let mut era = Vec::with_capacity(n);

    let mut pid: i64 = 0;
    let mut produced = 0usize;
    while produced < n {
        pid += 1;
        // Career length: geometric-ish, 1..=18 seasons.
        let career = 1 + (heavy_tail(&mut rng, 3.0, 0.7) as usize).min(17);
        // Latent skill, slight career drift.
        let skill = randn(&mut rng) * 0.9;
        // Starter vs reliever role is sticky per player.
        let starter = rng.random::<f64>() < 0.35;
        for season in 0..career {
            if produced >= n {
                break;
            }
            let age_curve = -0.02 * (season as f64 - 5.0).powi(2) + 0.4;
            let s = skill + age_curve + 0.25 * randn(&mut rng);
            // Innings (in outs): starters ~200 IP, relievers ~60 IP.
            let ip = if starter {
                randn_with(&mut rng, 540.0, 130.0)
            } else {
                randn_with(&mut rng, 190.0, 90.0)
            }
            .clamp(9.0, 900.0);
            let innings = ip / 3.0;
            // K/9 baseline 5.5, skill worth ~1.7 K/9 per σ.
            let k9 = (5.5 + 1.7 * s + 0.8 * randn(&mut rng)).clamp(0.5, 15.0);
            let so = (innings * k9 / 9.0).round().max(0.0);
            let bb9 = (3.4 - 0.6 * s + 0.7 * randn(&mut rng)).clamp(0.4, 9.0);
            let bb = (innings * bb9 / 9.0).round().max(0.0);
            let h9 = (9.2 - 1.1 * s + 0.8 * randn(&mut rng)).clamp(3.0, 15.0);
            let h = (innings * h9 / 9.0).round().max(0.0);
            let era_v = (4.3 - 0.9 * s + 0.55 * randn(&mut rng)).clamp(0.4, 15.0);
            // Wins scale with innings and skill; relievers win little.
            let win_rate = (0.55 + 0.12 * s).clamp(0.1, 0.85);
            let decisions = innings / 9.0 * 0.75;
            let w = (decisions * win_rate + 0.8 * randn(&mut rng))
                .round()
                .clamp(0.0, 27.0);
            let l = (decisions * (1.0 - win_rate) + 0.8 * randn(&mut rng))
                .round()
                .clamp(0.0, 25.0);

            player_id.push(pid);
            year.push(1990 + (season as i64 + pid) % 30);
            ipouts.push(ip.round());
            strikeouts.push(so);
            walks.push(bb);
            hits.push(h);
            wins.push(w);
            losses.push(l);
            era.push(era_v);
            produced += 1;
        }
    }

    let schema = Schema::from_pairs(&[
        ("player_id", lts_table::DataType::Int),
        ("year", lts_table::DataType::Int),
        ("ipouts", lts_table::DataType::Float),
        ("strikeouts", lts_table::DataType::Float),
        ("walks", lts_table::DataType::Float),
        ("hits", lts_table::DataType::Float),
        ("wins", lts_table::DataType::Float),
        ("losses", lts_table::DataType::Float),
        ("era", lts_table::DataType::Float),
    ])?;
    Table::new(
        schema,
        vec![
            Column::Int(player_id),
            Column::Int(year),
            Column::Float(ipouts),
            Column::Float(strikeouts),
            Column::Float(walks),
            Column::Float(hits),
            Column::Float(wins),
            Column::Float(losses),
            Column::Float(era),
        ],
    )
}

// `rng.random` comes from RngExt.
use rand::RngExt as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows_with_sane_ranges() {
        let t = sports_table(&SportsConfig {
            rows: 5000,
            seed: 7,
        })
        .unwrap();
        assert_eq!(t.len(), 5000);
        let so = t.floats("strikeouts").unwrap();
        let w = t.floats("wins").unwrap();
        let era = t.floats("era").unwrap();
        assert!(so.iter().all(|&x| (0.0..=500.0).contains(&x)));
        assert!(w.iter().all(|&x| (0.0..=27.0).contains(&x)));
        assert!(era.iter().all(|&x| (0.4..=15.0).contains(&x)));
        // Strikeouts should be right-skewed (stars exist).
        let mean = so.iter().sum::<f64>() / so.len() as f64;
        let max = so.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max > mean * 3.0, "max {max} vs mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sports_table(&SportsConfig { rows: 500, seed: 1 }).unwrap();
        let b = sports_table(&SportsConfig { rows: 500, seed: 1 }).unwrap();
        let c = sports_table(&SportsConfig { rows: 500, seed: 2 }).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skill_induces_correlation() {
        // Strikeouts and wins must be positively correlated (both driven
        // by skill × innings) — this is what gives the skyband its shape.
        let t = sports_table(&SportsConfig {
            rows: 8000,
            seed: 3,
        })
        .unwrap();
        let so = t.floats("strikeouts").unwrap();
        let w = t.floats("wins").unwrap();
        let n = so.len() as f64;
        let (ms, mw) = (so.iter().sum::<f64>() / n, w.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut vs = 0.0;
        let mut vw = 0.0;
        for (&a, &b) in so.iter().zip(w) {
            cov += (a - ms) * (b - mw);
            vs += (a - ms) * (a - ms);
            vw += (b - mw) * (b - mw);
        }
        let corr = cov / (vs.sqrt() * vw.sqrt());
        assert!(corr > 0.5, "corr {corr}");
    }
}
