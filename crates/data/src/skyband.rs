//! The k-skyband query (paper Example 2).
//!
//! `q(o)` tests whether fewer than `k` points dominate `o`
//! (dominate = ≥ in both coordinates, > in at least one). Two predicate
//! forms are provided:
//!
//! * [`skyband_sql_predicate`] — the literal correlated aggregate
//!   subquery from the paper (row-wise `eval` is the faithful
//!   interpreted nested loop; batched `eval_batch` runs one
//!   *vectorized* inner scan per object through `lts_table::vector`);
//! * [`skyband_fast_predicate`] — a compiled closure with early exit at
//!   `k` dominators (semantically identical, used where experiment
//!   throughput matters).
//!
//! [`dominator_counts`] computes every point's exact dominator count in
//! `O(N log N)` with an x-sweep over a Fenwick tree of y-ranks — the
//! "specialized algorithm" the paper notes a generic system lacks; we
//! use it for ground truth and selectivity calibration only.

use lts_table::{AggThresholdPredicate, CmpOp, Expr, FnPredicate, Table, TableResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Count-Fenwick over ranks.
struct CountFenwick {
    tree: Vec<u32>,
}

impl CountFenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }
    fn add(&mut self, mut i: usize) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }
    /// Count of inserted ranks `<= i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        let mut i = i.min(self.tree.len() - 1);
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
    fn total(&self) -> u32 {
        self.prefix(self.tree.len() - 2)
    }
}

/// Exact dominator count per point: `dom(i) = #{j : x_j ≥ x_i ∧ y_j ≥
/// y_i ∧ (x_j > x_i ∨ y_j > y_i)}`.
///
/// Sweep points by descending `x`; for each equal-`x` group, first
/// insert all of the group's y-ranks, then query each member — so the
/// Fenwick holds exactly the points with `x_j ≥ x_i`. Duplicated
/// `(x, y)` pairs are subtracted at the end (equal points do not
/// dominate each other).
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn dominator_counts(xs: &[f64], ys: &[f64]) -> Vec<usize> {
    assert_eq!(xs.len(), ys.len(), "coordinate slices must align");
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    // Rank-compress y.
    let mut y_sorted: Vec<f64> = ys.to_vec();
    y_sorted.sort_by(f64::total_cmp);
    y_sorted.dedup_by(|a, b| a.to_bits() == b.to_bits());
    let y_rank = |y: f64| y_sorted.partition_point(|&v| v < y);

    // Exact-duplicate counts.
    let mut dup: HashMap<(u64, u64), usize> = HashMap::new();
    for i in 0..n {
        *dup.entry((xs[i].to_bits(), ys[i].to_bits())).or_insert(0) += 1;
    }

    // Sweep by descending x.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[b].total_cmp(&xs[a]));
    let mut fen = CountFenwick::new(y_sorted.len());
    let mut out = vec![0usize; n];
    let mut g = 0usize;
    while g < n {
        // Group of equal x.
        let mut h = g;
        while h + 1 < n && xs[order[h + 1]].to_bits() == xs[order[g]].to_bits() {
            h += 1;
        }
        for &i in &order[g..=h] {
            fen.add(y_rank(ys[i]));
        }
        for &i in &order[g..=h] {
            let r = y_rank(ys[i]);
            // Points inserted so far have x_j >= x_i; among them count
            // y_j >= y_i = total - (# with rank < r).
            let ge = fen.total() - if r > 0 { fen.prefix(r - 1) } else { 0 };
            let equal = dup[&(xs[i].to_bits(), ys[i].to_bits())];
            out[i] = ge as usize - equal;
        }
        g = h + 1;
    }
    out
}

/// Exact k-skyband size: points with fewer than `k` dominators.
pub fn exact_skyband_count(xs: &[f64], ys: &[f64], k: usize) -> usize {
    dominator_counts(xs, ys)
        .into_iter()
        .filter(|&d| d < k)
        .count()
}

/// The paper's SQL-form predicate (Example 2):
///
/// ```sql
/// (SELECT COUNT(*) FROM D
///   WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < k
/// ```
pub fn skyband_sql_predicate(
    table: Arc<Table>,
    x_col: &str,
    y_col: &str,
    k: i64,
) -> AggThresholdPredicate {
    let dominate = Expr::col(x_col)
        .ge(Expr::outer(x_col))
        .and(Expr::col(y_col).ge(Expr::outer(y_col)))
        .and(
            Expr::col(x_col)
                .gt(Expr::outer(x_col))
                .or(Expr::col(y_col).gt(Expr::outer(y_col))),
        );
    AggThresholdPredicate::count("skyband", table, dominate, CmpOp::Lt, k)
}

/// Compiled-equivalent predicate: scans the coordinate slices directly
/// with early exit once `k` dominators are found.
///
/// # Errors
///
/// Returns an error if the named columns are missing or non-float.
pub fn skyband_fast_predicate(
    table: &Arc<Table>,
    x_col: &str,
    y_col: &str,
    k: i64,
) -> TableResult<FnPredicate<impl Fn(&Table, usize) -> TableResult<bool> + Send + Sync>> {
    let xs: Vec<f64> = table.floats(x_col)?.to_vec();
    let ys: Vec<f64> = table.floats(y_col)?.to_vec();
    let k = k.max(0) as usize;
    // The closure captures the coordinate slices; the object table passed
    // at eval time is the same table, so only the row index matters.
    Ok(FnPredicate::new("skyband-fast", move |_t: &Table, i| {
        let (x, y) = (xs[i], ys[i]);
        let mut dom = 0usize;
        for (&xj, &yj) in xs.iter().zip(&ys) {
            if xj >= x && yj >= y && (xj > x || yj > y) {
                dom += 1;
                if dom >= k {
                    return Ok(false);
                }
            }
        }
        Ok(dom < k)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::table::table_of_floats;
    use lts_table::ObjectPredicate;

    fn brute_dominators(xs: &[f64], ys: &[f64]) -> Vec<usize> {
        (0..xs.len())
            .map(|i| {
                (0..xs.len())
                    .filter(|&j| {
                        xs[j] >= xs[i] && ys[j] >= ys[i] && (xs[j] > xs[i] || ys[j] > ys[i])
                    })
                    .count()
            })
            .collect()
    }

    fn pseudo(n: usize, seed: u64, distinct_vals: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) % distinct_vals) as f64
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    #[test]
    fn sweep_matches_brute_force() {
        for &(n, vals) in &[(50usize, 1000u64), (200, 12), (300, 5)] {
            let (xs, ys) = pseudo(n, 42, vals);
            assert_eq!(
                dominator_counts(&xs, &ys),
                brute_dominators(&xs, &ys),
                "n={n} vals={vals}"
            );
        }
    }

    #[test]
    fn skyline_points_have_zero_dominators() {
        let xs = [1.0, 2.0, 3.0, 0.5];
        let ys = [3.0, 2.0, 1.0, 0.5];
        let dom = dominator_counts(&xs, &ys);
        assert_eq!(dom, vec![0, 0, 0, 3]);
        assert_eq!(exact_skyband_count(&xs, &ys, 1), 3);
        assert_eq!(exact_skyband_count(&xs, &ys, 4), 4);
    }

    #[test]
    fn duplicates_do_not_dominate_each_other() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 2.0, 2.0];
        assert_eq!(dominator_counts(&xs, &ys), vec![0, 0, 0]);
    }

    #[test]
    fn sql_and_fast_predicates_agree() {
        let (xs, ys) = pseudo(120, 9, 30);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        for k in [1i64, 3, 10] {
            let sql = skyband_sql_predicate(Arc::clone(&t), "x", "y", k);
            let fast = skyband_fast_predicate(&t, "x", "y", k).unwrap();
            for i in 0..t.len() {
                assert_eq!(
                    sql.eval(&t, i).unwrap(),
                    fast.eval(&t, i).unwrap(),
                    "k={k}, i={i}"
                );
            }
        }
    }

    #[test]
    fn fast_predicate_matches_sweep_truth() {
        let (xs, ys) = pseudo(150, 5, 40);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        let k = 4i64;
        let fast = skyband_fast_predicate(&t, "x", "y", k).unwrap();
        let truth = exact_skyband_count(&xs, &ys, k as usize);
        let mut count = 0;
        for i in 0..t.len() {
            if fast.eval(&t, i).unwrap() {
                count += 1;
            }
        }
        assert_eq!(count, truth);
    }

    #[test]
    fn empty_input() {
        assert!(dominator_counts(&[], &[]).is_empty());
        assert_eq!(exact_skyband_count(&[], &[], 3), 0);
    }

    #[test]
    fn sql_batch_path_agrees_with_row_path_and_truth() {
        // The batched oracle call goes through the vectorized engine;
        // it must label exactly like row-at-a-time evaluation and match
        // the Fenwick-sweep ground truth.
        let (xs, ys) = pseudo(90, 3, 25);
        let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        let k = 3i64;
        let sql = skyband_sql_predicate(Arc::clone(&t), "x", "y", k);
        let all: Vec<usize> = (0..t.len()).collect();
        let batch = sql.eval_batch(&t, &all).unwrap();
        for (i, &label) in batch.iter().enumerate() {
            assert_eq!(label, sql.eval(&t, i).unwrap(), "i={i}");
        }
        let count = batch.iter().filter(|&&b| b).count();
        assert_eq!(count, exact_skyband_count(&xs, &ys, k as usize));
    }
}
