//! Synthetic KDD-Cup-99-like dataset (the paper's "Neighbors" workload).
//!
//! Connection records drawn from a mixture of dense "normal traffic"
//! clusters and sparse "attack" clusters in a 2-d informative space,
//! padded with correlated and pure-noise columns up to the 41 features
//! of the original data. The few-neighbors query operates on the two
//! informative dimensions (`src_rate`, `dst_rate`), which are also the
//! features the classifiers see — the paper's "attributes referenced in
//! q" heuristic.

use lts_table::{Column, DataType, Field, Schema, Table, TableResult};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::gen::{randn, randn_with};

/// Configuration for the Neighbors generator.
#[derive(Debug, Clone, Copy)]
pub struct NeighborsConfig {
    /// Number of records (paper scale = 73 000).
    pub rows: usize,
    /// Total feature columns (paper: 41). At least 2.
    pub features: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeighborsConfig {
    fn default() -> Self {
        Self {
            rows: 73_000,
            features: 41,
            seed: 0x0DD_1999, // "KDD 1999"-flavoured default seed
        }
    }
}

/// Cluster spec: center, spread, and mixture weight.
struct Cluster {
    cx: f64,
    cy: f64,
    sd: f64,
    weight: f64,
}

/// Generate the synthetic Neighbors table.
///
/// Columns: `src_rate`, `dst_rate` (informative), then
/// `f02..f{features}` (correlated/noise padding), then `label`
/// (0 = normal, 1 = attack; *not* used by the estimators, provided for
/// realism and for classifier sanity checks).
///
/// # Errors
///
/// Propagates table-construction errors.
pub fn neighbors_table(config: &NeighborsConfig) -> TableResult<Table> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.rows.max(1);
    let d = config.features.max(2);

    // Dense normal-traffic clusters + sparse attack clusters: local
    // density varies by an order of magnitude, which is what makes the
    // few-neighbors selectivity tunable across 2%..87%.
    let clusters = [
        Cluster {
            cx: 0.0,
            cy: 0.0,
            sd: 0.6,
            weight: 0.30,
        },
        Cluster {
            cx: 2.5,
            cy: 1.0,
            sd: 0.5,
            weight: 0.22,
        },
        Cluster {
            cx: -1.5,
            cy: 2.2,
            sd: 0.7,
            weight: 0.18,
        },
        Cluster {
            cx: 1.0,
            cy: -2.0,
            sd: 0.9,
            weight: 0.12,
        },
        // Attack-like: sparse, spread out.
        Cluster {
            cx: 6.0,
            cy: 4.0,
            sd: 2.2,
            weight: 0.08,
        },
        Cluster {
            cx: -5.0,
            cy: -4.0,
            sd: 2.8,
            weight: 0.06,
        },
        Cluster {
            cx: 8.0,
            cy: -6.0,
            sd: 3.5,
            weight: 0.04,
        },
    ];
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();

    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut u = rng.random::<f64>() * total_w;
        let mut chosen = &clusters[0];
        let mut attack = false;
        for (ci, c) in clusters.iter().enumerate() {
            if u < c.weight {
                chosen = c;
                attack = ci >= 4;
                break;
            }
            u -= c.weight;
        }
        xs.push(randn_with(&mut rng, chosen.cx, chosen.sd));
        ys.push(randn_with(&mut rng, chosen.cy, chosen.sd));
        labels.push(i64::from(attack));
    }

    // Assemble columns: 2 informative + (d − 2) padding + label.
    let mut fields = vec![
        Field::new("src_rate", DataType::Float),
        Field::new("dst_rate", DataType::Float),
    ];
    // Padding columns are derived from borrowed `xs`/`ys`, so build
    // them first; the informative columns are then *moved* into the
    // table (cloning them would copy two full columns per build).
    let mut padding = Vec::with_capacity(d.saturating_sub(2));
    for j in 2..d {
        let name = format!("f{j:02}");
        fields.push(Field::new(name, DataType::Float));
        let col: Vec<f64> = match j % 3 {
            // Correlated with src_rate.
            0 => xs
                .iter()
                .map(|&x| 0.8 * x + 0.6 * randn(&mut rng))
                .collect(),
            // Correlated with dst_rate.
            1 => ys
                .iter()
                .map(|&y| -0.5 * y + 0.9 * randn(&mut rng))
                .collect(),
            // Pure noise.
            _ => (0..n).map(|_| randn(&mut rng) * 1.5).collect(),
        };
        padding.push(Column::Float(col));
    }
    let mut columns = vec![Column::Float(xs), Column::Float(ys)];
    columns.extend(padding);
    fields.push(Field::new("label", DataType::Int));
    columns.push(Column::Int(labels));

    Table::new(Schema::new(fields)?, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NeighborsConfig {
        NeighborsConfig {
            rows: 4000,
            features: 41,
            seed: 11,
        }
    }

    #[test]
    fn generates_shape() {
        let t = neighbors_table(&small()).unwrap();
        assert_eq!(t.len(), 4000);
        assert_eq!(t.schema().len(), 42); // 41 features + label
        assert!(t.floats("src_rate").is_ok());
        assert!(t.floats("f05").is_ok());
        assert!(t.ints("label").is_ok());
    }

    #[test]
    fn density_varies_between_clusters() {
        // Records near the dense core should have far more close
        // neighbours than records in the sparse attack clusters.
        let t = neighbors_table(&small()).unwrap();
        let xs = t.floats("src_rate").unwrap();
        let ys = t.floats("dst_rate").unwrap();
        let grid = lts_table::GridIndex::build(xs, ys, 24, 24).unwrap();
        let mut core = Vec::new();
        let mut fringe = Vec::new();
        for i in 0..t.len() {
            let c = grid.count_within(xs[i], ys[i], 0.5);
            let r2 = xs[i] * xs[i] + ys[i] * ys[i];
            if r2 < 1.0 {
                core.push(c);
            } else if r2 > 30.0 {
                fringe.push(c);
            }
        }
        assert!(!core.is_empty() && !fringe.is_empty());
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(
            mean(&core) > 4.0 * mean(&fringe),
            "core {} vs fringe {}",
            mean(&core),
            mean(&fringe)
        );
    }

    #[test]
    fn attack_fraction_reasonable() {
        let t = neighbors_table(&small()).unwrap();
        let labels = t.ints("label").unwrap();
        let attacks = labels.iter().filter(|&&l| l == 1).count();
        let frac = attacks as f64 / labels.len() as f64;
        assert!((0.1..0.3).contains(&frac), "attack fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = neighbors_table(&small()).unwrap();
        let b = neighbors_table(&small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_two_features() {
        let t = neighbors_table(&NeighborsConfig {
            rows: 100,
            features: 2,
            seed: 1,
        })
        .unwrap();
        assert_eq!(t.schema().len(), 3); // 2 features + label
    }
}
