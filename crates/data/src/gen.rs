//! Random-variate helpers for the synthetic generators.

use rand::Rng;
use rand::RngExt as _;

/// Standard normal variate (Box–Muller; one value per call, simple and
/// adequate for data generation).
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Normal variate with the given mean and standard deviation.
pub fn randn_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * randn(rng)
}

/// Log-normal-ish heavy-tailed positive variate.
pub fn heavy_tail<R: Rng + ?Sized>(rng: &mut R, scale: f64, sigma: f64) -> f64 {
    scale * (sigma * randn(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = randn(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn randn_with_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += randn_with(&mut rng, 10.0, 2.0);
        }
        assert!((sum / f64::from(n) - 10.0).abs() < 0.1);
    }

    #[test]
    fn heavy_tail_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000)
            .map(|_| heavy_tail(&mut rng, 1.0, 1.0))
            .collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "heavy tail: mean {mean} > median {median}");
    }
}
