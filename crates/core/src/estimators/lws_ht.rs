//! LWS-HT: learned weighted sampling with the Horvitz–Thompson
//! estimator over a fixed-size systematic PPS design.
//!
//! The paper (§4.1) mentions Horvitz–Thompson as the popular estimator
//! for unequal-probability designs before opting for Des Raj (simpler
//! calculation, running "ordered" estimates). This variant completes
//! the comparison: the same learned weights `max(g, ε)`, but a Madow
//! systematic PPS draw whose **first-order inclusion probabilities are
//! exact**, making the HT point estimate exactly unbiased, with a hard
//! (non-random) sample size that respects the labeling budget.
//!
//! Trade-off vs [`super::Lws`]: HT has no running estimate (no early
//! stopping), and under systematic PPS its variance estimator is an
//! approximation (second-order inclusion probabilities are
//! design-dependent), so the interval is approximate where Des Raj's is
//! textbook. The point estimate, however, avoids Des Raj's
//! order-dependence entirely.

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::ScoredPopulation;
use lts_sampling::{horvitz_thompson_count, systematic_pps_sample};
use rand::rngs::StdRng;

/// Learned weighted sampling with a Horvitz–Thompson estimator.
#[derive(Debug, Clone, Copy)]
pub struct LwsHt {
    /// Learning-phase configuration.
    pub learn: LearnPhaseConfig,
    /// Fraction of the budget spent on classifier training (paper
    /// default 25%).
    pub train_frac: f64,
    /// Probability floor ε: sampling weight is `max(g(o), ε)`.
    pub epsilon: f64,
}

impl Default for LwsHt {
    fn default() -> Self {
        Self {
            learn: LearnPhaseConfig::default(),
            train_frac: 0.25,
            epsilon: 0.05,
        }
    }
}

impl CountEstimator for LwsHt {
    fn name(&self) -> &'static str {
        "LWS-HT"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        if !(0.0..1.0).contains(&self.train_frac) || self.train_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("train_frac must be in (0, 1), got {}", self.train_frac),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("epsilon must be in (0, 1], got {}", self.epsilon),
            });
        }
        if budget < 4 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: 4,
                reason: "LWS-HT needs ≥ 2 training and ≥ 2 sampling-phase labels".into(),
            });
        }
        let train_budget = ((budget as f64 * self.train_frac).round() as usize).clamp(2, budget);
        let sample_budget = budget - train_budget;
        if sample_budget < 2 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: train_budget + 2,
                reason: "LWS-HT needs at least 2 sampling-phase labels".into(),
            });
        }

        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);

        let lm = timer.phase(Phase::Learn, || {
            run_learn_phase(problem, &mut labeler, train_budget, &self.learn, rng)
        })?;

        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            // Shared scoring pipeline: partition-parallel batch scores
            // over O \ S_L, then the ε-floored PPS weights.
            let scored = ScoredPopulation::score_rest(problem, lm.model.as_ref(), &lm.labeled)?;
            if scored.len() < sample_budget {
                return Err(CoreError::BudgetTooSmall {
                    budget,
                    required: lm.labeled.len() + sample_budget,
                    reason: "sampling budget exceeds remaining objects".into(),
                });
            }
            let weights = scored.weights(self.epsilon);
            let draws = systematic_pps_sample(rng, &weights, sample_budget)?;
            // One batched oracle call for the whole systematic sample.
            let objs: Vec<usize> = draws.iter().map(|d| scored.members()[d.index]).collect();
            let labels = labeler.label_batch(&objs)?;
            let pairs: Vec<(f64, bool)> = draws
                .iter()
                .zip(labels)
                .map(|(d, label)| (d.initial_probability, label))
                .collect();
            Ok(horvitz_thompson_count(&pairs, problem.level())?)
        })?;

        Ok(EstimateReport {
            estimate: estimate.shifted(lm.positives() as f64),
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, noisy_problem, ramp_problem};
    use crate::spec::ClassifierSpec;
    use rand::SeedableRng;

    fn ht_knn() -> LwsHt {
        LwsHt {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            ..LwsHt::default()
        }
    }

    #[test]
    fn respects_budget_exactly_and_lands_near_truth() {
        let problem = line_problem(600, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(7);
        let r = ht_knn().estimate(&problem, 120, &mut rng).unwrap();
        // Systematic PPS is fixed-size: the budget is consumed exactly,
        // never exceeded (the HT advantage over Poisson sampling).
        assert_eq!(r.evals, 120, "fixed-size design must spend the budget");
        assert!((r.count() - truth).abs() < 70.0, "{} vs {truth}", r.count());
        assert!(r.has_interval);
    }

    #[test]
    fn unbiased_over_trials() {
        let problem = noisy_problem(400, 0.3, 0.15, 17);
        let truth = problem.exact_count().unwrap() as f64;
        let est = ht_knn();
        let mut sum = 0.0;
        let trials = 250u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(30_000 + u64::from(t));
            sum += est.estimate(&problem, 80, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 10.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn good_classifier_tightens_the_estimate() {
        let problem = ramp_problem(800, 0.25, 0.65, 2024);
        let truth = problem.exact_count().unwrap() as f64;
        let est = ht_knn();
        let trials = 40u32;
        let mut sse = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(500 + u64::from(t));
            let e = est.estimate(&problem, 200, &mut rng).unwrap().count();
            sse += (e - truth) * (e - truth);
        }
        let rmse = (sse / f64::from(trials)).sqrt();
        // SRS at this budget has RMSE ≈ √(p(1−p)/n)·N·fpc ≈ 28;
        // informative weights should do at least comparably.
        assert!(rmse < 60.0, "LWS-HT RMSE {rmse}");
    }

    #[test]
    fn validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let bad = LwsHt {
            train_frac: 0.0,
            ..ht_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        let bad = LwsHt {
            epsilon: 0.0,
            ..ht_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        assert!(ht_knn().estimate(&problem, 3, &mut rng).is_err());
        assert!(ht_knn().estimate(&problem, 101, &mut rng).is_err());
    }
}
