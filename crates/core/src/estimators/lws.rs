//! LWS: Learned Weighted Sampling (paper §4.1).
//!
//! Phase 1 trains a classifier on an SRS of the budget's `train_frac`.
//! Phase 2 draws the remaining budget from `O \ S_L` **without
//! replacement** with probability proportional to `max(g(o), ε)` — the
//! ε floor guards against an overconfident classifier starving negative
//! objects — and feeds the draws to the Des Raj ordered estimator
//! (Eq. 3), which stays unbiased no matter how wrong the weights are.

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::ScoredPopulation;
use lts_sampling::{weighted_sample_es, DesRaj};
use rand::rngs::StdRng;

/// Learned weighted sampling.
#[derive(Debug, Clone, Copy)]
pub struct Lws {
    /// Learning-phase configuration.
    pub learn: LearnPhaseConfig,
    /// Fraction of the budget spent on classifier training (paper
    /// default 25%).
    pub train_frac: f64,
    /// Probability floor ε: sampling weight is `max(g(o), ε)`.
    pub epsilon: f64,
}

impl Default for Lws {
    fn default() -> Self {
        Self {
            learn: LearnPhaseConfig::default(),
            train_frac: 0.25,
            epsilon: 0.05,
        }
    }
}

impl Lws {
    pub(crate) fn validate(&self) -> CoreResult<()> {
        if !(0.0..1.0).contains(&self.train_frac) || self.train_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("train_frac must be in (0, 1), got {}", self.train_frac),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("epsilon must be in (0, 1], got {}", self.epsilon),
            });
        }
        Ok(())
    }

    /// Split a total labeling budget into (training, sampling) shares —
    /// the arithmetic shared by the one-shot estimate path and the
    /// warm-start [`Lws::prepare`] path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BudgetTooSmall`] when either phase would
    /// starve.
    pub fn budget_split(&self, budget: usize) -> CoreResult<(usize, usize)> {
        if budget < 4 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: 4,
                reason: "LWS needs ≥ 2 training and ≥ 2 sampling-phase labels".into(),
            });
        }
        let train_budget = ((budget as f64 * self.train_frac).round() as usize).clamp(2, budget);
        let sample_budget = budget - train_budget;
        if sample_budget < 2 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: train_budget + 2,
                reason: "LWS needs at least 2 sampling-phase labels".into(),
            });
        }
        Ok((train_budget, sample_budget))
    }
}

/// LWS phase 2, shared by the one-shot estimate path and the warm-start
/// resume path: weight the scored rest population by `max(g, ε)`, draw
/// `sample_budget` objects PPS without replacement, label them as one
/// batch, and run the Des Raj ordered estimator (unshifted — callers
/// add the exact positives of the training sample).
pub(crate) fn lws_phase2(
    lws: &Lws,
    scored: &crate::scoring::ScoredPopulation,
    sample_budget: usize,
    labeled_len: usize,
    level: f64,
    labeler: &mut Labeler<'_>,
    rng: &mut StdRng,
) -> CoreResult<lts_sampling::CountEstimate> {
    if scored.len() < sample_budget {
        return Err(CoreError::BudgetTooSmall {
            budget: labeled_len + sample_budget,
            required: labeled_len + sample_budget,
            reason: "sampling budget exceeds remaining objects".into(),
        });
    }
    let weights = scored.weights(lws.epsilon);
    let draws = weighted_sample_es(rng, &weights, sample_budget)?;
    // One batched oracle call for the whole phase-2 sample; the
    // Des Raj pushes then replay the draw order exactly.
    let objs: Vec<usize> = draws.iter().map(|d| scored.members()[d.index]).collect();
    let labels = labeler.label_batch(&objs)?;
    let mut desraj = DesRaj::new(scored.len())?;
    for (d, label) in draws.iter().zip(labels) {
        desraj.push(label, d.initial_probability)?;
    }
    Ok(desraj.count_estimate(level)?)
}

impl CountEstimator for Lws {
    fn name(&self) -> &'static str {
        "LWS"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        self.validate()?;
        let (train_budget, sample_budget) = self.budget_split(budget)?;

        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);

        // Phase 1: learn.
        let lm = timer.phase(Phase::Learn, || {
            run_learn_phase(problem, &mut labeler, train_budget, &self.learn, rng)
        })?;

        // Phase 2: score the rest through the shared pipeline
        // (partition-parallel batch scoring), weight, draw, estimate.
        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            let scored = ScoredPopulation::score_rest(problem, lm.model.as_ref(), &lm.labeled)?;
            lws_phase2(
                self,
                &scored,
                sample_budget,
                lm.labeled.len(),
                problem.level(),
                &mut labeler,
                rng,
            )
        })?;

        Ok(EstimateReport {
            estimate: estimate.shifted(lm.positives() as f64),
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, noisy_problem};
    use crate::spec::ClassifierSpec;
    use rand::SeedableRng;

    fn lws_knn() -> Lws {
        Lws {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            ..Lws::default()
        }
    }

    #[test]
    fn respects_budget_and_lands_near_truth() {
        let problem = line_problem(500, 0.2);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(6);
        let r = lws_knn().estimate(&problem, 100, &mut rng).unwrap();
        assert!(r.evals <= 100, "evals {}", r.evals);
        assert!((r.count() - truth).abs() < 60.0, "{} vs {truth}", r.count());
        assert!(r.has_interval);
    }

    #[test]
    fn unbiased_over_trials_even_with_noise() {
        let problem = noisy_problem(300, 0.3, 0.2, 5);
        let truth = problem.exact_count().unwrap() as f64;
        let est = lws_knn();
        let mut sum = 0.0;
        let trials = 300u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(40_000 + u64::from(t));
            sum += est.estimate(&problem, 60, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 8.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn good_classifier_tightens_the_estimate() {
        // Perfectly learnable predicate: LWS variance should be far
        // below SRS's at the same budget.
        let problem = line_problem(600, 0.15);
        let truth = problem.exact_count().unwrap() as f64;
        let lws = lws_knn();
        let srs = super::super::Srs::default();
        let trials = 60u32;
        let (mut sse_lws, mut sse_srs) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(500 + u64::from(t));
            let e = lws.estimate(&problem, 120, &mut rng).unwrap().count();
            sse_lws += (e - truth) * (e - truth);
            let mut rng = StdRng::seed_from_u64(500 + u64::from(t));
            let e = srs.estimate(&problem, 120, &mut rng).unwrap().count();
            sse_srs += (e - truth) * (e - truth);
        }
        assert!(
            sse_lws < sse_srs,
            "LWS SSE {sse_lws} should beat SRS SSE {sse_srs}"
        );
    }

    #[test]
    fn validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let bad = Lws {
            epsilon: 0.0,
            ..lws_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        let bad = Lws {
            train_frac: 1.0,
            ..lws_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        // Budget so small the sampling phase starves.
        assert!(lws_knn().estimate(&problem, 3, &mut rng).is_err());
    }
}
