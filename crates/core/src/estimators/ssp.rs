//! SSP: stratified sampling with proportional allocation over a
//! surrogate-attribute grid (paper §3.1).
//!
//! The paper stratifies on "attributes of o whose values are readily
//! available and likely correlated with the outcome of q(o)" — for 2-d
//! queries, a grid over the two feature dimensions.

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::surrogate_grid_strata;
use lts_sampling::{
    draw_stratified, proportional_allocation, stratified_count_estimate, StratumSample,
};
use rand::rngs::StdRng;

/// Stratified sampling with proportional allocation over a
/// `grid.0 × grid.1` grid of the two feature dimensions
/// `feature_dims`.
#[derive(Debug, Clone, Copy)]
pub struct Ssp {
    /// Grid dimensions (strata count = product, before empty-cell
    /// removal).
    pub grid: (usize, usize),
    /// Which two feature columns to grid (indices into the problem's
    /// feature matrix).
    pub feature_dims: (usize, usize),
    /// Minimum samples per (non-empty) stratum.
    pub min_per_stratum: usize,
}

impl Default for Ssp {
    /// 2×2 grid (4 strata, the paper's default) over features 0 and 1.
    fn default() -> Self {
        Self {
            grid: (2, 2),
            feature_dims: (0, 1),
            min_per_stratum: 1,
        }
    }
}

impl Ssp {
    /// A grid with roughly `h` strata (side = √h, e.g. 4 → 2×2,
    /// 9 → 3×3).
    pub fn with_strata(h: usize) -> Self {
        let side = (h as f64).sqrt().round().max(1.0) as usize;
        Self {
            grid: (side, side),
            ..Self::default()
        }
    }

    /// Build the surrogate strata: grid-cell member lists, empty cells
    /// dropped. Delegates to the shared scoring pipeline's
    /// column-at-a-time surrogate projection
    /// ([`crate::scoring::surrogate_grid_strata`]).
    pub(crate) fn build_strata(&self, problem: &CountingProblem) -> CoreResult<Vec<Vec<usize>>> {
        surrogate_grid_strata(problem, self.grid, self.feature_dims)
    }
}

impl CountEstimator for Ssp {
    fn name(&self) -> &'static str {
        "SSP"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);

        let strata = timer.phase(Phase::Design, || self.build_strata(problem))?;
        if budget < strata.len() * self.min_per_stratum.max(1) {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: strata.len() * self.min_per_stratum.max(1),
                reason: format!("{} non-empty strata need samples", strata.len()),
            });
        }
        let sizes: Vec<usize> = strata.iter().map(Vec::len).collect();
        let alloc = timer.phase(Phase::Design, || {
            proportional_allocation(&sizes, budget, self.min_per_stratum)
        })?;

        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            let draws = draw_stratified(rng, &strata, &alloc)?;
            let mut samples = Vec::with_capacity(strata.len());
            for (members, drawn) in strata.iter().zip(&draws) {
                let positives = labeler.count_positives(drawn)?;
                samples.push(StratumSample {
                    population: members.len(),
                    sampled: drawn.len(),
                    positives,
                });
            }
            Ok(stratified_count_estimate(&samples, problem.level())?)
        })?;

        Ok(EstimateReport {
            estimate,
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::line_problem;
    use rand::SeedableRng;

    #[test]
    fn stratification_helps_on_correlated_feature() {
        // With x as both feature and predicate driver, grid strata are
        // nearly homogeneous → tighter than SRS on average.
        let problem = line_problem(400, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        // SSP needs 2 feature dims; line_problem has 1 → grid on (0, 0).
        let est = Ssp {
            grid: (8, 1),
            feature_dims: (0, 0),
            min_per_stratum: 1,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let r = est.estimate(&problem, 80, &mut rng).unwrap();
        assert!(r.evals <= 80);
        assert!((r.count() - truth).abs() < 60.0);
    }

    #[test]
    fn unbiased_over_trials() {
        let problem = line_problem(240, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Ssp {
            grid: (4, 1),
            feature_dims: (0, 0),
            min_per_stratum: 1,
        };
        let mut sum = 0.0;
        let trials = 400u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(7000 + u64::from(t));
            sum += est.estimate(&problem, 48, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 4.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn with_strata_builds_square_grids() {
        assert_eq!(Ssp::with_strata(4).grid, (2, 2));
        assert_eq!(Ssp::with_strata(9).grid, (3, 3));
        assert_eq!(Ssp::with_strata(100).grid, (10, 10));
    }

    #[test]
    fn budget_and_config_validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let est = Ssp {
            grid: (10, 1),
            feature_dims: (0, 0),
            min_per_stratum: 2,
        };
        // 10 strata × 2 minimum > budget 5.
        assert!(est.estimate(&problem, 5, &mut rng).is_err());
        let bad_dims = Ssp {
            feature_dims: (0, 3),
            ..Ssp::default()
        };
        assert!(bad_dims.estimate(&problem, 50, &mut rng).is_err());
    }
}
