//! Sequential LWS: learned weighted sampling with early stopping.
//!
//! The Des Raj estimator produces *ordered* estimates — a running mean
//! and variance after every draw (§4.1: "running estimates of mean and
//! variance as samples are being drawn"). The paper's conclusion points
//! at using them to stop early once the estimate is good enough; this
//! estimator implements that: it draws like LWS but stops as soon as
//! the running confidence interval is narrower than a target relative
//! half-width, spending less of the budget on easy instances.

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::ScoredPopulation;
use lts_sampling::{weighted_sample_es, DesRaj};
use rand::rngs::StdRng;

/// LWS with early stopping on the running Des Raj interval.
#[derive(Debug, Clone, Copy)]
pub struct LwsSequential {
    /// Learning-phase configuration.
    pub learn: LearnPhaseConfig,
    /// Fraction of the budget for classifier training.
    pub train_frac: f64,
    /// Probability floor ε for the sampling weights.
    pub epsilon: f64,
    /// Stop when the CI half-width falls below this fraction of the
    /// current count estimate (e.g. `0.1` = ±10%).
    pub target_relative_halfwidth: f64,
    /// Minimum sampling-phase draws before stopping is allowed (the
    /// running variance needs some support).
    pub min_draws: usize,
}

impl Default for LwsSequential {
    fn default() -> Self {
        Self {
            learn: LearnPhaseConfig::default(),
            train_frac: 0.25,
            epsilon: 0.05,
            target_relative_halfwidth: 0.10,
            min_draws: 30,
        }
    }
}

impl CountEstimator for LwsSequential {
    fn name(&self) -> &'static str {
        "LWS-seq"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        if self.target_relative_halfwidth.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::InvalidConfig {
                message: "target_relative_halfwidth must be positive".into(),
            });
        }
        if !(0.0..1.0).contains(&self.train_frac) || self.train_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("train_frac must be in (0, 1), got {}", self.train_frac),
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("epsilon must be in (0, 1], got {}", self.epsilon),
            });
        }
        if budget < 4 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: 4,
                reason: "sequential LWS needs ≥ 2 training and ≥ 2 sampling-phase labels".into(),
            });
        }
        let train_budget = ((budget as f64 * self.train_frac).round() as usize).clamp(2, budget);
        let max_draws = budget - train_budget;
        if max_draws < 2 {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: train_budget + 2,
                reason: "sequential LWS needs at least 2 sampling-phase labels".into(),
            });
        }

        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);
        let mut notes = Vec::new();

        let lm = timer.phase(Phase::Learn, || {
            run_learn_phase(problem, &mut labeler, train_budget, &self.learn, rng)
        })?;

        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            // Shared scoring pipeline over O \ S_L, then ε-floored
            // weights for the sequential PPS walk.
            let scored = ScoredPopulation::score_rest(problem, lm.model.as_ref(), &lm.labeled)?;
            let draws_wanted = max_draws.min(scored.len());
            let weights = scored.weights(self.epsilon);
            // Draw the full plan up front (cheap); label lazily until
            // the stopping rule fires. The stopping rule cannot fire
            // before `min_draws`, so that prefix is labeled as one
            // batched oracle call; past it the walk stays one-at-a-time
            // because each label feeds the next stopping decision.
            let plan = weighted_sample_es(rng, &weights, draws_wanted)?;
            let prefix = self.min_draws.max(2).min(plan.len());
            let prefix_objs: Vec<usize> = plan[..prefix]
                .iter()
                .map(|d| scored.members()[d.index])
                .collect();
            labeler.label_batch(&prefix_objs)?;
            let mut desraj = DesRaj::new(scored.len())?;
            let mut used = 0usize;
            for d in &plan {
                let label = labeler.label(scored.members()[d.index])?;
                desraj.push(label, d.initial_probability)?;
                used += 1;
                if used >= self.min_draws.max(2) {
                    let est = desraj.count_estimate(problem.level())?;
                    let half = 0.5 * est.interval.width();
                    let denom = est.count.abs().max(1.0);
                    if half / denom <= self.target_relative_halfwidth {
                        notes.push(format!(
                            "stopped early after {used}/{draws_wanted} draws (±{:.1}% reached)",
                            half / denom * 100.0
                        ));
                        break;
                    }
                }
            }
            Ok(desraj.count_estimate(problem.level())?)
        })?;

        Ok(EstimateReport {
            estimate: estimate.shifted(lm.positives() as f64),
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes,
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, noisy_problem};
    use crate::spec::ClassifierSpec;
    use rand::SeedableRng;

    fn seq_knn(target: f64) -> LwsSequential {
        LwsSequential {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            target_relative_halfwidth: target,
            min_draws: 10,
            ..LwsSequential::default()
        }
    }

    #[test]
    fn stops_early_on_easy_instances() {
        // Perfectly learnable predicate: the running CI collapses fast.
        let problem = line_problem(800, 0.4);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(5);
        let r = seq_knn(0.15).estimate(&problem, 300, &mut rng).unwrap();
        assert!(r.evals < 300, "should stop early, spent {} of 300", r.evals);
        assert!((r.count() - truth).abs() / truth < 0.3);
        assert!(!r.notes.is_empty(), "early stop should be noted");
    }

    #[test]
    fn spends_more_on_hard_instances() {
        let easy = line_problem(600, 0.4);
        let hard = noisy_problem(600, 0.4, 0.35, 3);
        let est = seq_knn(0.12);
        let mut easy_evals = 0usize;
        let mut hard_evals = 0usize;
        for t in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(100 + t);
            easy_evals += est.estimate(&easy, 240, &mut rng).unwrap().evals;
            let mut rng = StdRng::seed_from_u64(100 + t);
            hard_evals += est.estimate(&hard, 240, &mut rng).unwrap().evals;
        }
        assert!(
            hard_evals > easy_evals,
            "hard {hard_evals} should exceed easy {easy_evals}"
        );
    }

    #[test]
    fn exhausts_budget_when_target_unreachable() {
        let problem = noisy_problem(400, 0.5, 0.4, 7);
        let mut rng = StdRng::seed_from_u64(9);
        // ±0.1% is unreachable with 100 labels on a noisy instance.
        let r = seq_knn(0.001).estimate(&problem, 100, &mut rng).unwrap();
        assert_eq!(r.evals, 100);
        assert!(r.notes.is_empty());
    }

    #[test]
    fn remains_unbiased() {
        let problem = noisy_problem(300, 0.3, 0.2, 11);
        let truth = problem.exact_count().unwrap() as f64;
        let est = seq_knn(0.10);
        let mut sum = 0.0;
        let trials = 200u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(50_000 + u64::from(t));
            sum += est.estimate(&problem, 80, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 10.0, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let bad = LwsSequential {
            target_relative_halfwidth: 0.0,
            ..seq_knn(0.1)
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        assert!(seq_knn(0.1).estimate(&problem, 2, &mut rng).is_err());
    }
}
