//! The estimator suite behind one trait.

pub(crate) mod lss;
pub(crate) mod lws;
mod lws_ht;
mod lws_seq;
mod ql;
mod srs;
mod ssn;
mod ssp;

pub use lss::{Lss, LssBudgetSplit, LssLayout, PilotHandling, PilotSource};
pub use lws::Lws;
pub use lws_ht::LwsHt;
pub use lws_seq::LwsSequential;
pub use ql::{Qlac, Qlcc};
pub use srs::Srs;
pub use ssn::Ssn;
pub use ssp::Ssp;

use crate::error::CoreResult;
use crate::problem::CountingProblem;
use crate::report::EstimateReport;
use rand::rngs::StdRng;

/// An estimator of `C(O, q)` operating under a labeling budget: the
/// maximum number of **unique** `q` evaluations it may spend.
pub trait CountEstimator: Send + Sync {
    /// Short display name ("SRS", "LSS", …) matching the paper.
    fn name(&self) -> &'static str;

    /// Whether the returned interval is statistically meaningful
    /// (quantification learning yields point estimates only).
    fn provides_interval(&self) -> bool {
        true
    }

    /// Run one estimate with the given labeling budget.
    ///
    /// # Errors
    ///
    /// Returns configuration/budget errors or propagated substrate
    /// errors.
    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport>;
}

/// Validate the budget against the population: every estimator needs
/// `1 ≤ budget ≤ N`.
pub(crate) fn check_budget(problem: &CountingProblem, budget: usize) -> CoreResult<()> {
    if budget == 0 {
        return Err(crate::error::CoreError::BudgetTooSmall {
            budget,
            required: 1,
            reason: "zero labeling budget".into(),
        });
    }
    if budget > problem.n() {
        return Err(crate::error::CoreError::BudgetExceedsPopulation {
            budget,
            population: problem.n(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::check_budget;
    use crate::error::CoreError;
    use crate::problem::tests_support::line_problem;

    #[test]
    fn check_budget_classifies_both_failure_modes() {
        let problem = line_problem(10, 0.5);
        assert!(matches!(
            check_budget(&problem, 0),
            Err(CoreError::BudgetTooSmall { budget: 0, .. })
        ));
        // Over-population is its own variant, not a "too small" error.
        match check_budget(&problem, 11) {
            Err(CoreError::BudgetExceedsPopulation { budget, population }) => {
                assert_eq!(budget, 11);
                assert_eq!(population, 10);
            }
            other => panic!("expected BudgetExceedsPopulation, got {other:?}"),
        }
        assert!(check_budget(&problem, 1).is_ok());
        assert!(check_budget(&problem, 10).is_ok());
    }
}
