//! LSS: Learned Stratified Sampling (paper §4.2) — the flagship
//! estimator.
//!
//! Pipeline:
//! 1. **Learn** (shared with LWS/QL): SRS + classifier training on
//!    `train_frac` of the budget; optional uncertainty-sampling
//!    augmentation.
//! 2. **Order**: score every object of `O' = O \ S_L` and order by
//!    `(g, id)` — only the *ordering* is used, which is what makes LSS
//!    robust to a badly calibrated classifier.
//! 3. **Stage 1 (design)**: draw a pilot `SI` by SRS, label it, and run
//!    a stratification-design algorithm (DirSol / LogBdr / DynPgm /
//!    DynPgmP, or a fixed layout for the §5.4.1 ablation) to jointly
//!    choose boundaries and (via Neyman or proportional allocation) the
//!    stage-2 sample sizes.
//! 4. **Stage 2**: draw `SII` per stratum, label, and estimate with the
//!    stratified estimator (Eq. 1).
//!
//! Labels from `S_L` and `SI` are exact, so by default the estimator
//! counts them exactly and estimates only each stratum's unlabeled
//! remainder ([`PilotHandling::ExactRemainder`], unbiased by
//! construction); [`PilotHandling::Textbook`] reproduces the paper's
//! simpler description (strata weighted by their full sizes).

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer, QualityForecast};
use crate::scoring::{OrderedPopulation, ScoredPopulation};
use lts_sampling::{
    allocate, draw_stratified, sample_without_replacement, stratified_count_estimate, StratumSample,
};
use lts_strata::{
    design, fixed_height_cuts, fixed_width_cuts, Allocation, DesignAlgorithm, DesignParams,
    PilotIndex, Stratification, TSelection,
};
use rand::rngs::StdRng;

/// How LSS lays out strata over the score ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LssLayout {
    /// Variance-optimized boundaries via a design algorithm (the paper's
    /// contribution; default DynPgm).
    Optimized(DesignAlgorithm),
    /// Equal-width bands of the score domain (§5.4.1 baseline).
    FixedWidth,
    /// Equal-count bands of the ordering (§5.4.1 baseline; the paper's
    /// worst layout on skewed data).
    FixedHeight,
}

/// What to do with the exactly-labeled pilot when estimating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PilotHandling {
    /// Count `S_L` and `SI` exactly; estimate each stratum's unlabeled
    /// remainder (unbiased; the default).
    #[default]
    ExactRemainder,
    /// The paper's simpler description: weight strata by full sizes and
    /// ignore pilot labels in the estimate (negligible overlap bias).
    Textbook,
}

/// Where the stage-1 design pilot comes from (the paper's footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PilotSource {
    /// A fresh SRS pilot, independent of the learning phase — the
    /// paper's conservative default.
    #[default]
    Fresh,
    /// The fresh pilot **plus** the learning-phase labels `S_L`,
    /// reused as extra design pilots (the "less conservative" reuse the
    /// paper's footnote 3 leaves as future work).
    ///
    /// This reuse is *safe for unbiasedness*: the design (boundaries +
    /// allocation) is fixed before stage-2 draws, and stage-2 samples
    /// remain uniform within each stratum, so conditional unbiasedness
    /// of the stratified estimator is untouched. What reuse can affect
    /// is design *quality*: `S_L` members are scored in-sample (their
    /// scores skew confident) and the uncertainty-augmented part of
    /// `S_L` is concentrated near `g ≈ 0.5`, so the pilot is denser in
    /// uncertain strata than an SRS pilot would be. In exchange the
    /// design sees `|S_L|` extra labels at zero cost.
    ///
    /// Requires [`PilotHandling::ExactRemainder`] (the reused labels
    /// are counted exactly; `Textbook` weighting would double-count
    /// them).
    ReuseLearning,
}

/// Learned stratified sampling.
///
/// Setting the `LSS_DEBUG` environment variable prints the per-run
/// stratification internals (stratum sizes, pilot counts, allocation)
/// to stderr — useful when diagnosing a surprising estimate.
#[derive(Debug, Clone, Copy)]
pub struct Lss {
    /// Learning-phase configuration.
    pub learn: LearnPhaseConfig,
    /// Fraction of the budget for classifier training (paper: 25%).
    pub train_frac: f64,
    /// Fraction of the *sampling* budget used for the stage-1 pilot SI.
    pub pilot_frac: f64,
    /// Number of strata `H` (paper default 4).
    pub n_strata: usize,
    /// Stage-2 allocation rule.
    pub allocation: Allocation,
    /// Strata layout strategy.
    pub layout: LssLayout,
    /// Minimum objects per stratum `N⊔` (`None` = automatic:
    /// `min(n₂ + 1, N'/H)` per the paper's `N⊔ > n` assumption).
    pub min_stratum_size: Option<usize>,
    /// Minimum pilots per stratum `m⊔` (paper ≈ 5; auto-clamped to
    /// `m/H` when the pilot is small).
    pub min_pilots_per_stratum: usize,
    /// Design-granularity ε (powers of `(1+ε)` candidate boundaries).
    pub epsilon: f64,
    /// DynPgm auxiliary-sum bound selection.
    pub t_selection: TSelection,
    /// Pilot-label handling in the final estimate.
    pub pilot_handling: PilotHandling,
    /// Stage-1 pilot source (fresh SRS, or fresh + reused `S_L`).
    pub pilot_source: PilotSource,
}

impl Default for Lss {
    fn default() -> Self {
        Self {
            learn: LearnPhaseConfig::default(),
            train_frac: 0.25,
            pilot_frac: 0.3,
            n_strata: 4,
            allocation: Allocation::Neyman,
            layout: LssLayout::Optimized(DesignAlgorithm::DynPgm),
            min_stratum_size: None,
            min_pilots_per_stratum: 5,
            epsilon: 1.0,
            t_selection: TSelection::Pruned(6),
            pilot_handling: PilotHandling::ExactRemainder,
            pilot_source: PilotSource::Fresh,
        }
    }
}

/// The labeling-budget split of one LSS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LssBudgetSplit {
    /// Labels spent training the proxy classifier.
    pub train: usize,
    /// Labels spent on the stage-1 design pilot `SI`.
    pub pilot: usize,
    /// Labels spent on the stage-2 stratified draw.
    pub stage2: usize,
}

impl Lss {
    pub(crate) fn validate(&self) -> CoreResult<()> {
        if !(0.0..1.0).contains(&self.train_frac) || self.train_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("train_frac must be in (0, 1), got {}", self.train_frac),
            });
        }
        if !(0.0..1.0).contains(&self.pilot_frac) || self.pilot_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("pilot_frac must be in (0, 1), got {}", self.pilot_frac),
            });
        }
        if self.n_strata < 2 {
            return Err(CoreError::InvalidConfig {
                message: "LSS needs at least 2 strata".into(),
            });
        }
        if self.pilot_source == PilotSource::ReuseLearning
            && self.pilot_handling == PilotHandling::Textbook
        {
            return Err(CoreError::InvalidConfig {
                message: "PilotSource::ReuseLearning requires PilotHandling::ExactRemainder \
                          (Textbook weighting would double-count the reused labels)"
                    .into(),
            });
        }
        Ok(())
    }

    /// Split a total labeling budget into the train / pilot / stage-2
    /// shares this configuration implies (the arithmetic both the
    /// one-shot [`CountEstimator::estimate`] path and the warm-start
    /// [`Lss::prepare`] path use).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BudgetTooSmall`] when any phase would
    /// starve.
    pub fn budget_split(&self, budget: usize) -> CoreResult<LssBudgetSplit> {
        let h = self.n_strata;
        if budget < 2 + 3 * h {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: 2 + 3 * h,
                reason: format!(
                    "LSS with H = {h} needs ≥ 2 training, ≥ 2H pilot, and ≥ H stage-2 labels"
                ),
            });
        }
        let train = ((budget as f64 * self.train_frac).round() as usize).clamp(2, budget);
        let sampling_budget = budget - train;
        let pilot = ((sampling_budget as f64 * self.pilot_frac).round() as usize)
            .max(2 * h) // need ≥ 2 pilots per stratum to estimate variance
            .min(sampling_budget.saturating_sub(h));
        let stage2 = sampling_budget.saturating_sub(pilot);
        if pilot < 2 * h || stage2 < h {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: train + 3 * h,
                reason: format!("LSS with H = {h} needs ≥ 2H pilot and ≥ H stage-2 labels"),
            });
        }
        Ok(LssBudgetSplit {
            train,
            pilot,
            stage2,
        })
    }

    /// Choose the stratification for the ordered rest population.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn layout_cuts(
        &self,
        pilot: &PilotIndex,
        sorted_scores: &[f64],
        n_rest: usize,
        stage2_budget: usize,
        notes: &mut Vec<String>,
    ) -> CoreResult<Stratification> {
        match self.layout {
            LssLayout::FixedHeight => {
                let cuts = fixed_height_cuts(n_rest, self.n_strata)?;
                Ok(Stratification {
                    cuts,
                    estimated_variance: f64::NAN,
                })
            }
            LssLayout::FixedWidth => {
                let cuts = fixed_width_cuts(sorted_scores, self.n_strata)?;
                if cuts.len() + 1 < self.n_strata {
                    notes.push(format!(
                        "fixed-width layout collapsed to {} strata",
                        cuts.len() + 1
                    ));
                }
                Ok(Stratification {
                    cuts,
                    estimated_variance: f64::NAN,
                })
            }
            LssLayout::Optimized(algo) => {
                let h = self.n_strata;
                let auto_min = ((stage2_budget + 1).min(n_rest / h)).max(1);
                let min_size = self
                    .min_stratum_size
                    .unwrap_or(auto_min)
                    .min(n_rest / h)
                    .max(1);
                let min_pilots = self.min_pilots_per_stratum.min(pilot.m() / h).max(2);
                let params = DesignParams {
                    n_strata: h,
                    budget: stage2_budget,
                    min_stratum_size: min_size,
                    min_pilots_per_stratum: min_pilots,
                    epsilon: self.epsilon,
                };
                let run = |params: &DesignParams| match algo {
                    DesignAlgorithm::DynPgm => lts_strata::dynpgm(pilot, params, self.t_selection),
                    other => design(pilot, params, self.allocation, other),
                };
                match run(&params) {
                    Ok(s) => Ok(s),
                    Err(lts_strata::StrataError::Infeasible { .. }) => {
                        // A bunched pilot can make the constrained design
                        // infeasible; relax the size constraint, then fall
                        // back to fixed-height — an estimate with a weaker
                        // design always beats no estimate.
                        let relaxed = DesignParams {
                            min_stratum_size: (n_rest / (4 * h)).max(1),
                            min_pilots_per_stratum: 2,
                            ..params
                        };
                        match run(&relaxed) {
                            Ok(s) => {
                                notes.push("design constraints relaxed (pilot too bunched)".into());
                                Ok(s)
                            }
                            Err(_) => {
                                notes.push(
                                    "optimized design infeasible; fixed-height fallback".into(),
                                );
                                Ok(Stratification {
                                    cuts: fixed_height_cuts(n_rest, h)?,
                                    estimated_variance: f64::NAN,
                                })
                            }
                        }
                    }
                    Err(e) => Err(e.into()),
                }
            }
        }
    }
}

impl CountEstimator for Lss {
    fn name(&self) -> &'static str {
        "LSS"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        self.validate()?;
        let mut notes = Vec::new();
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);

        // ------------------------------------------------------ phase 1
        let split = self.budget_split(budget)?;
        let (train_budget, pilot_budget, stage2_budget) = (split.train, split.pilot, split.stage2);

        let lm = timer.phase(Phase::Learn, || {
            run_learn_phase(problem, &mut labeler, train_budget, &self.learn, rng)
        })?;

        // ------------------------------------------- score + order rest
        //
        // With PilotSource::Fresh the ordering covers O' = O \ S_L (the
        // paper's description); with ReuseLearning it covers all of O so
        // the S_L labels can serve as design pilots at their own
        // positions. `train_positions` are the positions of S_L within
        // the ordering (empty in Fresh mode). Scoring and ordering run
        // through the shared pipeline: partition-parallel batch scoring,
        // then the stable (score, id) total order.
        let reuse = self.pilot_source == PilotSource::ReuseLearning;
        let (ordered, train_positions) = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            let scored = if reuse {
                ScoredPopulation::score_all(problem, lm.model.as_ref())?
            } else {
                ScoredPopulation::score_rest(problem, lm.model.as_ref(), &lm.labeled)?
            };
            let ordered = scored.into_ordered();
            let mut in_train = vec![false; problem.n()];
            for &i in &lm.labeled {
                in_train[i] = true;
            }
            let train_positions = ordered.positions_marked(&in_train);
            Ok((ordered, train_positions))
        })?;
        let n_rest = ordered.n();
        let n_drawable = n_rest - train_positions.len();
        if pilot_budget + stage2_budget > n_drawable {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: lm.labeled.len() + n_drawable,
                reason: "sampling budget exceeds remaining objects".into(),
            });
        }

        // --------------------------------------------- stage 1 (design)
        let (pilot_positions, _pilot_index, stratification) =
            timer.phase(Phase::Design, || -> CoreResult<_> {
                // Draw SI uniformly over *positions* of the ordering
                // (equivalent to uniform over objects). In reuse mode the
                // S_L positions are excluded from the draw and injected
                // afterwards with their already-known labels.
                let mut positions = if reuse {
                    let mut is_train = vec![false; n_rest];
                    for &pos in &train_positions {
                        is_train[pos] = true;
                    }
                    let candidates: Vec<usize> = (0..n_rest).filter(|&p| !is_train[p]).collect();
                    sample_without_replacement(rng, pilot_budget, candidates.len())?
                        .into_iter()
                        .map(|i| candidates[i])
                        .collect()
                } else {
                    sample_without_replacement(rng, pilot_budget, n_rest)?
                };
                positions.extend_from_slice(&train_positions);
                // One batched oracle call for the pilot; S_L labels are
                // already cached by the labeler, so the reused entries
                // cost no extra q evaluations.
                let pilot_objs = ordered.objects_at(&positions);
                let labels = labeler.label_batch(&pilot_objs)?;
                let entries: Vec<(usize, bool)> = positions.iter().copied().zip(labels).collect();
                // Partition-aligned pilot assembly (per-partition
                // splits merged by `merge_partition_pilots`),
                // bit-identical to direct PilotIndex construction from
                // the drawn positions.
                let pilot = ordered.pilot_index(&entries)?;
                let strat = self.layout_cuts(
                    &pilot,
                    ordered.sorted_scores(),
                    n_rest,
                    stage2_budget,
                    &mut notes,
                )?;
                let sorted_positions = pilot.positions().to_vec();
                Ok((sorted_positions, pilot, strat))
            })?;

        // --------------------------------------------- stage 2 (sample)
        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            let outcome = stage2_estimate(
                self,
                &ordered,
                &pilot_positions,
                &stratification,
                stage2_budget,
                problem.level(),
                &mut labeler,
                rng,
            )?;
            // In reuse mode the S_L positions are members of the pilot,
            // so their positives are already inside the outcome's pilot
            // positives.
            let shift = match (self.pilot_handling, reuse) {
                (PilotHandling::ExactRemainder, true) => outcome.pilot_positives as f64,
                (PilotHandling::ExactRemainder, false) => {
                    (lm.positives() + outcome.pilot_positives) as f64
                }
                (PilotHandling::Textbook, _) => lm.positives() as f64,
            };
            Ok((outcome.base.shifted(shift), outcome.forecast))
        })?;
        let (estimate, forecast) = estimate;

        Ok(EstimateReport {
            estimate,
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes,
            forecast: Some(forecast),
        })
    }
}

/// The product of one stage-2 run, before the exact-count shift.
pub(crate) struct Stage2Outcome {
    /// Stratified estimate of the strata populations (remainders under
    /// `ExactRemainder`, full sizes under `Textbook`), unshifted.
    pub(crate) base: lts_sampling::CountEstimate,
    /// Design-time quality forecast (Eq. 4 with pilot deviations and
    /// the chosen allocation).
    pub(crate) forecast: QualityForecast,
    /// Exact positives among the pilot members.
    pub(crate) pilot_positives: usize,
}

/// LSS stage 2, shared by the one-shot estimate path and the warm-start
/// resume path: allocate the stage-2 budget over the designed strata
/// from the pilot variances, draw, label, and run the stratified
/// estimator. All pilot labels must already be in the labeler's cache
/// (they are after stage 1, or after a warm-start preload), so only the
/// fresh stage-2 draws touch the oracle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage2_estimate(
    lss: &Lss,
    ordered: &OrderedPopulation,
    pilot_positions: &[usize],
    stratification: &Stratification,
    stage2_budget: usize,
    level: f64,
    labeler: &mut Labeler<'_>,
    rng: &mut StdRng,
) -> CoreResult<Stage2Outcome> {
    let n_rest = ordered.n();
    let sizes = stratification.stratum_sizes(n_rest);
    let n_strata_eff = sizes.len();

    // Pilot members per stratum (exact labels known).
    let mut pilot_in = vec![Vec::<usize>::new(); n_strata_eff];
    for &pos in pilot_positions {
        pilot_in[stratification.stratum_of(pos)].push(pos);
    }

    // Remaining members (positions) per stratum.
    let mut remainder: Vec<Vec<usize>> = Vec::with_capacity(n_strata_eff);
    {
        let mut pilot_set = vec![false; n_rest];
        for &pos in pilot_positions {
            pilot_set[pos] = true;
        }
        let mut start = 0usize;
        for &size in &sizes {
            let end = start + size;
            remainder.push((start..end).filter(|&p| !pilot_set[p]).collect());
            start = end;
        }
    }

    // Allocation weights from pilot s_h (Neyman) or sizes
    // (proportional).
    let mut s_hats = Vec::with_capacity(n_strata_eff);
    for members in &pilot_in {
        // All pilot labels are cached, so this batch is free.
        let objs = ordered.objects_at(members);
        let positives = labeler.count_positives(&objs)?;
        let sample = StratumSample {
            population: members.len().max(1),
            sampled: members.len(),
            positives,
        };
        // Laplace-smoothed s for allocation: a homogeneous pilot
        // must not starve a stratum of stage-2 samples.
        s_hats.push(sample.s_for_allocation());
    }
    let available: Vec<usize> = remainder.iter().map(Vec::len).collect();
    let weights: Vec<f64> = match lss.allocation {
        Allocation::Neyman => sizes
            .iter()
            .zip(&s_hats)
            .map(|(&n_h, &s)| n_h as f64 * s)
            .collect(),
        Allocation::Proportional => sizes.iter().map(|&n_h| n_h as f64).collect(),
    };
    let min_per = 1usize;
    let alloc = allocate(&weights, &available, stage2_budget, min_per)?;

    // Design-time quality forecast (the conclusion's future-work
    // sketch): Eq. (4) evaluated with the pilot s_h and the
    // *chosen* allocation, before any stage-2 label is drawn.
    // Populations match what stage 2 will estimate over.
    let forecast = {
        let mut var = 0.0;
        for (s, &n_h) in alloc.iter().enumerate() {
            let pop = match lss.pilot_handling {
                PilotHandling::ExactRemainder => available[s],
                PilotHandling::Textbook => sizes[s],
            } as f64;
            let s2 = s_hats[s] * s_hats[s];
            if n_h > 0 && pop > 0.0 {
                // Per-stratum variance of the count with the
                // finite-population correction.
                let fpc = (pop - n_h as f64) / pop.max(1.0);
                var += pop * pop * s2 / n_h as f64 * fpc;
            }
        }
        let se = var.max(0.0).sqrt();
        let z = lts_stats::z_critical(level).unwrap_or(1.96);
        QualityForecast {
            predicted_se: se,
            predicted_halfwidth: z * se,
            stage2_samples: alloc.iter().sum(),
        }
    };
    if std::env::var_os("LSS_DEBUG").is_some() {
        eprintln!(
            "LSS debug: sizes={sizes:?} pilots={:?} s_hats={s_hats:?} alloc={alloc:?} cuts={:?}",
            pilot_in.iter().map(Vec::len).collect::<Vec<_>>(),
            stratification.cuts,
        );
    }

    let draws = draw_stratified(rng, &remainder, &alloc)?;
    let mut samples = Vec::with_capacity(n_strata_eff);
    let mut pilot_positives = 0usize;
    for (s, drawn) in draws.iter().enumerate() {
        // One batched oracle call per stratum's stage-2 draw;
        // the pilot recount below hits only cached labels.
        let drawn_objs = ordered.objects_at(drawn);
        let positives = labeler.count_positives(&drawn_objs)?;
        let pilot_objs = ordered.objects_at(&pilot_in[s]);
        pilot_positives += labeler.count_positives(&pilot_objs)?;
        let population = match lss.pilot_handling {
            PilotHandling::ExactRemainder => available[s],
            PilotHandling::Textbook => sizes[s],
        };
        samples.push(StratumSample {
            population,
            sampled: drawn.len(),
            positives,
        });
    }
    let base = stratified_count_estimate(&samples, level)?;
    Ok(Stage2Outcome {
        base,
        forecast,
        pilot_positives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, noisy_problem};
    use crate::spec::ClassifierSpec;
    use rand::SeedableRng;

    fn lss_knn() -> Lss {
        Lss {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            min_pilots_per_stratum: 2,
            ..Lss::default()
        }
    }

    #[test]
    fn respects_budget_and_lands_near_truth() {
        let problem = line_problem(600, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(7);
        let r = lss_knn().estimate(&problem, 120, &mut rng).unwrap();
        assert!(r.evals <= 120, "evals {}", r.evals);
        assert!((r.count() - truth).abs() < 60.0, "{} vs {truth}", r.count());
        assert!(r.has_interval);
    }

    #[test]
    fn unbiased_over_trials_exact_remainder() {
        let problem = noisy_problem(400, 0.3, 0.15, 17);
        let truth = problem.exact_count().unwrap() as f64;
        let est = lss_knn();
        let mut sum = 0.0;
        let trials = 200u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(60_000 + u64::from(t));
            sum += est.estimate(&problem, 80, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 10.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn beats_srs_variance_with_good_classifier() {
        // The paper's setting: confident extremes plus a wide uncertain
        // band. The pilot sees the band's variance, the design isolates
        // it, and Neyman concentrates samples there.
        let problem = crate::problem::tests_support::ramp_problem(800, 0.25, 0.65, 2024);
        let truth = problem.exact_count().unwrap() as f64;
        let lss = Lss {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 7 },
                ..LearnPhaseConfig::default()
            },
            min_pilots_per_stratum: 3,
            ..Lss::default()
        };
        let srs = super::super::Srs::default();
        let trials = 40u32;
        let (mut sse_lss, mut sse_srs) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(800 + u64::from(t));
            let e = lss.estimate(&problem, 200, &mut rng).unwrap().count();
            sse_lss += (e - truth) * (e - truth);
            let mut rng = StdRng::seed_from_u64(800 + u64::from(t));
            let e = srs.estimate(&problem, 200, &mut rng).unwrap().count();
            sse_srs += (e - truth) * (e - truth);
        }
        assert!(
            sse_lss < sse_srs,
            "LSS SSE {sse_lss} should beat SRS SSE {sse_srs}"
        );
    }

    #[test]
    fn fixed_layouts_work() {
        let problem = line_problem(400, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        for layout in [LssLayout::FixedHeight, LssLayout::FixedWidth] {
            let est = Lss {
                layout,
                ..lss_knn()
            };
            let mut rng = StdRng::seed_from_u64(21);
            let r = est.estimate(&problem, 90, &mut rng).unwrap();
            assert!(
                (r.count() - truth).abs() < 80.0,
                "{layout:?}: {} vs {truth}",
                r.count()
            );
        }
    }

    #[test]
    fn textbook_pilot_handling_works() {
        let problem = line_problem(400, 0.4);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            pilot_handling: PilotHandling::Textbook,
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let r = est.estimate(&problem, 90, &mut rng).unwrap();
        assert!((r.count() - truth).abs() < 80.0);
    }

    #[test]
    fn dirsol_layout_with_three_strata() {
        let problem = line_problem(500, 0.3);
        let est = Lss {
            n_strata: 3,
            layout: LssLayout::Optimized(DesignAlgorithm::DirSol),
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(41);
        let r = est.estimate(&problem, 120, &mut rng).unwrap();
        let truth = problem.exact_count().unwrap() as f64;
        assert!((r.count() - truth).abs() < 80.0);
    }

    #[test]
    fn logbdr_layout_works_end_to_end() {
        let problem = line_problem(500, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            n_strata: 3,
            layout: LssLayout::Optimized(DesignAlgorithm::LogBdr),
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(43);
        let r = est.estimate(&problem, 120, &mut rng).unwrap();
        assert!((r.count() - truth).abs() < 80.0, "{} vs {truth}", r.count());
        assert!(r.evals <= 120);
    }

    #[test]
    fn dynpgmp_layout_with_proportional_allocation() {
        let problem = line_problem(500, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            allocation: Allocation::Proportional,
            layout: LssLayout::Optimized(DesignAlgorithm::DynPgmP),
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(47);
        let r = est.estimate(&problem, 120, &mut rng).unwrap();
        assert!((r.count() - truth).abs() < 80.0, "{} vs {truth}", r.count());
    }

    #[test]
    fn random_classifier_still_unbiased() {
        // §5.4.4: with the Random classifier LSS degrades to ~stratified
        // sampling quality but must remain correct.
        let problem = line_problem(300, 0.35);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Random,
                ..LearnPhaseConfig::default()
            },
            min_pilots_per_stratum: 2,
            ..Lss::default()
        };
        let mut sum = 0.0;
        let trials = 150u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(70_000 + u64::from(t));
            sum += est.estimate(&problem, 70, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 12.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn forecast_is_reported_and_sane() {
        let problem = line_problem(600, 0.25);
        let mut rng = StdRng::seed_from_u64(7);
        let r = lss_knn().estimate(&problem, 120, &mut rng).unwrap();
        let f = r.forecast.expect("LSS reports a design-time forecast");
        assert!(f.predicted_se.is_finite() && f.predicted_se >= 0.0);
        assert!(f.predicted_halfwidth >= f.predicted_se, "z ≥ 1 at 95%");
        assert!(f.stage2_samples > 0 && f.stage2_samples <= 120);
    }

    #[test]
    fn forecast_tightens_with_budget() {
        let problem = line_problem(800, 0.3);
        let est = lss_knn();
        let fc = |budget: usize| {
            let trials = 15u32;
            let mut sum = 0.0;
            for t in 0..trials {
                let mut rng = StdRng::seed_from_u64(4_000 + u64::from(t));
                sum += est
                    .estimate(&problem, budget, &mut rng)
                    .unwrap()
                    .forecast
                    .unwrap()
                    .predicted_se;
            }
            sum / f64::from(trials)
        };
        let (small, large) = (fc(80), fc(320));
        assert!(
            large < small,
            "4× budget must forecast a smaller SE: {large} vs {small}"
        );
    }

    #[test]
    fn forecast_tracks_realized_dispersion() {
        // The forecast is useful if it predicts the right order of
        // magnitude of the realized sampling error before stage 2 runs.
        let problem = noisy_problem(500, 0.3, 0.2, 23);
        let truth = problem.exact_count().unwrap() as f64;
        let est = lss_knn();
        let trials = 60u32;
        let (mut sse, mut fc_sum) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(12_000 + u64::from(t));
            let r = est.estimate(&problem, 100, &mut rng).unwrap();
            let e = r.count() - truth;
            sse += e * e;
            fc_sum += r.forecast.unwrap().predicted_se;
        }
        let realized_rmse = (sse / f64::from(trials)).sqrt();
        let mean_forecast = fc_sum / f64::from(trials);
        // Same order of magnitude: the forecast ignores the exactly
        // counted pilots' contribution and uses smoothed s_h, so demand
        // agreement within 4× either way (not equality).
        assert!(
            mean_forecast < 4.0 * realized_rmse && realized_rmse < 4.0 * mean_forecast,
            "forecast {mean_forecast} vs realized RMSE {realized_rmse}"
        );
    }

    #[test]
    fn reuse_learning_lands_near_truth_with_same_evals() {
        let problem = line_problem(600, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            pilot_source: PilotSource::ReuseLearning,
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let r = est.estimate(&problem, 120, &mut rng).unwrap();
        assert!(
            r.evals <= 120,
            "reused labels must not cost evals: {}",
            r.evals
        );
        assert!((r.count() - truth).abs() < 60.0, "{} vs {truth}", r.count());
    }

    #[test]
    fn reuse_learning_stays_unbiased() {
        // Footnote 3's worry is bias from reusing S_L; the design-only
        // reuse must keep the estimator mean on the truth.
        let problem = noisy_problem(400, 0.3, 0.15, 17);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            pilot_source: PilotSource::ReuseLearning,
            ..lss_knn()
        };
        let mut sum = 0.0;
        let trials = 200u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(90_000 + u64::from(t));
            sum += est.estimate(&problem, 80, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 10.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn reuse_learning_rejects_textbook_handling() {
        let problem = line_problem(200, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let bad = Lss {
            pilot_source: PilotSource::ReuseLearning,
            pilot_handling: PilotHandling::Textbook,
            ..lss_knn()
        };
        assert!(matches!(
            bad.estimate(&problem, 60, &mut rng),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reuse_learning_supports_smaller_pilot_fraction() {
        // The point of reuse: the free S_L pilots let pilot_frac shrink,
        // shifting budget to stage 2 while the design still has labels.
        let problem = line_problem(600, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Lss {
            pilot_source: PilotSource::ReuseLearning,
            pilot_frac: 0.15,
            ..lss_knn()
        };
        let mut rng = StdRng::seed_from_u64(13);
        let r = est.estimate(&problem, 120, &mut rng).unwrap();
        assert!((r.count() - truth).abs() < 60.0);
    }

    #[test]
    fn validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let bad = Lss {
            n_strata: 1,
            ..lss_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        let bad = Lss {
            train_frac: 0.0,
            ..lss_knn()
        };
        assert!(bad.estimate(&problem, 50, &mut rng).is_err());
        // Tiny budget.
        assert!(lss_knn().estimate(&problem, 8, &mut rng).is_err());
    }

    #[test]
    fn timings_report_design_phase() {
        let problem = line_problem(500, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let r = lss_knn().estimate(&problem, 120, &mut rng).unwrap();
        // Design phase must be measured (nonzero) and total covers all.
        assert!(r.timings.total >= r.timings.overhead());
    }
}
