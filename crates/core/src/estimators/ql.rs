//! Quantification learning: Classify-and-Count (QLCC) and Adjusted
//! Count (QLAC) — paper §3.2.
//!
//! Both spend the whole budget labeling a training sample `S`, fit a
//! classifier, and count predicted positives over the test set `O \ S`.
//! QLAC additionally estimates `t̂pr`/`f̂pr` by k-fold cross-validation
//! and applies Eq. (2):
//! `C_adj = (C_obs − f̂pr·|O\S|) / (t̂pr − f̂pr)`.
//!
//! Neither method provides a statistical confidence interval — the
//! reports carry a degenerate interval and `has_interval = false`.

use super::{check_budget, CountEstimator};
use crate::error::CoreResult;
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::ScoredPopulation;
use lts_learn::cross_validated_rates;
use lts_sampling::CountEstimate;
use rand::rngs::StdRng;
use rand::RngExt;

/// Classify-and-Count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Qlcc {
    /// Learning-phase configuration (classifier + optional
    /// augmentation).
    pub learn: LearnPhaseConfig,
}

/// Adjusted Count (Eq. 2), falling back to Classify-and-Count when the
/// estimated rates make the adjustment ill-conditioned.
#[derive(Debug, Clone, Copy)]
pub struct Qlac {
    /// Learning-phase configuration.
    pub learn: LearnPhaseConfig,
    /// Cross-validation folds for the rate estimates (paper: k-fold).
    pub folds: usize,
}

impl Default for Qlac {
    fn default() -> Self {
        Self {
            learn: LearnPhaseConfig::default(),
            folds: 5,
        }
    }
}

/// Shared: train on the full budget, count predicted positives over the
/// rest. Returns (model artifacts, observed count, rest size, report
/// scaffolding).
struct QlRun {
    labeled: Vec<usize>,
    labels: Vec<bool>,
    train_positives: usize,
    observed: usize,
    rest_len: usize,
    timer: PhaseTimer,
    evals: usize,
}

fn run_ql(
    problem: &CountingProblem,
    budget: usize,
    learn: &LearnPhaseConfig,
    rng: &mut StdRng,
) -> CoreResult<QlRun> {
    check_budget(problem, budget)?;
    let mut timer = PhaseTimer::new();
    let mut labeler = Labeler::new(problem);
    let lm = timer.phase(Phase::Learn, || {
        run_learn_phase(problem, &mut labeler, budget, learn, rng)
    })?;
    let observed = timer.phase(Phase::Phase2, || -> CoreResult<usize> {
        // Shared scoring pipeline over the test set O \ S; "predicted
        // positive" is score ≥ 0.5, exactly the per-row `predict`.
        let scored = ScoredPopulation::score_rest(problem, lm.model.as_ref(), &lm.labeled)?;
        Ok(scored.count_at_least(0.5))
    })?;
    let rest_len = problem.n() - lm.labeled.len();
    Ok(QlRun {
        train_positives: lm.positives(),
        labeled: lm.labeled,
        labels: lm.labels,
        observed,
        rest_len,
        timer,
        evals: labeler.unique_evals(),
    })
}

impl CountEstimator for Qlcc {
    fn name(&self) -> &'static str {
        "QLCC"
    }

    fn provides_interval(&self) -> bool {
        false
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        let run = run_ql(problem, budget, &self.learn, rng)?;
        let count = (run.observed + run.train_positives) as f64;
        Ok(EstimateReport {
            estimate: CountEstimate::exact(count, problem.level()),
            has_interval: false,
            evals: run.evals,
            timings: run.timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

impl CountEstimator for Qlac {
    fn name(&self) -> &'static str {
        "QLAC"
    }

    fn provides_interval(&self) -> bool {
        false
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        let mut run = run_ql(problem, budget, &self.learn, rng)?;
        let mut notes = Vec::new();

        // k-fold CV on the training sample for t̂pr / f̂pr.
        let folds = self.folds.clamp(2, run.labeled.len().max(2));
        let spec = self.learn.spec;
        let cv_seed = rng.random::<u64>();
        let rates = run.timer.phase(Phase::Phase2, || {
            let x = problem.features().gather(&run.labeled);
            cross_validated_rates(&x, &run.labels, folds, cv_seed, || spec.build(cv_seed))
        })?;

        let rest = run.rest_len as f64;
        let adjusted = match (rates.tpr, rates.fpr) {
            (Some(tpr), Some(fpr)) if (tpr - fpr).abs() > 1e-6 => {
                let adj = (run.observed as f64 - fpr * rest) / (tpr - fpr);
                adj.clamp(0.0, rest)
            }
            _ => {
                notes
                    .push("QLAC fell back to classify-and-count: t̂pr − f̂pr ill-conditioned".into());
                run.observed as f64
            }
        };
        let count = adjusted + run.train_positives as f64;
        Ok(EstimateReport {
            estimate: CountEstimate::exact(count, problem.level()),
            has_interval: false,
            evals: run.evals,
            timings: run.timer.finish(),
            estimator: self.name().into(),
            notes,
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, noisy_problem};
    use crate::spec::ClassifierSpec;
    use lts_learn::active::AugmentConfig;
    use rand::SeedableRng;

    #[test]
    fn qlcc_accurate_with_learnable_predicate() {
        let problem = line_problem(500, 0.4);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let est = Qlcc {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = est.estimate(&problem, 60, &mut rng).unwrap();
        assert!(r.evals <= 60);
        assert!(!r.has_interval);
        assert!((r.count() - truth).abs() < 30.0, "{} vs {truth}", r.count());
    }

    #[test]
    fn qlac_corrects_biased_classifier() {
        // Noisy labels make the classifier imperfect; QLAC's adjustment
        // should not be wildly worse than QLCC and often better.
        let problem = noisy_problem(600, 0.3, 0.15, 99);
        let truth = problem.exact_count().unwrap() as f64;
        let cc = Qlcc {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 5 },
                ..LearnPhaseConfig::default()
            },
        };
        let ac = Qlac {
            learn: cc.learn,
            folds: 4,
        };
        let trials = 40u32;
        let (mut err_cc, mut err_ac) = (0.0, 0.0);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(3000 + u64::from(t));
            err_cc += (cc.estimate(&problem, 90, &mut rng).unwrap().count() - truth).abs();
            let mut rng = StdRng::seed_from_u64(3000 + u64::from(t));
            err_ac += (ac.estimate(&problem, 90, &mut rng).unwrap().count() - truth).abs();
        }
        // AC should be in the same ballpark or better on average.
        assert!(
            err_ac <= err_cc * 1.5 + trials as f64,
            "AC total err {err_ac} vs CC {err_cc}"
        );
    }

    #[test]
    fn qlac_fallback_on_degenerate_rates() {
        // A single-class problem: CV finds no negatives → fpr undefined.
        let problem = line_problem(100, 1.0); // everything positive
        let est = Qlac::default();
        let mut rng = StdRng::seed_from_u64(8);
        let r = est.estimate(&problem, 30, &mut rng).unwrap();
        // Fallback notes present or adjustment handled; count close to N.
        assert!(r.count() >= 90.0, "count {}", r.count());
    }

    #[test]
    fn augmentation_does_not_overspend() {
        let problem = line_problem(400, 0.5);
        problem.reset_meter();
        let est = Qlcc {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                augment: Some(AugmentConfig {
                    steps: 2,
                    per_step: 10,
                    pool_size: 100,
                }),
                model_seed: 0,
            },
        };
        let mut rng = StdRng::seed_from_u64(11);
        let r = est.estimate(&problem, 50, &mut rng).unwrap();
        assert!(r.evals <= 50, "evals {}", r.evals);
    }
}
