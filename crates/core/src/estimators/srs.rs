//! SRS: simple random sampling (paper §3.1).

use super::{check_budget, CountEstimator};
use crate::error::CoreResult;
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use lts_sampling::{sample_without_replacement, srs_count_estimate};
use lts_stats::IntervalKind;
use rand::rngs::StdRng;

/// Simple random sampling: draw `budget` objects without replacement,
/// evaluate `q`, report `pˆN` with a Wald (default) or Wilson interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srs {
    /// Interval construction.
    pub interval: IntervalKind,
}

impl CountEstimator for Srs {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);
        let estimate = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            let draws = sample_without_replacement(rng, budget, problem.n())?;
            let labels = labeler.label_batch(&draws)?;
            Ok(srs_count_estimate(
                &labels,
                problem.n(),
                problem.level(),
                self.interval,
            )?)
        })?;
        Ok(EstimateReport {
            estimate,
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::line_problem;
    use rand::SeedableRng;

    #[test]
    fn estimates_near_truth_and_respects_budget() {
        let problem = line_problem(500, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let est = Srs::default();
        let mut rng = StdRng::seed_from_u64(5);
        let r = est.estimate(&problem, 100, &mut rng).unwrap();
        assert_eq!(r.evals, 100);
        assert!(problem.predicate_stats().evals <= 100);
        assert!(
            (r.count() - truth).abs() < 100.0,
            "{} vs {truth}",
            r.count()
        );
        assert!(r.has_interval);
        assert!(r.estimate.interval.lo <= r.estimate.interval.hi);
    }

    #[test]
    fn census_budget_is_exact() {
        let problem = line_problem(80, 0.25);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(1);
        let r = Srs::default().estimate(&problem, 80, &mut rng).unwrap();
        assert!((r.count() - truth).abs() < 1e-9);
        assert!(r.estimate.std_error < 1e-9);
    }

    #[test]
    fn budget_validation() {
        let problem = line_problem(10, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Srs::default().estimate(&problem, 0, &mut rng).is_err());
        assert!(Srs::default().estimate(&problem, 11, &mut rng).is_err());
    }

    #[test]
    fn unbiased_over_trials() {
        let problem = line_problem(200, 0.4);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Srs::default();
        let mut sum = 0.0;
        let trials = 500;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            sum += est.estimate(&problem, 40, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials as u32);
        assert!((mean - truth).abs() < 4.0, "mean {mean} vs truth {truth}");
    }
}
