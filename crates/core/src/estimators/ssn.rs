//! SSN: two-stage stratified sampling with Neyman allocation
//! (paper §3.1).
//!
//! Stage 1 draws a pilot SRS and estimates each stratum's standard
//! deviation; stage 2 allocates the remaining budget by Neyman
//! (`n_h ∝ N_h·S_h`) with the footnote-1 rebalancing. Pilot labels are
//! exact, so the final estimate counts them exactly and estimates only
//! the un-labeled remainder of each stratum (keeping the estimator
//! unbiased; see ARCHITECTURE.md decision 2).

use super::{check_budget, CountEstimator};
use crate::error::{CoreError, CoreResult};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use lts_sampling::{
    draw_stratified, neyman_allocation, sample_without_replacement, stratified_count_estimate,
    StratumSample,
};
use rand::rngs::StdRng;

/// Two-stage stratified sampling with Neyman allocation over a
/// surrogate-attribute grid.
#[derive(Debug, Clone, Copy)]
pub struct Ssn {
    /// Grid dimensions.
    pub grid: (usize, usize),
    /// Which two feature columns to grid.
    pub feature_dims: (usize, usize),
    /// Fraction of the budget used for the stage-1 pilot.
    pub pilot_frac: f64,
    /// Minimum stage-2 samples per stratum with room.
    pub min_per_stratum: usize,
}

impl Default for Ssn {
    fn default() -> Self {
        Self {
            grid: (2, 2),
            feature_dims: (0, 1),
            pilot_frac: 0.3,
            min_per_stratum: 1,
        }
    }
}

impl CountEstimator for Ssn {
    fn name(&self) -> &'static str {
        "SSN"
    }

    fn estimate(
        &self,
        problem: &CountingProblem,
        budget: usize,
        rng: &mut StdRng,
    ) -> CoreResult<EstimateReport> {
        check_budget(problem, budget)?;
        if !(0.0..1.0).contains(&self.pilot_frac) || self.pilot_frac <= 0.0 {
            return Err(CoreError::InvalidConfig {
                message: format!("pilot_frac must be in (0, 1), got {}", self.pilot_frac),
            });
        }
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);

        // Reuse SSP's surrogate-grid construction (which itself runs
        // through the shared columnar pipeline in `crate::scoring`).
        let ssp = super::Ssp {
            grid: self.grid,
            feature_dims: self.feature_dims,
            min_per_stratum: self.min_per_stratum,
        };
        let strata = timer.phase(Phase::Design, || ssp.build_strata(problem))?;
        let h = strata.len();

        let pilot_n = ((budget as f64 * self.pilot_frac).round() as usize).max(h.min(budget / 2));
        let stage2_budget = budget.saturating_sub(pilot_n);
        if stage2_budget < h * self.min_per_stratum.max(1) {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: pilot_n + h * self.min_per_stratum.max(1),
                reason: format!("stage 2 needs ≥ {} samples over {h} strata", h),
            });
        }

        // Stage 1: overall SRS pilot; bucket pilots into strata.
        let mut stratum_of = vec![0usize; problem.n()];
        for (s, members) in strata.iter().enumerate() {
            for &i in members {
                stratum_of[i] = s;
            }
        }
        let (pilot_members, s_hats) = timer.phase(Phase::Design, || -> CoreResult<_> {
            let pilot = sample_without_replacement(rng, pilot_n, problem.n())?;
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); h];
            for &i in &pilot {
                members[stratum_of[i]].push(i);
            }
            let mut s_hats = Vec::with_capacity(h);
            for m in &members {
                let positives = labeler.count_positives(m)?;
                let sample = StratumSample {
                    population: m.len().max(1),
                    sampled: m.len(),
                    positives,
                };
                // Smoothed s: avoid starving strata whose pilot
                // happened to be homogeneous (footnote-1 rationale).
                s_hats.push(sample.s_for_allocation());
            }
            Ok((members, s_hats))
        })?;

        // Stage 2: Neyman allocation over the unlabeled remainder.
        let available: Vec<usize> = strata
            .iter()
            .zip(&pilot_members)
            .map(|(m, p)| m.len() - p.len())
            .collect();
        let alloc = timer.phase(Phase::Design, || {
            neyman_allocation(&available, &s_hats, stage2_budget, self.min_per_stratum)
        })?;

        let (estimate, pilot_positives) = timer.phase(Phase::Phase2, || -> CoreResult<_> {
            // Remaining members per stratum (excluding pilots).
            let mut remainder: Vec<Vec<usize>> = Vec::with_capacity(h);
            for (members, pilots) in strata.iter().zip(&pilot_members) {
                let pset: std::collections::HashSet<usize> = pilots.iter().copied().collect();
                remainder.push(
                    members
                        .iter()
                        .copied()
                        .filter(|i| !pset.contains(i))
                        .collect(),
                );
            }
            let draws = draw_stratified(rng, &remainder, &alloc)?;
            let mut samples = Vec::with_capacity(h);
            for (rem, drawn) in remainder.iter().zip(&draws) {
                let positives = labeler.count_positives(drawn)?;
                samples.push(StratumSample {
                    population: rem.len(),
                    sampled: drawn.len(),
                    positives,
                });
            }
            let mut pilot_pos = 0usize;
            for m in &pilot_members {
                pilot_pos += labeler.count_positives(m)?; // cached
            }
            Ok((
                stratified_count_estimate(&samples, problem.level())?,
                pilot_pos,
            ))
        })?;

        Ok(EstimateReport {
            estimate: estimate.shifted(pilot_positives as f64),
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::line_problem;
    use rand::SeedableRng;

    fn ssn_1d(grid: usize) -> Ssn {
        Ssn {
            grid: (grid, 1),
            feature_dims: (0, 0),
            pilot_frac: 0.3,
            min_per_stratum: 1,
        }
    }

    #[test]
    fn estimates_and_respects_budget() {
        let problem = line_problem(400, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(3);
        let r = ssn_1d(4).estimate(&problem, 80, &mut rng).unwrap();
        assert!(r.evals <= 80, "evals {}", r.evals);
        assert!((r.count() - truth).abs() < 80.0);
        assert!(r.has_interval);
    }

    #[test]
    fn unbiased_over_trials() {
        let problem = line_problem(300, 0.35);
        let truth = problem.exact_count().unwrap() as f64;
        let est = ssn_1d(3);
        let mut sum = 0.0;
        let trials = 400u32;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(9000 + u64::from(t));
            sum += est.estimate(&problem, 60, &mut rng).unwrap().count();
        }
        let mean = sum / f64::from(trials);
        assert!((mean - truth).abs() < 6.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn validation() {
        let problem = line_problem(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let bad_frac = Ssn {
            pilot_frac: 0.0,
            ..ssn_1d(2)
        };
        assert!(bad_frac.estimate(&problem, 50, &mut rng).is_err());
        // Budget too small for stage 2.
        let est = ssn_1d(8);
        assert!(est.estimate(&problem, 9, &mut rng).is_err());
    }
}
