//! `lts-core` — the learning-to-sample estimator suite.
//!
//! This crate implements the paper's primary contribution: a family of
//! estimators for `C(O, q)` — the count of objects satisfying an
//! expensive predicate — all sharing one labeling-budget currency
//! (number of `q` evaluations) and one [`CountEstimator`] interface:
//!
//! | Estimator | Paper | Idea |
//! |---|---|---|
//! | [`estimators::Srs`] | §3.1 | simple random sampling, Wald/Wilson CI |
//! | [`estimators::Ssp`] | §3.1 | stratified sampling, surrogate-attribute grid, proportional allocation |
//! | [`estimators::Ssn`] | §3.1 | two-stage stratified sampling with Neyman allocation |
//! | [`estimators::Qlcc`] | §3.2 | quantification learning, classify-and-count |
//! | [`estimators::Qlac`] | §3.2 | quantification learning, adjusted count (Eq. 2) |
//! | [`estimators::Lws`] | §4.1 | **learned weighted sampling**: PPS by `max(g, ε)`, Des Raj estimator |
//! | [`estimators::LwsHt`] | §4.1 (extension) | learned weights + systematic PPS + Horvitz–Thompson |
//! | [`estimators::Lss`] | §4.2 | **learned stratified sampling**: score-ordered strata designed by DirSol/LogBdr/DynPgm/DynPgmP |
//!
//! The learning phase (SRS + classifier training + optional
//! uncertainty-sampling augmentation, §3.2) is shared by QL/LWS/LSS and
//! lives in [`learnphase`]. The proxy-scoring hot path every learned
//! estimator then runs — features → vectorized batch score → stable
//! `(score, id)` order → partition-aligned design pilot — is the shared
//! [`scoring`] pipeline ([`scoring::ScoredPopulation`]), scored
//! partition-parallel and bit-identical at every partition and thread
//! count. Every estimator reports phase timings compatible with the
//! paper's Figure-3 overhead breakdown.

#![warn(missing_docs)]

pub mod error;
pub mod estimators;
pub mod feature;
pub mod learnphase;
pub mod plan;
pub mod problem;
pub mod report;
pub mod runner;
pub mod scoring;
pub mod shard;
pub mod spec;
pub mod warm;

pub use error::{CoreError, CoreResult};
pub use estimators::{
    CountEstimator, Lss, LssLayout, Lws, LwsHt, LwsSequential, PilotHandling, PilotSource, Qlac,
    Qlcc, Srs, Ssn, Ssp,
};
pub use feature::features_from_columns;
pub use learnphase::{LearnPhaseConfig, LearnedModel};
pub use plan::{
    paged_problem, restrict_problem, select_prefilter, select_prefilter_paged, LogicalPlan,
    PagedPredicate, PhysicalPlan, PrefilterSelection,
};
pub use problem::{CountingProblem, Labeler};
pub use report::{EstimateReport, PhaseTimings, QualityForecast};
pub use runner::{run_trials, run_trials_with, TrialExecution, TrialStats};
pub use scoring::{feature_column, surrogate_grid_strata, OrderedPopulation, ScoredPopulation};
pub use shard::{
    shard_problems, shard_seed, ShardPlan, ShardedLssWarm, ShardedLwsWarm, SALT_SHARD,
};
pub use spec::ClassifierSpec;
pub use warm::{fnv1a, mix_seed, LssWarm, LwsWarm, ModelSnapshot, TrainedProxy};
