//! Unified error type for the estimator suite.

use std::fmt;

/// Errors produced by estimators.
#[derive(Debug)]
pub enum CoreError {
    /// Table-engine error (predicate evaluation, feature extraction).
    Table(lts_table::TableError),
    /// Statistics error (intervals, quantiles).
    Stats(lts_stats::StatsError),
    /// Sampling error (draws, allocation).
    Sampling(lts_sampling::SamplingError),
    /// Learning error (classifier fit/score).
    Learn(lts_learn::LearnError),
    /// Stratification-design error.
    Strata(lts_strata::StrataError),
    /// The labeling budget cannot support the estimator configuration.
    BudgetTooSmall {
        /// Requested budget.
        budget: usize,
        /// Minimum required.
        required: usize,
        /// What needed it.
        reason: String,
    },
    /// The labeling budget exceeds the population size — a census is
    /// cheaper than sampling, so the request is almost certainly a
    /// configuration mistake.
    BudgetExceedsPopulation {
        /// Requested budget.
        budget: usize,
        /// Population size `N`.
        population: usize,
    },
    /// Invalid estimator configuration.
    InvalidConfig {
        /// Description.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Table(e) => write!(f, "table error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Sampling(e) => write!(f, "sampling error: {e}"),
            CoreError::Learn(e) => write!(f, "learning error: {e}"),
            CoreError::Strata(e) => write!(f, "stratification error: {e}"),
            CoreError::BudgetTooSmall {
                budget,
                required,
                reason,
            } => write!(f, "budget {budget} too small (need ≥ {required}): {reason}"),
            CoreError::BudgetExceedsPopulation { budget, population } => write!(
                f,
                "budget {budget} exceeds population size {population} (a census is cheaper)"
            ),
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Table(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Sampling(e) => Some(e),
            CoreError::Learn(e) => Some(e),
            CoreError::Strata(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lts_table::TableError> for CoreError {
    fn from(e: lts_table::TableError) -> Self {
        CoreError::Table(e)
    }
}
impl From<lts_stats::StatsError> for CoreError {
    fn from(e: lts_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}
impl From<lts_sampling::SamplingError> for CoreError {
    fn from(e: lts_sampling::SamplingError) -> Self {
        CoreError::Sampling(e)
    }
}
impl From<lts_learn::LearnError> for CoreError {
    fn from(e: lts_learn::LearnError) -> Self {
        CoreError::Learn(e)
    }
}
impl From<lts_strata::StrataError> for CoreError {
    fn from(e: lts_strata::StrataError) -> Self {
        CoreError::Strata(e)
    }
}

/// Convenience result alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = lts_stats::StatsError::EmptyInput.into();
        assert!(e.to_string().contains("statistics"));
        let e: CoreError = lts_table::TableError::Empty.into();
        assert!(e.to_string().contains("table"));
        let e = CoreError::BudgetTooSmall {
            budget: 5,
            required: 10,
            reason: "pilot sample".into(),
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains("10"));
        let e = CoreError::BudgetExceedsPopulation {
            budget: 101,
            population: 100,
        };
        assert!(e.to_string().contains("101"));
        assert!(e.to_string().contains("census"));
    }
}
