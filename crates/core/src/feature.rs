//! Feature extraction from object tables.
//!
//! The paper's heuristic (§3.2): "select the attributes of `o`
//! referenced in `q`" — i.e. the caller names the columns the predicate
//! touches, and each object's feature vector is those column values.

use crate::error::{CoreError, CoreResult};
use lts_learn::Matrix;
use lts_table::Table;

/// Build an `N × d` feature matrix from the named numeric columns of an
/// object table (ints and bools coerce to floats).
///
/// The fill is columnar: each column materializes once
/// ([`lts_table::Column::to_f64_vec`]) and is scattered into the
/// row-major matrix buffer in a tight strided loop — no per-row
/// validation or `Value` boxing, matching the vectorized scan
/// philosophy of `lts_table::vector`.
///
/// # Errors
///
/// Returns an error for unknown or non-numeric columns, or an empty
/// column list.
pub fn features_from_columns(table: &Table, columns: &[&str]) -> CoreResult<Matrix> {
    if columns.is_empty() {
        return Err(CoreError::InvalidConfig {
            message: "feature column list is empty".into(),
        });
    }
    let cols: Vec<Vec<f64>> = columns
        .iter()
        .map(|c| Ok(table.column_by_name(c)?.to_f64_vec()?))
        .collect::<CoreResult<_>>()?;
    let n = table.len();
    let d = columns.len();
    let mut data = vec![0.0; n * d];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            data[i * d + j] = v;
        }
    }
    Matrix::from_flat(data, n, d).map_err(CoreError::Learn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::table::table_of_floats;

    #[test]
    fn extracts_columns_in_order() {
        let t = table_of_floats(&[("x", &[1.0, 2.0]), ("y", &[3.0, 4.0])]).unwrap();
        let m = features_from_columns(&t, &["y", "x"]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[3.0, 1.0]);
        assert_eq!(m.row(1), &[4.0, 2.0]);
    }

    #[test]
    fn rejects_bad_columns() {
        let t = table_of_floats(&[("x", &[1.0])]).unwrap();
        assert!(features_from_columns(&t, &["nope"]).is_err());
        assert!(features_from_columns(&t, &[]).is_err());
    }
}
