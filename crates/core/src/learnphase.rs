//! The shared learning phase (paper §3.2): draw a training sample,
//! label it, fit a classifier — optionally augmented by
//! uncertainty sampling — and expose the scoring function `g`.

use crate::error::{CoreError, CoreResult};
use crate::problem::{CountingProblem, Labeler};
use crate::spec::ClassifierSpec;
use lts_learn::active::AugmentConfig;
use lts_learn::{select_uncertain, Classifier};
use lts_sampling::sample_without_replacement;
use rand::rngs::StdRng;
use rand::RngExt as _;
use serde::{Deserialize, Serialize};

/// Configuration of the learning phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LearnPhaseConfig {
    /// Which classifier to train.
    pub spec: ClassifierSpec,
    /// Optional uncertainty-sampling augmentation (paper recommends a
    /// single step). The augmentation labels come out of the same
    /// training budget.
    pub augment: Option<AugmentConfig>,
    /// Seed offset for classifier internals (combined with the run rng).
    pub model_seed: u64,
}

/// The product of the learning phase.
pub struct LearnedModel {
    /// The fitted classifier.
    pub model: Box<dyn Classifier>,
    /// Object ids labeled during learning (`S_L`).
    pub labeled: Vec<usize>,
    /// Labels aligned with `labeled`.
    pub labels: Vec<bool>,
    /// The **effective** seed the classifier was built with
    /// (`config.model_seed` mixed with the run rng). Every model family
    /// re-seeds from its construction seed on each `fit`, so
    /// `spec.build(model_seed)` + one fit on (`labeled`, `labels`)
    /// rebuilds this classifier bit-identically — the property the
    /// serving layer's model snapshots rely on.
    pub model_seed: u64,
}

impl LearnedModel {
    /// Exact positive count within `S_L`.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&b| b).count()
    }
}

/// Run the learning phase with a labeling budget of `train_budget`
/// objects.
///
/// With augmentation configured, the initial SRS uses
/// `train_budget − steps·per_step` labels and each augmentation step
/// labels the most uncertain `per_step` objects from a random pool
/// (per-step sizes shrink if the budget is tight).
///
/// # Errors
///
/// Returns an error if the budget is below 2 or exceeds the population.
pub fn run_learn_phase(
    problem: &CountingProblem,
    labeler: &mut Labeler<'_>,
    train_budget: usize,
    config: &LearnPhaseConfig,
    rng: &mut StdRng,
) -> CoreResult<LearnedModel> {
    let n = problem.n();
    if train_budget < 2 {
        return Err(CoreError::BudgetTooSmall {
            budget: train_budget,
            required: 2,
            reason: "classifier training needs at least 2 labels".into(),
        });
    }
    if train_budget > n {
        return Err(CoreError::BudgetTooSmall {
            budget: train_budget,
            required: n,
            reason: format!("training budget exceeds population of {n}"),
        });
    }

    // Split the budget between the initial SRS and augmentation steps.
    let (mut initial, augment) = match config.augment {
        Some(a) if a.steps > 0 && a.per_step > 0 => {
            let want = a.steps * a.per_step;
            let reserved = want.min(train_budget / 2);
            (train_budget - reserved, Some((a, reserved)))
        }
        _ => (train_budget, None),
    };
    initial = initial.max(2);

    let mut labeled = sample_without_replacement(rng, initial, n)?;
    // One batched oracle call for the whole initial training sample.
    let mut labels = labeler.label_batch(&labeled)?;
    let model_seed = config.model_seed ^ rng.random::<u64>();
    let mut model = config.spec.build(model_seed);
    let features = problem.features();
    model.fit(&features.gather(&labeled), &labels)?;

    if let Some((a, mut reserved)) = augment {
        let per_step = (reserved / a.steps.max(1)).max(1);
        for _ in 0..a.steps {
            if reserved == 0 {
                break;
            }
            let step_size = per_step.min(reserved);
            // Unlabeled pool.
            let mut in_labeled = vec![false; n];
            for &i in &labeled {
                in_labeled[i] = true;
            }
            let mut pool: Vec<usize> = (0..n).filter(|&i| !in_labeled[i]).collect();
            if pool.is_empty() {
                break;
            }
            if a.pool_size > 0 && pool.len() > a.pool_size {
                for i in 0..a.pool_size {
                    let j = rng.random_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(a.pool_size);
            }
            let picks = select_uncertain(model.as_ref(), features, &pool, step_size)?;
            if picks.is_empty() {
                break;
            }
            // Each augmentation step labels its picks as one batch.
            let pick_labels = labeler.label_batch(&picks)?;
            for (&i, l) in picks.iter().zip(pick_labels) {
                labeled.push(i);
                labels.push(l);
                reserved -= 1;
            }
            model.fit(&features.gather(&labeled), &labels)?;
        }
    }

    Ok(LearnedModel {
        model,
        labeled,
        labels,
        model_seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::table::table_of_floats;
    use lts_table::{FnPredicate, ObjectPredicate, Table};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn line_problem(n: usize) -> CountingProblem {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let half = n as f64 / 2.0;
        let p: Arc<dyn ObjectPredicate> =
            Arc::new(FnPredicate::new("gt-half", move |t: &Table, i| {
                Ok(t.floats("x")?[i] > half)
            }));
        CountingProblem::new(t, p, &["x"]).unwrap()
    }

    #[test]
    fn trains_within_budget() {
        let problem = line_problem(200);
        let mut labeler = Labeler::new(&problem);
        let mut rng = StdRng::seed_from_u64(1);
        let lm = run_learn_phase(
            &problem,
            &mut labeler,
            40,
            &LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(lm.labeled.len(), 40);
        assert_eq!(labeler.unique_evals(), 40);
        // Model should score sensibly at the extremes.
        assert!(lm.model.score(&[0.0]).unwrap() < 0.5);
        assert!(lm.model.score(&[199.0]).unwrap() > 0.5);
    }

    #[test]
    fn augmentation_spends_exactly_the_budget() {
        let problem = line_problem(300);
        let mut labeler = Labeler::new(&problem);
        let mut rng = StdRng::seed_from_u64(3);
        let lm = run_learn_phase(
            &problem,
            &mut labeler,
            60,
            &LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 5 },
                augment: Some(AugmentConfig {
                    steps: 1,
                    per_step: 20,
                    pool_size: 100,
                }),
                model_seed: 0,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(lm.labeled.len(), 60);
        assert!(labeler.unique_evals() <= 60);
        assert_eq!(lm.labels.len(), lm.labeled.len());
    }

    #[test]
    fn budget_validation() {
        let problem = line_problem(50);
        let mut labeler = Labeler::new(&problem);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_learn_phase(
            &problem,
            &mut labeler,
            1,
            &LearnPhaseConfig::default(),
            &mut rng
        )
        .is_err());
        assert!(run_learn_phase(
            &problem,
            &mut labeler,
            51,
            &LearnPhaseConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn positives_counted() {
        let problem = line_problem(100);
        let mut labeler = Labeler::new(&problem);
        let mut rng = StdRng::seed_from_u64(9);
        let lm = run_learn_phase(
            &problem,
            &mut labeler,
            100,
            &LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 1 },
                ..LearnPhaseConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        // Census: exactly the true positives (x > 50 → 49 objects).
        assert_eq!(lm.positives(), 49);
    }
}
