//! Sharded estimation: run the full LSS/LWS pipeline independently on
//! `k` contiguous shards of the population and merge the shard
//! estimators as strata of one stratified estimator.
//!
//! A [`ShardPlan`] splits `0..N` into `k` contiguous, non-empty ranges —
//! either near-equal ([`ShardPlan::uniform`]) or unions of whole storage
//! partitions ([`ShardPlan::aligned`], via
//! [`lts_strata::shard_bounds_aligned`]). Each shard becomes its own
//! [`CountingProblem`] (sliced table + gathered feature rows) whose
//! predicate **delegates to the parent problem's metered predicate at
//! the global row id** — predicates may capture per-row state indexed by
//! global id, so shard sub-problems must never label through local ids
//! against a sliced table. The per-shard pilot, design, and stage-2
//! phases then run fully independently (in parallel on the rayon shim).
//!
//! **Seed salting.** Shard `s` of a run with canonical seed `seed` uses
//! `shard_seed(seed, s) = mix_seed(mix_seed(seed, SALT_SHARD), s)`. The
//! salt stream depends only on the plan and the canonical seed — not on
//! thread count or shard execution order — so sharded estimates are
//! bit-identical across `RAYON_NUM_THREADS` settings.
//!
//! **Variance composition.** Shards partition the population, and
//! per-shard estimators use disjoint sample draws, so the merged count
//! `X = Σ X_k` has `Var(X) = Σ Var(X_k)` *exactly* (equivalently
//! `Σ w_k² Var(p̂_k)` in proportion units with `w_k = N_k/N`). The merged
//! interval comes from [`lts_stats::compose_independent`] with
//! Welch–Satterthwaite degrees of freedom — no post-hoc widening, so the
//! returned CI half-width is pinned to the composed-variance formula.

use crate::error::{CoreError, CoreResult};
use crate::estimators::{Lss, Lws};
use crate::problem::CountingProblem;
use crate::report::{EstimateReport, PhaseTimings, QualityForecast};
use crate::warm::{fnv1a, mix_seed, LssWarm, LwsWarm};
use lts_sampling::{proportional_allocation, CountEstimate};
use lts_stats::{compose_independent, z_critical, Component};
use lts_strata::{shard_bounds, shard_bounds_aligned};
use lts_table::{Metered, ObjectPredicate, Table, TableResult};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Domain-separation salt for per-shard seeds (distinct from the
/// learn/design/sample salts inside each shard's pipeline).
pub const SALT_SHARD: u64 = 0x5348_4152_4453; // "SHARDS"

/// The canonical per-shard seed: depends only on the run seed and the
/// shard index, never on thread count or execution order.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    mix_seed(mix_seed(seed, SALT_SHARD), shard as u64)
}

/// A partition of `0..N` into `k` contiguous, non-empty shards, stored
/// as `k + 1` strictly increasing bounds starting at 0 and ending at
/// `N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Near-equal shards of a population of `n` rows. Requesting more
    /// shards than rows collapses to `n` singleton shards; `k = 0` and
    /// `n = 0` are rejected.
    ///
    /// This layout is pure arithmetic — independent of thread count and
    /// storage partitioning — and is what the serving layer uses so
    /// shard layouts (and therefore estimates) are reproducible
    /// everywhere.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty population or zero shards.
    pub fn uniform(n: usize, k: usize) -> CoreResult<Self> {
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                message: "shard count must be at least 1".into(),
            });
        }
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                message: "cannot shard an empty population".into(),
            });
        }
        Self::from_bounds(shard_bounds(n, k))
    }

    /// Shards as unions of whole storage partitions: ideal uniform cuts
    /// snapped to the given partition bounds
    /// (via [`lts_strata::shard_bounds_aligned`]).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid partition bounds or an empty
    /// population.
    pub fn aligned(partition_bounds: &[usize], k: usize) -> CoreResult<Self> {
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                message: "shard count must be at least 1".into(),
            });
        }
        Self::from_bounds(shard_bounds_aligned(partition_bounds, k)?)
    }

    /// Build a plan from explicit bounds.
    ///
    /// # Errors
    ///
    /// Returns an error unless the bounds start at 0, are strictly
    /// increasing, and describe at least one non-empty shard.
    pub fn from_bounds(bounds: Vec<usize>) -> CoreResult<Self> {
        let ok = bounds.len() >= 2 && bounds[0] == 0 && bounds.windows(2).all(|w| w[0] < w[1]);
        if !ok {
            return Err(CoreError::InvalidConfig {
                message: format!("invalid shard bounds {bounds:?}"),
            });
        }
        Ok(Self { bounds })
    }

    /// Population size `N`.
    pub fn n(&self) -> usize {
        *self.bounds.last().expect("plan has bounds")
    }

    /// Number of shards `k`.
    pub fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The `k + 1` shard bounds.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Half-open global row range of shard `s`.
    pub fn range(&self, s: usize) -> (usize, usize) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Shard sizes, in shard order.
    pub fn sizes(&self) -> Vec<usize> {
        self.bounds.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Which shard holds global row `id`.
    ///
    /// # Errors
    ///
    /// Returns an error when `id >= N`.
    pub fn shard_of(&self, id: usize) -> CoreResult<usize> {
        if id >= self.n() {
            return Err(CoreError::InvalidConfig {
                message: format!("row {id} outside sharded population of {}", self.n()),
            });
        }
        Ok(self.bounds.partition_point(|&b| b <= id) - 1)
    }
}

/// A shard's view of the parent predicate: evaluates at
/// `offset + local_idx` against the **parent** table through the
/// parent's meter, so global-id-indexed predicate state stays correct
/// and the parent problem keeps counting oracle evaluations.
struct ShardPredicate {
    parent_objects: Arc<Table>,
    parent_predicate: Arc<Metered<Arc<dyn ObjectPredicate>>>,
    offset: usize,
    name: String,
}

impl ObjectPredicate for ShardPredicate {
    fn eval(&self, _objects: &Table, idx: usize) -> TableResult<bool> {
        self.parent_predicate
            .eval(&self.parent_objects, self.offset + idx)
    }

    fn eval_batch(&self, _objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        let global: Vec<usize> = idxs.iter().map(|&i| self.offset + i).collect();
        self.parent_predicate
            .eval_batch(&self.parent_objects, &global)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Build the per-shard sub-problems of `problem` under `plan`: sliced
/// object table, gathered feature rows, delegating predicate, parent
/// confidence level.
///
/// # Errors
///
/// Returns an error when the plan's population size differs from the
/// problem's.
pub fn shard_problems(
    problem: &CountingProblem,
    plan: &ShardPlan,
) -> CoreResult<Vec<Arc<CountingProblem>>> {
    if plan.n() != problem.n() {
        return Err(CoreError::InvalidConfig {
            message: format!(
                "shard plan covers {} rows but the problem has {}",
                plan.n(),
                problem.n()
            ),
        });
    }
    let parent_objects = Arc::clone(problem.objects());
    let parent_predicate = problem.metered_predicate();
    let base_name = parent_predicate.name().to_string();
    let mut out = Vec::with_capacity(plan.k());
    for s in 0..plan.k() {
        let (lo, hi) = plan.range(s);
        let table = Arc::new(parent_objects.slice(lo, hi)?);
        let ids: Vec<usize> = (lo..hi).collect();
        let features = problem.features().gather(&ids);
        let predicate: Arc<dyn ObjectPredicate> = Arc::new(ShardPredicate {
            parent_objects: Arc::clone(&parent_objects),
            parent_predicate: Arc::clone(&parent_predicate),
            offset: lo,
            name: format!("{base_name}#shard{s}"),
        });
        let sub =
            CountingProblem::with_features(table, predicate, features)?.with_level(problem.level());
        out.push(Arc::new(sub));
    }
    Ok(out)
}

/// Split globally-indexed known labels into per-shard locally-indexed
/// lists.
fn split_known(plan: &ShardPlan, known: &[(usize, bool)]) -> CoreResult<Vec<Vec<(usize, bool)>>> {
    let mut by_shard: Vec<Vec<(usize, bool)>> = vec![Vec::new(); plan.k()];
    for &(id, label) in known {
        let s = plan.shard_of(id)?;
        by_shard[s].push((id - plan.bounds[s], label));
    }
    Ok(by_shard)
}

/// Per-shard labeling budgets: proportional to shard size with a
/// per-shard floor of `min_budget` (capped at shard size).
fn shard_budgets(plan: &ShardPlan, budget: usize, min_budget: usize) -> CoreResult<Vec<usize>> {
    Ok(proportional_allocation(&plan.sizes(), budget, min_budget)?)
}

/// Merge per-shard reports into one: count and variance summed exactly,
/// interval from the composed variance with Welch–Satterthwaite degrees
/// of freedom, timings summed per phase (total = measured wall time).
fn merge_shard_reports(
    reports: &[EstimateReport],
    n: usize,
    level: f64,
    estimator: String,
    wall: Duration,
) -> CoreResult<EstimateReport> {
    let parts: Vec<Component> = reports
        .iter()
        .map(|r| Component {
            value: r.estimate.count,
            variance: r.estimate.std_error * r.estimate.std_error,
            df: r.estimate.df,
        })
        .collect();
    let composed = compose_independent(&parts, level)?;
    let nf = n as f64;
    let estimate = CountEstimate {
        count: composed.value,
        std_error: composed.std_error,
        interval: composed.interval.clamped(0.0, nf),
        df: composed.df,
    };
    let mut timings = PhaseTimings::default();
    let mut evals = 0usize;
    let mut notes = vec![format!(
        "merged {} shard estimators; variance composed as Σ Var_k",
        reports.len()
    )];
    let mut stage2 = 0usize;
    let mut forecast_var = 0.0f64;
    let mut have_forecast = !reports.is_empty();
    for (s, r) in reports.iter().enumerate() {
        evals += r.evals;
        timings.learn += r.timings.learn;
        timings.design += r.timings.design;
        timings.phase2 += r.timings.phase2;
        timings.labeling += r.timings.labeling;
        for note in &r.notes {
            notes.push(format!("shard {s}: {note}"));
        }
        match &r.forecast {
            Some(f) => {
                stage2 += f.stage2_samples;
                forecast_var += f.predicted_se * f.predicted_se;
            }
            None => have_forecast = false,
        }
    }
    timings.total = wall;
    let forecast = if have_forecast {
        let predicted_se = forecast_var.sqrt();
        let z = z_critical(level)?;
        Some(QualityForecast {
            predicted_se,
            predicted_halfwidth: z * predicted_se,
            stage2_samples: stage2,
        })
    } else {
        None
    };
    Ok(EstimateReport {
        estimate,
        has_interval: reports.iter().all(|r| r.has_interval),
        evals,
        timings,
        estimator,
        notes,
        forecast,
    })
}

/// Reusable state of a sharded LSS run: the plan plus one [`LssWarm`]
/// per shard. Holds no table data — estimate calls re-derive the shard
/// sub-problems from the problem they are given.
pub struct ShardedLssWarm {
    plan: ShardPlan,
    shards: Vec<LssWarm>,
    /// Total oracle evaluations spent preparing (the cold-start cost).
    pub prepare_evals: usize,
}

impl ShardedLssWarm {
    /// The shard plan the state was prepared under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Per-shard warm states, in shard order.
    pub fn shards(&self) -> &[LssWarm] {
        &self.shards
    }

    /// Content digest: plan bounds mixed with every shard digest.
    pub fn digest(&self) -> u64 {
        let mut d = fnv1a(b"sharded-lss");
        for &b in self.plan.bounds() {
            d = mix_seed(d, b as u64);
        }
        for w in &self.shards {
            d = mix_seed(d, w.digest());
        }
        d
    }

    /// All exactly-known `(global object id, label)` pairs across
    /// shards — the payload a snapshot restore replays at zero oracle
    /// cost.
    pub fn known_labels(&self) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        for (s, w) in self.shards.iter().enumerate() {
            let offset = self.plan.bounds[s];
            out.extend(w.known_labels().into_iter().map(|(id, l)| (id + offset, l)));
        }
        out
    }

    /// Fresh labels each resume spends (sum of per-shard stage-2
    /// budgets).
    pub fn resume_evals(&self) -> usize {
        self.shards.iter().map(|w| w.split.stage2).sum()
    }
}

/// Reusable state of a sharded LWS run.
pub struct ShardedLwsWarm {
    plan: ShardPlan,
    shards: Vec<LwsWarm>,
    /// Total oracle evaluations spent preparing (the cold-start cost).
    pub prepare_evals: usize,
}

impl ShardedLwsWarm {
    /// The shard plan the state was prepared under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Per-shard warm states, in shard order.
    pub fn shards(&self) -> &[LwsWarm] {
        &self.shards
    }

    /// Content digest: plan bounds mixed with every shard digest.
    pub fn digest(&self) -> u64 {
        let mut d = fnv1a(b"sharded-lws");
        for &b in self.plan.bounds() {
            d = mix_seed(d, b as u64);
        }
        for w in &self.shards {
            d = mix_seed(d, w.digest());
        }
        d
    }

    /// All exactly-known `(global object id, label)` pairs across
    /// shards.
    pub fn known_labels(&self) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        for (s, w) in self.shards.iter().enumerate() {
            let offset = self.plan.bounds[s];
            out.extend(w.known_labels().into_iter().map(|(id, l)| (id + offset, l)));
        }
        out
    }

    /// Fresh labels each resume spends (sum of per-shard phase-2
    /// budgets).
    pub fn resume_evals(&self) -> usize {
        self.shards.iter().map(|w| w.sample_budget).sum()
    }
}

/// Emit a shard fan-out span (one `shard_fanout` event plus one
/// `shard` event per shard, in shard order) onto the calling thread's
/// trace collector, if one is installed. The per-shard closures run on
/// rayon workers that do not carry the collector, so emission happens
/// after the join — which also keeps event order a pure function of
/// the plan, independent of execution interleaving.
fn emit_shard_span(k: usize, per_shard: &[(u64, std::time::Duration)]) {
    if !lts_obs::trace::collecting() {
        return;
    }
    lts_obs::trace::emit(lts_obs::TraceEvent::ShardFanout { shards: k as u64 });
    for (i, (evals, wall)) in per_shard.iter().enumerate() {
        lts_obs::trace::emit(lts_obs::TraceEvent::Shard {
            index: i as u64,
            evals: *evals,
            wall_nanos: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

impl Lss {
    /// The smallest per-shard budget this configuration can split
    /// (searched from the structural floor `2 + 3H`; returns `budget`
    /// itself when nothing below it is feasible, so the allocation —
    /// not the search — reports infeasibility).
    fn min_shard_budget(&self, budget: usize) -> usize {
        let mut b = (2 + 3 * self.n_strata).min(budget);
        while b < budget && self.budget_split(b).is_err() {
            b += 1;
        }
        b
    }

    /// Prepare LSS independently on every shard of `plan`: budgets
    /// proportional to shard size, seeds salted per shard, shards run
    /// in parallel.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid plan, an infeasible budget, or
    /// any shard's prepare failure.
    pub fn prepare_sharded(
        &self,
        problem: &CountingProblem,
        plan: &ShardPlan,
        budget: usize,
        seed: u64,
    ) -> CoreResult<ShardedLssWarm> {
        self.prepare_sharded_with_known(problem, plan, budget, seed, &[])
    }

    /// [`Lss::prepare_sharded`] with globally-indexed known labels
    /// preloaded (free) on their shards — the snapshot-restore path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lss::prepare_sharded`], plus out-of-range
    /// known-label ids.
    pub fn prepare_sharded_with_known(
        &self,
        problem: &CountingProblem,
        plan: &ShardPlan,
        budget: usize,
        seed: u64,
        known: &[(usize, bool)],
    ) -> CoreResult<ShardedLssWarm> {
        let problems = shard_problems(problem, plan)?;
        let budgets = shard_budgets(plan, budget, self.min_shard_budget(budget))?;
        let known_by_shard = split_known(plan, known)?;
        let jobs: Vec<usize> = (0..plan.k()).collect();
        let prepared: Vec<(CoreResult<LssWarm>, std::time::Duration)> = jobs
            .into_par_iter()
            .map(|s| {
                let t0 = Instant::now();
                // Suppressed: a work-stealing thread may run this
                // closure while carrying another request's collector.
                let r = lts_obs::trace::suppressed(|| {
                    self.prepare_with_known(
                        &problems[s],
                        budgets[s],
                        shard_seed(seed, s),
                        &known_by_shard[s],
                    )
                });
                (r, t0.elapsed())
            })
            .collect();
        let mut shards = Vec::with_capacity(plan.k());
        let mut spans = Vec::with_capacity(plan.k());
        let mut prepare_evals = 0;
        for (w, wall) in prepared {
            let w = w?;
            prepare_evals += w.prepare_evals;
            spans.push((w.prepare_evals as u64, wall));
            shards.push(w);
        }
        emit_shard_span(plan.k(), &spans);
        Ok(ShardedLssWarm {
            plan: plan.clone(),
            shards,
            prepare_evals,
        })
    }

    /// Run stage 2 on every shard of a prepared sharded state and merge
    /// the shard estimators as strata of one stratified estimator.
    ///
    /// # Errors
    ///
    /// Returns an error when the state's plan does not cover the
    /// problem, or any shard's estimate fails.
    pub fn estimate_prepared_sharded(
        &self,
        problem: &CountingProblem,
        warm: &ShardedLssWarm,
        seed: u64,
    ) -> CoreResult<EstimateReport> {
        let start = Instant::now();
        let problems = shard_problems(problem, &warm.plan)?;
        let jobs: Vec<usize> = (0..warm.plan.k()).collect();
        let results: Vec<(CoreResult<EstimateReport>, std::time::Duration)> = jobs
            .into_par_iter()
            .map(|s| {
                let t0 = Instant::now();
                // Suppressed: see prepare_sharded_with_known.
                let r = lts_obs::trace::suppressed(|| {
                    self.estimate_prepared(&problems[s], &warm.shards[s], shard_seed(seed, s))
                });
                (r, t0.elapsed())
            })
            .collect();
        let mut reports = Vec::with_capacity(warm.plan.k());
        let mut spans = Vec::with_capacity(warm.plan.k());
        for (r, wall) in results {
            let r = r?;
            spans.push((r.evals as u64, wall));
            reports.push(r);
        }
        emit_shard_span(warm.plan.k(), &spans);
        merge_shard_reports(
            &reports,
            problem.n(),
            problem.level(),
            format!("LSS@{}", warm.plan.k()),
            start.elapsed(),
        )
    }
}

impl Lws {
    /// The smallest per-shard budget this configuration can split.
    fn min_shard_budget(&self, budget: usize) -> usize {
        let mut b = 4.min(budget);
        while b < budget && self.budget_split(b).is_err() {
            b += 1;
        }
        b
    }

    /// Prepare LWS independently on every shard of `plan` (see
    /// [`Lss::prepare_sharded`]).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid plan, an infeasible budget, or
    /// any shard's prepare failure.
    pub fn prepare_sharded(
        &self,
        problem: &CountingProblem,
        plan: &ShardPlan,
        budget: usize,
        seed: u64,
    ) -> CoreResult<ShardedLwsWarm> {
        self.prepare_sharded_with_known(problem, plan, budget, seed, &[])
    }

    /// [`Lws::prepare_sharded`] with globally-indexed known labels
    /// preloaded (free) on their shards.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lws::prepare_sharded`], plus out-of-range
    /// known-label ids.
    pub fn prepare_sharded_with_known(
        &self,
        problem: &CountingProblem,
        plan: &ShardPlan,
        budget: usize,
        seed: u64,
        known: &[(usize, bool)],
    ) -> CoreResult<ShardedLwsWarm> {
        let problems = shard_problems(problem, plan)?;
        let budgets = shard_budgets(plan, budget, self.min_shard_budget(budget))?;
        let known_by_shard = split_known(plan, known)?;
        let jobs: Vec<usize> = (0..plan.k()).collect();
        let prepared: Vec<(CoreResult<LwsWarm>, std::time::Duration)> = jobs
            .into_par_iter()
            .map(|s| {
                let t0 = Instant::now();
                // Suppressed: a work-stealing thread may run this
                // closure while carrying another request's collector.
                let r = lts_obs::trace::suppressed(|| {
                    self.prepare_with_known(
                        &problems[s],
                        budgets[s],
                        shard_seed(seed, s),
                        &known_by_shard[s],
                    )
                });
                (r, t0.elapsed())
            })
            .collect();
        let mut shards = Vec::with_capacity(plan.k());
        let mut spans = Vec::with_capacity(plan.k());
        let mut prepare_evals = 0;
        for (w, wall) in prepared {
            let w = w?;
            prepare_evals += w.prepare_evals;
            spans.push((w.prepare_evals as u64, wall));
            shards.push(w);
        }
        emit_shard_span(plan.k(), &spans);
        Ok(ShardedLwsWarm {
            plan: plan.clone(),
            shards,
            prepare_evals,
        })
    }

    /// Run phase 2 on every shard of a prepared sharded state and merge
    /// (see [`Lss::estimate_prepared_sharded`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the state's plan does not cover the
    /// problem, or any shard's estimate fails.
    pub fn estimate_prepared_sharded(
        &self,
        problem: &CountingProblem,
        warm: &ShardedLwsWarm,
        seed: u64,
    ) -> CoreResult<EstimateReport> {
        let start = Instant::now();
        let problems = shard_problems(problem, &warm.plan)?;
        let jobs: Vec<usize> = (0..warm.plan.k()).collect();
        let results: Vec<(CoreResult<EstimateReport>, std::time::Duration)> = jobs
            .into_par_iter()
            .map(|s| {
                let t0 = Instant::now();
                // Suppressed: see prepare_sharded_with_known.
                let r = lts_obs::trace::suppressed(|| {
                    self.estimate_prepared(&problems[s], &warm.shards[s], shard_seed(seed, s))
                });
                (r, t0.elapsed())
            })
            .collect();
        let mut reports = Vec::with_capacity(warm.plan.k());
        let mut spans = Vec::with_capacity(warm.plan.k());
        for (r, wall) in results {
            let r = r?;
            spans.push((r.evals as u64, wall));
            reports.push(r);
        }
        emit_shard_span(warm.plan.k(), &spans);
        merge_shard_reports(
            &reports,
            problem.n(),
            problem.level(),
            format!("LWS@{}", warm.plan.k()),
            start.elapsed(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, ramp_problem};

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..8).map(|s| shard_seed(42, s)).collect();
        let b: Vec<u64> = (0..8).map(|s| shard_seed(42, s)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "salted seeds collide: {a:?}");
        assert!(!a.contains(&42), "shard seed must differ from the run seed");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
    }

    #[test]
    fn plan_construction_and_degenerates() {
        let p = ShardPlan::uniform(100, 4).unwrap();
        assert_eq!(p.bounds(), &[0, 25, 50, 75, 100]);
        assert_eq!(p.k(), 4);
        assert_eq!(p.n(), 100);
        assert_eq!(p.sizes(), vec![25; 4]);
        assert_eq!(p.range(2), (50, 75));
        assert_eq!(p.shard_of(0).unwrap(), 0);
        assert_eq!(p.shard_of(24).unwrap(), 0);
        assert_eq!(p.shard_of(25).unwrap(), 1);
        assert_eq!(p.shard_of(99).unwrap(), 3);
        assert!(p.shard_of(100).is_err());

        // More shards than rows collapses to singleton shards.
        let tiny = ShardPlan::uniform(3, 8).unwrap();
        assert_eq!(tiny.bounds(), &[0, 1, 2, 3]);
        assert_eq!(tiny.k(), 3);

        assert!(ShardPlan::uniform(0, 4).is_err());
        assert!(ShardPlan::uniform(100, 0).is_err());
        assert!(ShardPlan::from_bounds(vec![0, 5, 5, 10]).is_err());
        assert!(ShardPlan::from_bounds(vec![1, 5]).is_err());
        assert!(ShardPlan::from_bounds(vec![0]).is_err());

        // Aligned plans are unions of whole partitions.
        let aligned = ShardPlan::aligned(&[0, 30, 60, 90, 120], 2).unwrap();
        assert_eq!(aligned.bounds(), &[0, 60, 120]);
        assert!(ShardPlan::aligned(&[0, 0], 2).is_err(), "empty population");
    }

    #[test]
    fn shard_problems_label_through_the_parent() {
        // The ramp predicate hashes the *global* row id into its label,
        // so any local-id labeling inside a shard would visibly diverge.
        let problem = ramp_problem(200, 0.2, 0.8, 7);
        let plan = ShardPlan::uniform(200, 4).unwrap();
        let subs = shard_problems(&problem, &plan).unwrap();
        problem.reset_meter();
        for (s, sub) in subs.iter().enumerate() {
            let (lo, hi) = plan.range(s);
            assert_eq!(sub.n(), hi - lo);
            assert_eq!(sub.level(), problem.level());
            for local in [0, (hi - lo) / 2, hi - lo - 1] {
                assert_eq!(
                    sub.label(local).unwrap(),
                    problem.label(lo + local).unwrap(),
                    "shard {s} row {local} disagrees with global row {}",
                    lo + local
                );
            }
            // Features travel with the rows.
            assert_eq!(sub.features().row(0), problem.features().row(lo));
        }
        // Shard labeling flows through the parent meter too.
        assert!(problem.predicate_stats().evals > 0);
        let mismatched = ShardPlan::uniform(100, 2).unwrap();
        assert!(shard_problems(&problem, &mismatched).is_err());
    }

    #[test]
    fn sharded_lss_is_deterministic_and_merges_honestly() {
        let problem = ramp_problem(3000, 0.25, 0.75, 11);
        let truth = problem.exact_count().unwrap() as f64;
        let lss = Lss {
            min_pilots_per_stratum: 2,
            ..Lss::default()
        };
        let plan = ShardPlan::uniform(3000, 4).unwrap();
        let (budget, seed) = (600, 99);

        let warm = lss.prepare_sharded(&problem, &plan, budget, seed).unwrap();
        let warm2 = lss.prepare_sharded(&problem, &plan, budget, seed).unwrap();
        assert_eq!(warm.digest(), warm2.digest());
        assert!(warm.prepare_evals > 0 && warm.prepare_evals <= budget);
        assert_eq!(
            warm.resume_evals(),
            warm.shards().iter().map(|w| w.split.stage2).sum::<usize>()
        );

        let r = lss
            .estimate_prepared_sharded(&problem, &warm, seed)
            .unwrap();
        let r2 = lss
            .estimate_prepared_sharded(&problem, &warm, seed)
            .unwrap();
        assert_eq!(r.estimate.count.to_bits(), r2.estimate.count.to_bits());
        assert_eq!(
            r.estimate.std_error.to_bits(),
            r2.estimate.std_error.to_bits()
        );
        assert_eq!(r.estimator, "LSS@4");
        assert!(r.has_interval);
        assert!(r.estimate.interval.contains(r.estimate.count));
        assert!(
            (r.estimate.count - truth).abs() < 0.25 * 3000.0,
            "merged estimate {} vs truth {truth}",
            r.estimate.count
        );

        // The merge is exactly the composed-variance formula: rebuild it
        // by hand from per-shard runs at the same salted seeds.
        let subs = shard_problems(&problem, &plan).unwrap();
        let mut parts = Vec::new();
        for (s, sub) in subs.iter().enumerate() {
            let sr = lss
                .estimate_prepared(sub, &warm.shards()[s], shard_seed(seed, s))
                .unwrap();
            parts.push(Component {
                value: sr.estimate.count,
                variance: sr.estimate.std_error * sr.estimate.std_error,
                df: sr.estimate.df,
            });
        }
        let composed = compose_independent(&parts, problem.level()).unwrap();
        assert_eq!(r.estimate.count.to_bits(), composed.value.to_bits());
        assert_eq!(r.estimate.std_error.to_bits(), composed.std_error.to_bits());
        let clamped = composed.interval.clamped(0.0, 3000.0);
        assert_eq!(r.estimate.interval.lo.to_bits(), clamped.lo.to_bits());
        assert_eq!(r.estimate.interval.hi.to_bits(), clamped.hi.to_bits());
    }

    #[test]
    fn sharded_known_labels_replay_at_zero_oracle_cost() {
        let problem = ramp_problem(1200, 0.3, 0.7, 5);
        let lss = Lss {
            min_pilots_per_stratum: 2,
            ..Lss::default()
        };
        let plan = ShardPlan::uniform(1200, 3).unwrap();
        let warm = lss.prepare_sharded(&problem, &plan, 300, 17).unwrap();
        let known = warm.known_labels();
        assert_eq!(known.len(), warm.prepare_evals);
        // Known ids are global: every one labels identically on the
        // parent problem.
        for &(id, label) in known.iter().take(20) {
            assert_eq!(problem.label(id).unwrap(), label);
        }
        let replay = lss
            .prepare_sharded_with_known(&problem, &plan, 300, 17, &known)
            .unwrap();
        assert_eq!(replay.prepare_evals, 0, "replay must not touch the oracle");
        assert_eq!(replay.digest(), warm.digest());
    }

    #[test]
    fn sharded_lws_is_deterministic_and_replayable() {
        let problem = ramp_problem(1500, 0.3, 0.7, 23);
        let truth = problem.exact_count().unwrap() as f64;
        let lws = Lws::default();
        let plan = ShardPlan::uniform(1500, 4).unwrap();
        let warm = lws.prepare_sharded(&problem, &plan, 400, 7).unwrap();
        let r = lws.estimate_prepared_sharded(&problem, &warm, 7).unwrap();
        let r2 = lws.estimate_prepared_sharded(&problem, &warm, 7).unwrap();
        assert_eq!(r.estimate.count.to_bits(), r2.estimate.count.to_bits());
        assert_eq!(r.estimator, "LWS@4");
        assert!((r.estimate.count - truth).abs() < 0.25 * 1500.0);
        assert_eq!(warm.resume_evals(), 4 * warm.shards()[0].sample_budget);

        let replay = lws
            .prepare_sharded_with_known(&problem, &plan, 400, 7, &warm.known_labels())
            .unwrap();
        assert_eq!(replay.prepare_evals, 0);
        assert_eq!(replay.digest(), warm.digest());
    }

    #[test]
    fn infeasible_budgets_error_instead_of_degrading() {
        let problem = line_problem(400, 0.5);
        let lss = Lss::default();
        let plan = ShardPlan::uniform(400, 8).unwrap();
        // Far below 8 shards × the per-shard LSS floor.
        assert!(lss.prepare_sharded(&problem, &plan, 40, 1).is_err());
        let lws = Lws::default();
        // 8 shards × 4-label floor = 32 > 20.
        assert!(lws.prepare_sharded(&problem, &plan, 20, 1).is_err());
    }
}
