//! The shared proxy-scoring pipeline: features → batch score → stable
//! order → partition-aligned design.
//!
//! Every learned estimator shares one structural hot path: score each
//! object of a population with the proxy `g`, optionally order the
//! population by score, then design a sampling scheme over that order
//! (paper §3.2–§4.2). Before this module each estimator re-implemented
//! the path as a private per-row loop (`model.score(features.row(i))`
//! over all `N` objects); now they all consume:
//!
//! * [`ScoredPopulation`] — a member set (ascending object ids) scored
//!   **partition-parallel**: the member list is split into contiguous
//!   ranges by the same [`partition_bounds`] arithmetic that
//!   `lts_table::partition::PartitionedTable` uses for row ranges, each
//!   range is gathered and scored with the model's *vectorized*
//!   [`Classifier::score_batch`], and per-partition score vectors are
//!   concatenated **in partition order**. Because every `score_batch`
//!   implementation is per-row pure and bit-identical to per-row
//!   [`Classifier::score`], the result is independent of partition and
//!   thread count — the same determinism contract as the partitioned
//!   scan engine.
//! * [`OrderedPopulation`] — the `(score, id)` **stable total order**
//!   over a scored population (LSS's ordering), with helpers to map
//!   positions back to objects and to assemble the stage-1 design
//!   pilot **partition-aligned**: labeled positions split by partition
//!   bounds and merged through `lts_strata`'s
//!   `merge_partition_pilots`. (Callers that hold raw scores but no
//!   ordering locate pilots with
//!   [`lts_strata::pilot_index_from_scores`] instead — the parallel
//!   bucket pass, `O(N log m)` with no population sort.)
//! * [`surrogate_grid_strata`] — the §3.1 surrogate-attribute grid used
//!   by SSP/SSN, built from **column-at-a-time** feature extraction
//!   instead of per-row feature walks.
//!
//! # Determinism contract
//!
//! For a fixed problem and model, every artifact of this module —
//! scores, weights, ordering, pilot index — is bit-identical at every
//! partition count and every `RAYON_NUM_THREADS`. Ties in the ordering
//! are broken by ascending object id, so the order is a *total* order
//! and downstream position-indexed sampling is unambiguous. This is
//! asserted by `crates/core/tests/scoring_determinism.rs` and by the CI
//! diff of `BENCH_score_pipeline.json` between 1-thread and
//! default-thread runs.

use crate::error::{CoreError, CoreResult};
use crate::problem::CountingProblem;
use lts_learn::Classifier;
use lts_strata::PilotIndex;
use lts_table::partition::partition_bounds;
use rayon::prelude::*;

/// Below this many members, a scoring chunk is not worth a worker
/// thread (model inference is far costlier per row than a column scan,
/// so the threshold sits well under the scan engine's
/// `MIN_PARTITION_ROWS`).
pub const MIN_SCORE_ROWS: usize = 256;

/// Deterministic-result partition count heuristic: one partition per
/// worker, never fewer than [`MIN_SCORE_ROWS`] members each. The count
/// varies with the host, the *scores do not* (see the module's
/// determinism contract).
fn auto_partitions(n_members: usize) -> usize {
    (n_members / MIN_SCORE_ROWS).clamp(1, rayon::current_num_threads())
}

/// A population subset scored by a proxy classifier `g`.
///
/// `members` are ascending object ids; `scores[k] = g(members[k])`.
#[derive(Debug, Clone)]
pub struct ScoredPopulation {
    members: Vec<usize>,
    scores: Vec<f64>,
}

impl ScoredPopulation {
    /// Score an explicit member set (must be strictly ascending object
    /// ids into the problem's population), partition-parallel with an
    /// automatic partition count.
    ///
    /// # Errors
    ///
    /// Returns an error for unsorted/out-of-range members or scoring
    /// failures.
    pub fn score_members(
        problem: &CountingProblem,
        model: &dyn Classifier,
        members: Vec<usize>,
    ) -> CoreResult<Self> {
        let parts = auto_partitions(members.len());
        Self::score_members_partitioned(problem, model, members, parts)
    }

    /// [`ScoredPopulation::score_members`] with an explicit partition
    /// count — the scores are bit-identical for every count; the knob
    /// exists for the determinism tests and the scoring benchmarks.
    ///
    /// # Errors
    ///
    /// Returns an error for unsorted/out-of-range members or scoring
    /// failures.
    pub fn score_members_partitioned(
        problem: &CountingProblem,
        model: &dyn Classifier,
        members: Vec<usize>,
        n_partitions: usize,
    ) -> CoreResult<Self> {
        let n = problem.n();
        if members.windows(2).any(|w| w[0] >= w[1]) || members.last().is_some_and(|&m| m >= n) {
            return Err(CoreError::InvalidConfig {
                message: "scored members must be strictly ascending object ids".into(),
            });
        }
        let features = problem.features();
        // Contiguous member ranges, mirroring PartitionedTable's
        // row-range arithmetic; each worker gathers and batch-scores
        // only its own range, results concatenate in partition order.
        let bounds = partition_bounds(members.len(), n_partitions.max(1));
        let ranges: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        let chunks: Vec<lts_learn::LearnResult<Vec<f64>>> = ranges
            .into_par_iter()
            .map(|(lo, hi)| model.score_batch(&features.gather(&members[lo..hi])))
            .collect();
        let mut scores = Vec::with_capacity(members.len());
        for chunk in chunks {
            scores.extend(chunk?);
        }
        Ok(Self { members, scores })
    }

    /// Score the whole population `O`.
    ///
    /// # Errors
    ///
    /// Propagates scoring failures.
    pub fn score_all(problem: &CountingProblem, model: &dyn Classifier) -> CoreResult<Self> {
        Self::score_members(problem, model, (0..problem.n()).collect())
    }

    /// Score `O \ exclude` (the "rest" population every phase-2 draw
    /// operates on; `exclude` is typically the learning sample `S_L`).
    ///
    /// # Errors
    ///
    /// Propagates scoring failures.
    pub fn score_rest(
        problem: &CountingProblem,
        model: &dyn Classifier,
        exclude: &[usize],
    ) -> CoreResult<Self> {
        let n = problem.n();
        let mut excluded = vec![false; n];
        for &i in exclude {
            if i >= n {
                return Err(CoreError::InvalidConfig {
                    message: format!("excluded id {i} out of range (N = {n})"),
                });
            }
            excluded[i] = true;
        }
        let members: Vec<usize> = (0..n).filter(|&i| !excluded[i]).collect();
        Self::score_members(problem, model, members)
    }

    /// Number of scored members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no members were scored.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member object ids (ascending).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Scores aligned with [`ScoredPopulation::members`].
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// PPS sampling weights `max(g(o), floor)` aligned with members —
    /// the LWS family's weight vector (the ε floor keeps an
    /// overconfident classifier from starving negatives).
    pub fn weights(&self, floor: f64) -> Vec<f64> {
        self.scores.iter().map(|&g| g.max(floor)).collect()
    }

    /// Count of members whose score clears `threshold` (the
    /// quantification-learning "predicted positive" count at 0.5).
    pub fn count_at_least(&self, threshold: f64) -> usize {
        self.scores.iter().filter(|&&g| g >= threshold).count()
    }

    /// Consume into the `(score, id)`-ordered population.
    pub fn into_ordered(self) -> OrderedPopulation {
        OrderedPopulation::new(self)
    }
}

/// A scored population arranged in the stable `(score, id)` total
/// order — LSS's score ordering (§4.2).
///
/// Position `p` holds the object with the `p`-th smallest composite key
/// `(g(o), o)`. Ties on `g` break by ascending object id, so the order
/// (and everything derived from it: pilot positions, strata membership,
/// stage-2 draws) is identical at every partition and thread count.
#[derive(Debug, Clone)]
pub struct OrderedPopulation {
    /// position → object id.
    order: Vec<usize>,
    /// Scores sorted to match `order`.
    sorted_scores: Vec<f64>,
}

impl OrderedPopulation {
    fn new(sp: ScoredPopulation) -> Self {
        let mut idx: Vec<usize> = (0..sp.members.len()).collect();
        // Stable sort by the composite key; `members` is ascending, so
        // local-index ties equal object-id ties.
        idx.sort_by(|&a, &b| sp.scores[a].total_cmp(&sp.scores[b]).then(a.cmp(&b)));
        let order: Vec<usize> = idx.iter().map(|&k| sp.members[k]).collect();
        let sorted_scores: Vec<f64> = idx.iter().map(|&k| sp.scores[k]).collect();
        Self {
            order,
            sorted_scores,
        }
    }

    /// Population size `N'`.
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// position → object id, for the whole ordering.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Scores in order (ascending by the composite key).
    pub fn sorted_scores(&self) -> &[f64] {
        &self.sorted_scores
    }

    /// Object id at a position of the ordering.
    pub fn object_at(&self, position: usize) -> usize {
        self.order[position]
    }

    /// Object ids for a batch of positions (aligned with `positions`).
    pub fn objects_at(&self, positions: &[usize]) -> Vec<usize> {
        positions.iter().map(|&p| self.order[p]).collect()
    }

    /// Positions (ascending) whose object is marked in `mask` (indexed
    /// by object id) — e.g. the positions of `S_L` inside the ordering.
    pub fn positions_marked(&self, mask: &[bool]) -> Vec<usize> {
        self.order
            .iter()
            .enumerate()
            .filter(|&(_, &obj)| mask[obj])
            .map(|(pos, _)| pos)
            .collect()
    }

    /// Assemble the stage-1 design pilot **partition-aligned**: the
    /// labeled `(position, label)` entries are split by the same
    /// partition-bound arithmetic the scoring pass uses and merged into
    /// one global [`PilotIndex`] by `lts_strata`'s
    /// `merge_partition_pilots` — bit-identical to constructing the
    /// index directly from `entries`, for every partition count. (When
    /// positions are *not* already known — raw scores, no ordering —
    /// use [`lts_strata::pilot_index_from_scores`], the parallel bucket
    /// pass, instead.)
    ///
    /// `entries` are `(position, label)` pairs over this ordering.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/duplicate/out-of-range pilots.
    pub fn pilot_index(&self, entries: &[(usize, bool)]) -> CoreResult<PilotIndex> {
        let n = self.order.len();
        let bounds = partition_bounds(n, auto_partitions(n));
        Ok(lts_strata::pilot_index_from_positions(&bounds, entries)?)
    }
}

/// Extract feature column `dim` **column-at-a-time** from the problem's
/// feature matrix (one strided pass over the row-major buffer; no
/// per-row slicing).
///
/// # Errors
///
/// Returns an error when `dim` is out of range.
pub fn feature_column(problem: &CountingProblem, dim: usize) -> CoreResult<Vec<f64>> {
    let features = problem.features();
    if dim >= features.cols() {
        return Err(CoreError::InvalidConfig {
            message: format!(
                "feature dim {dim} out of range for {} feature column(s)",
                features.cols()
            ),
        });
    }
    Ok(features.column(dim))
}

/// Build the §3.1 surrogate-attribute strata: a `grid.0 × grid.1` grid
/// over feature columns `dims`, empty cells dropped. Shared by SSP and
/// SSN (their only "scoring" step — the surrogate projection — now runs
/// through the columnar pipeline).
///
/// # Errors
///
/// Returns an error for out-of-range feature dims or degenerate grids.
pub fn surrogate_grid_strata(
    problem: &CountingProblem,
    grid: (usize, usize),
    dims: (usize, usize),
) -> CoreResult<Vec<Vec<usize>>> {
    let d = problem.features().cols();
    let (dx, dy) = dims;
    if dx >= d || dy >= d {
        return Err(CoreError::InvalidConfig {
            message: format!("feature_dims ({dx}, {dy}) out of range for {d} feature column(s)"),
        });
    }
    let xs = feature_column(problem, dx)?;
    let ys = feature_column(problem, dy)?;
    let grid = lts_table::GridIndex::build(&xs, &ys, grid.0.max(1), grid.1.max(1))?;
    let assignments = grid.assignments();
    let mut strata = lts_sampling::group_by_stratum(&assignments, grid.num_cells());
    strata.retain(|s| !s.is_empty());
    Ok(strata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::line_problem;
    use lts_learn::{ConstantScore, Knn};

    fn fitted_knn(problem: &CountingProblem) -> Knn {
        let mut model = Knn::new(3).expect("k > 0");
        let ids: Vec<usize> = (0..problem.n()).step_by(7).collect();
        let labels: Vec<bool> = ids.iter().map(|&i| problem.label(i).unwrap()).collect();
        model
            .fit(&problem.features().gather(&ids), &labels)
            .unwrap();
        model
    }

    #[test]
    fn scores_match_per_row_loop_at_every_partition_count() {
        let problem = line_problem(230, 0.4);
        let model = fitted_knn(&problem);
        let members: Vec<usize> = (0..230).filter(|i| i % 3 != 0).collect();
        let per_row: Vec<f64> = members
            .iter()
            .map(|&i| model.score(problem.features().row(i)).unwrap())
            .collect();
        for parts in [1usize, 2, 3, 8, 64, 500] {
            let sp = ScoredPopulation::score_members_partitioned(
                &problem,
                &model,
                members.clone(),
                parts,
            )
            .unwrap();
            assert_eq!(sp.scores(), per_row.as_slice(), "parts={parts}");
            assert_eq!(sp.members(), members.as_slice());
        }
    }

    #[test]
    fn score_rest_excludes_and_score_all_covers() {
        let problem = line_problem(60, 0.5);
        let model = fitted_knn(&problem);
        let exclude = vec![0usize, 10, 59];
        let sp = ScoredPopulation::score_rest(&problem, &model, &exclude).unwrap();
        assert_eq!(sp.len(), 57);
        assert!(!exclude.iter().any(|e| sp.members().contains(e)));
        // Out-of-range exclusions error instead of panicking.
        assert!(ScoredPopulation::score_rest(&problem, &model, &[60]).is_err());
        let all = ScoredPopulation::score_all(&problem, &model).unwrap();
        assert_eq!(all.len(), 60);
        assert!(!all.is_empty());
    }

    #[test]
    fn weights_apply_floor_and_counts_threshold() {
        let problem = line_problem(40, 0.5);
        let model = fitted_knn(&problem);
        let sp = ScoredPopulation::score_all(&problem, &model).unwrap();
        let w = sp.weights(0.25);
        assert!(w.iter().all(|&v| v >= 0.25));
        assert_eq!(
            w.iter().zip(sp.scores()).filter(|(w, s)| *w > *s).count(),
            sp.scores().iter().filter(|&&s| s < 0.25).count()
        );
        assert_eq!(
            sp.count_at_least(0.5),
            sp.scores().iter().filter(|&&s| s >= 0.5).count()
        );
    }

    #[test]
    fn ordering_is_stable_by_score_then_id() {
        // All scores tie → the order must be ascending object id.
        let problem = line_problem(50, 0.5);
        let model = ConstantScore::new(0.5);
        let ordered = ScoredPopulation::score_all(&problem, &model)
            .unwrap()
            .into_ordered();
        let want: Vec<usize> = (0..50).collect();
        assert_eq!(ordered.order(), want.as_slice());
        assert_eq!(ordered.n(), 50);
        assert_eq!(ordered.object_at(7), 7);
        // And a real model's ordering is sorted by (score, id).
        let model = fitted_knn(&problem);
        let ordered = ScoredPopulation::score_all(&problem, &model)
            .unwrap()
            .into_ordered();
        for p in 1..ordered.n() {
            let (s0, s1) = (ordered.sorted_scores()[p - 1], ordered.sorted_scores()[p]);
            assert!(
                s0 < s1 || (s0 == s1 && ordered.object_at(p - 1) < ordered.object_at(p)),
                "order not (score, id)-sorted at {p}"
            );
        }
    }

    #[test]
    fn positions_marked_finds_members() {
        let problem = line_problem(30, 0.5);
        let ordered = ScoredPopulation::score_all(&problem, &ConstantScore::new(0.1))
            .unwrap()
            .into_ordered();
        let mut mask = vec![false; 30];
        mask[3] = true;
        mask[29] = true;
        assert_eq!(ordered.positions_marked(&mask), vec![3, 29]);
    }

    #[test]
    fn pilot_index_matches_direct_construction() {
        let problem = line_problem(120, 0.4);
        let model = fitted_knn(&problem);
        let ordered = ScoredPopulation::score_all(&problem, &model)
            .unwrap()
            .into_ordered();
        let entries: Vec<(usize, bool)> = (0..120).step_by(11).map(|p| (p, p % 2 == 0)).collect();
        let via_pass = ordered.pilot_index(&entries).unwrap();
        let direct = PilotIndex::new(120, entries.clone()).unwrap();
        assert_eq!(via_pass, direct);
        // Out-of-range position is rejected.
        assert!(ordered.pilot_index(&[(120, true)]).is_err());
    }

    #[test]
    fn member_validation() {
        let problem = line_problem(20, 0.5);
        let model = ConstantScore::new(0.5);
        for bad in [vec![3usize, 3], vec![5, 2], vec![19, 20]] {
            assert!(
                ScoredPopulation::score_members(&problem, &model, bad.clone()).is_err(),
                "{bad:?} accepted"
            );
        }
        let empty = ScoredPopulation::score_members(&problem, &model, Vec::new()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn surrogate_grid_strata_cover_population() {
        let problem = line_problem(100, 0.5);
        let strata = surrogate_grid_strata(&problem, (4, 1), (0, 0)).unwrap();
        let total: usize = strata.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        assert!(strata.iter().all(|s| !s.is_empty()));
        assert!(surrogate_grid_strata(&problem, (2, 2), (0, 5)).is_err());
        assert!(feature_column(&problem, 9).is_err());
        assert_eq!(feature_column(&problem, 0).unwrap().len(), 100);
    }
}
