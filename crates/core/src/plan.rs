//! Query planning: run the cheap prefilter exactly, estimate only the
//! expensive residual.
//!
//! [`fn@lts_table::decompose`] splits a conjunctive predicate into a
//! subquery-free prefilter and an oracle-bearing residual. This module
//! turns that split into an executable plan:
//!
//! 1. **Selection** ([`select_prefilter`]): the prefilter runs as one
//!    vectorized, partition-parallel boolean scan
//!    ([`PartitionedTable::par_eval_bool`]) — zero oracle cost — and
//!    yields the surviving row ids in ascending order, bit-identical at
//!    every partition and thread count.
//! 2. **Restriction** ([`restrict_problem`]): the residual becomes a
//!    [`CountingProblem`] over just the survivors. Its predicate
//!    delegates every evaluation to the **parent** problem's metered
//!    predicate at the *global* row id (the [`crate::shard`] delegation
//!    pattern with an id map instead of an offset), so predicates that
//!    capture per-row state keyed by global id stay correct and the
//!    parent's meter keeps pricing the oracle.
//! 3. **Counting**: because the full query accepts a row iff the
//!    prefilter accepts it *and* the residual accepts it, the residual
//!    count over the `M` survivors **is** the full-population count —
//!    no rescaling of the point estimate is needed, while the interval
//!    comes from the restricted population (estimators clamp to
//!    `[0, M]` instead of `[0, N]`, strictly tighter). An estimator
//!    spends its budget on `M ≤ N` rows, which is the entire economic
//!    win.
//!
//! **Determinism.** The selection is a deterministic function of the
//! table content and the prefilter expression; the restricted problem
//! lists survivors in ascending id order; estimator seeds are derived
//! by callers from the canonical query text (see `lts-serve`'s seed
//! contract). Nothing in the plan depends on thread count, so planned
//! estimates are bit-identical across `RAYON_NUM_THREADS` settings and
//! equal to a forced-serial execution.
//!
//! **Error semantics.** The scan surfaces prefilter errors exactly as
//! the serial row-order evaluation would; residual errors can only
//! surface on surviving rows. See `lts_table::decompose` for the
//! Kleene/error-shadowing contract of the split itself.

use crate::error::{CoreError, CoreResult};
use crate::problem::CountingProblem;
use lts_table::{
    decompose, Expr, Metered, ObjectPredicate, PagedTable, PartitionedTable, Table, TableResult,
};
use std::sync::Arc;

/// A query analyzed for planning: optional exact prefilter plus the
/// residual that still needs the oracle (or the whole query when it
/// does not usefully split).
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Subquery-free conjunction to run as an exact scan, if the query
    /// decomposed.
    pub prefilter: Option<Expr>,
    /// The oracle-bearing remainder (the whole expression when
    /// `prefilter` is `None`).
    pub residual: Expr,
}

impl LogicalPlan {
    /// Analyze an expression (see [`fn@lts_table::decompose`] for the
    /// split rule and semantic contract).
    pub fn of(expr: &Expr) -> Self {
        let d = decompose(expr);
        Self {
            prefilter: d.exact_prefilter,
            residual: d.residual,
        }
    }

    /// Whether the plan has a prefilter stage.
    pub fn is_decomposed(&self) -> bool {
        self.prefilter.is_some()
    }
}

/// The result of running a prefilter scan: surviving global row ids in
/// ascending order, plus the population they were selected from.
#[derive(Debug, Clone)]
pub struct PrefilterSelection {
    /// Surviving row ids, ascending.
    pub survivors: Vec<usize>,
    /// Rows scanned (`N`).
    pub population: usize,
}

impl PrefilterSelection {
    /// Fraction of the population the prefilter keeps (0 for an empty
    /// population).
    pub fn selectivity(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.survivors.len() as f64 / self.population as f64
        }
    }
}

/// Number of top-level AND conjuncts in an expression (1 when it does
/// not split).
fn conjunct_count(e: &Expr) -> u64 {
    match e {
        Expr::Binary(lts_table::BinaryOp::And, a, b) => conjunct_count(a) + conjunct_count(b),
        _ => 1,
    }
}

/// Report a completed prefilter scan onto the calling thread's trace
/// collector, if any. Population/survivor/conjunct counts are pure
/// functions of table content and the prefilter expression, so these
/// fields are asserted in trace goldens.
fn emit_prefilter_span(prefilter: &Expr, population: usize, survivors: usize) {
    if lts_obs::trace::collecting() {
        lts_obs::trace::emit(lts_obs::TraceEvent::Prefilter {
            conjuncts: conjunct_count(prefilter),
            population: population as u64,
            survivors: survivors as u64,
        });
    }
}

/// Run `prefilter` as one vectorized partition-parallel scan and
/// collect the surviving row ids (ascending — bit-identical at every
/// partition and thread count, per [`lts_table::partition`]'s
/// determinism contract).
///
/// # Errors
///
/// Propagates expression evaluation errors; the first error in row
/// order surfaces, exactly as a serial scan would.
pub fn select_prefilter(
    table: &PartitionedTable,
    prefilter: &Expr,
) -> CoreResult<PrefilterSelection> {
    let mask = table.par_eval_bool(prefilter).map_err(CoreError::Table)?;
    let population = mask.len();
    let survivors: Vec<usize> = mask
        .into_iter()
        .enumerate()
        .filter_map(|(i, keep)| keep.then_some(i))
        .collect();
    emit_prefilter_span(prefilter, population, survivors.len());
    Ok(PrefilterSelection {
        survivors,
        population,
    })
}

/// Run `prefilter` as a page-parallel scan over an out-of-core
/// [`PagedTable`] — the paged twin of [`select_prefilter`]. Survivor
/// ids are bit-identical to the in-RAM scan over the same data;
/// pages whose zone maps prove the prefilter false are never read
/// (see `lts_table::storage` for the skip rule).
///
/// # Errors
///
/// Propagates expression evaluation errors (first error in row order)
/// and storage faults ([`lts_table::TableError::Storage`]).
pub fn select_prefilter_paged(
    paged: &PagedTable,
    prefilter: &Expr,
) -> CoreResult<PrefilterSelection> {
    let mask = paged.par_eval_bool(prefilter).map_err(CoreError::Table)?;
    let population = mask.len();
    let survivors: Vec<usize> = mask
        .into_iter()
        .enumerate()
        .filter_map(|(i, keep)| keep.then_some(i))
        .collect();
    emit_prefilter_span(prefilter, population, survivors.len());
    Ok(PrefilterSelection {
        survivors,
        population,
    })
}

/// An [`ObjectPredicate`] evaluated against an out-of-core
/// [`PagedTable`]: each (batched) evaluation faults in only the pages
/// containing the requested row ids, via
/// [`PagedTable::eval_bool_ids`]. Results are bit-identical to
/// evaluating the same expression on the materialized table, so an
/// estimator run against a paged problem reproduces the in-RAM
/// estimate exactly (same labels, same draws, same interval).
pub struct PagedPredicate {
    paged: Arc<PagedTable>,
    expr: Expr,
    name: String,
}

impl PagedPredicate {
    /// Wrap `expr` as a predicate over `paged`.
    pub fn new(name: impl Into<String>, paged: Arc<PagedTable>, expr: Expr) -> Self {
        Self {
            paged,
            expr,
            name: name.into(),
        }
    }
}

impl ObjectPredicate for PagedPredicate {
    fn eval(&self, _objects: &Table, idx: usize) -> TableResult<bool> {
        Ok(self.paged.eval_bool_ids(&self.expr, &[idx])?[0])
    }

    fn eval_batch(&self, _objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        self.paged.eval_bool_ids(&self.expr, idxs)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Build a [`CountingProblem`] whose predicate pages: the object table
/// holds **only the feature columns** (materialized once, the part the
/// learned estimators keep hot in RAM), while every oracle evaluation
/// reads just the pages of `paged` containing the sampled rows. The
/// result of any estimator on this problem is bit-identical to the
/// same estimator on the fully materialized table.
///
/// # Errors
///
/// Returns an error for unknown feature columns, storage faults, or an
/// empty table.
pub fn paged_problem(
    name: &str,
    paged: Arc<PagedTable>,
    expr: Expr,
    feature_columns: &[&str],
) -> CoreResult<CountingProblem> {
    let objects = Arc::new(
        paged
            .to_table_of(feature_columns)
            .map_err(CoreError::Table)?,
    );
    let predicate: Arc<dyn ObjectPredicate> = Arc::new(PagedPredicate::new(name, paged, expr));
    CountingProblem::new(objects, predicate, feature_columns)
}

/// The restricted problem's view of the parent predicate: local index
/// `i` evaluates at global id `ids[i]` against the **parent** table
/// through the parent's meter — same contract as the shard delegation
/// ([`crate::shard`]), with an arbitrary id map instead of a contiguous
/// offset.
struct RestrictedPredicate {
    parent_objects: Arc<Table>,
    parent_predicate: Arc<Metered<Arc<dyn ObjectPredicate>>>,
    ids: Vec<usize>,
    name: String,
}

impl ObjectPredicate for RestrictedPredicate {
    fn eval(&self, _objects: &Table, idx: usize) -> TableResult<bool> {
        self.parent_predicate
            .eval(&self.parent_objects, self.ids[idx])
    }

    fn eval_batch(&self, _objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        let global: Vec<usize> = idxs.iter().map(|&i| self.ids[i]).collect();
        self.parent_predicate
            .eval_batch(&self.parent_objects, &global)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Restrict `parent` to the given surviving global row ids: gathered
/// object rows, gathered feature rows, a delegating predicate (global
/// ids through the parent meter), and the parent's confidence level.
///
/// The restricted problem's count *is* the full-query count when the
/// survivors came from [`select_prefilter`] over the query's own
/// prefilter (module docs).
///
/// # Errors
///
/// Returns an error for an empty survivor set (a [`CountingProblem`]
/// cannot be empty — callers answer exactly 0 without building one) or
/// out-of-range ids.
pub fn restrict_problem(
    parent: &CountingProblem,
    survivors: &[usize],
) -> CoreResult<CountingProblem> {
    if survivors.is_empty() {
        return Err(CoreError::InvalidConfig {
            message: "cannot restrict a counting problem to zero survivors \
                      (the exact count is 0 — answer it directly)"
                .into(),
        });
    }
    let parent_objects = Arc::clone(parent.objects());
    let objects = Arc::new(parent_objects.take(survivors).map_err(CoreError::Table)?);
    let features = parent.features().gather(survivors);
    let parent_predicate = parent.metered_predicate();
    let name = format!("{}|prefiltered", parent_predicate.name());
    let predicate: Arc<dyn ObjectPredicate> = Arc::new(RestrictedPredicate {
        parent_objects,
        parent_predicate,
        ids: survivors.to_vec(),
        name,
    });
    Ok(CountingProblem::with_features(objects, predicate, features)?.with_level(parent.level()))
}

/// A fully materialized plan: the analyzed query, the prefilter scan
/// result, and (when any rows survive) the restricted residual problem.
pub struct PhysicalPlan {
    logical: LogicalPlan,
    problem: Arc<CountingProblem>,
    selection: Option<PrefilterSelection>,
    restricted: Option<Arc<CountingProblem>>,
}

impl PhysicalPlan {
    /// Build the plan: run the prefilter scan (when the query
    /// decomposed) and restrict the problem to the survivors.
    /// `table` must partition the same object table `problem` counts
    /// over.
    ///
    /// # Errors
    ///
    /// Returns an error when `table` and `problem` disagree on the
    /// population, or on scan/restriction failures.
    pub fn build(
        problem: Arc<CountingProblem>,
        table: &PartitionedTable,
        logical: LogicalPlan,
    ) -> CoreResult<Self> {
        if table.len() != problem.n() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "plan table has {} rows but the problem counts {}",
                    table.len(),
                    problem.n()
                ),
            });
        }
        let (selection, restricted) = match &logical.prefilter {
            None => (None, None),
            Some(p) => {
                let sel = select_prefilter(table, p)?;
                let restricted = if sel.survivors.is_empty() {
                    None
                } else {
                    Some(Arc::new(restrict_problem(&problem, &sel.survivors)?))
                };
                (Some(sel), restricted)
            }
        };
        Ok(Self {
            logical,
            problem,
            selection,
            restricted,
        })
    }

    /// The analyzed query.
    pub fn logical(&self) -> &LogicalPlan {
        &self.logical
    }

    /// The full (unrestricted) problem.
    pub fn problem(&self) -> &Arc<CountingProblem> {
        &self.problem
    }

    /// Population size `N`.
    pub fn population(&self) -> usize {
        self.problem.n()
    }

    /// Prefilter survivor count `M`, when a prefilter ran.
    pub fn survivors(&self) -> Option<usize> {
        self.selection.as_ref().map(|s| s.survivors.len())
    }

    /// Observed prefilter selectivity `M/N`, when a prefilter ran.
    pub fn selectivity(&self) -> Option<f64> {
        self.selection.as_ref().map(PrefilterSelection::selectivity)
    }

    /// The restricted residual problem (`None` when the query did not
    /// decompose or no rows survived the prefilter).
    pub fn restricted(&self) -> Option<&Arc<CountingProblem>> {
        self.restricted.as_ref()
    }

    /// Exact count through the plan: residual census over the
    /// survivors when a prefilter ran (0 oracle evaluations when
    /// nothing survived), full census otherwise. Equal to the
    /// monolithic [`CountingProblem::exact_count`] whenever both
    /// succeed (the decomposition contract).
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors.
    pub fn exact_count(&self) -> CoreResult<usize> {
        match (&self.logical.prefilter, &self.restricted) {
            (None, _) => self.problem.exact_count(),
            (Some(_), None) => Ok(0),
            (Some(_), Some(r)) => r.exact_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::{table_of_floats, ExprPredicate};

    fn scenario() -> (Arc<CountingProblem>, PartitionedTable, Expr) {
        // 64 rows, x = 0..64, y alternating; inner table for the
        // expensive conjunct.
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i % 8) as f64).collect();
        let table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
        let inner = Arc::new(table_of_floats(&[("v", &xs)]).unwrap());
        // `x < 24 AND (SELECT COUNT(*) FROM inner WHERE v < o.y) >= 4`
        let expr = Expr::col("x").lt(Expr::lit(24.0)).and(
            Expr::count_where(Arc::clone(&inner), Expr::col("v").lt(Expr::outer("y")))
                .ge(Expr::lit(4.0)),
        );
        let predicate = Arc::new(ExprPredicate::new("q", expr.clone()));
        let problem =
            Arc::new(CountingProblem::new(Arc::clone(&table), predicate, &["x", "y"]).unwrap());
        let pt = PartitionedTable::new(table, 4);
        (problem, pt, expr)
    }

    #[test]
    fn selection_is_ascending_and_matches_serial() {
        let (_, pt, _) = scenario();
        let prefilter = Expr::col("x").lt(Expr::lit(24.0));
        let sel = select_prefilter(&pt, &prefilter).unwrap();
        assert_eq!(sel.population, 64);
        assert_eq!(sel.survivors, (0..24).collect::<Vec<_>>());
        assert!((sel.selectivity() - 24.0 / 64.0).abs() < 1e-12);
        // Identical at a different partition count.
        let serial = PartitionedTable::new(Arc::clone(pt.table()), 1);
        assert_eq!(
            select_prefilter(&serial, &prefilter).unwrap().survivors,
            sel.survivors
        );
    }

    #[test]
    fn restricted_problem_labels_at_global_ids_through_parent_meter() {
        let (problem, _, _) = scenario();
        let survivors = vec![3, 10, 17, 40];
        let sub = restrict_problem(&problem, &survivors).unwrap();
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.level(), problem.level());
        for (local, &global) in survivors.iter().enumerate() {
            assert_eq!(
                sub.label(local).unwrap(),
                problem.label(global).unwrap(),
                "local {local} / global {global}"
            );
        }
        // The parent meter priced every eval above: 4 delegated from
        // the restricted problem + 4 direct. The restricted problem's
        // own meter saw only its 4 local calls.
        assert_eq!(problem.predicate_stats().evals, 8);
        assert_eq!(sub.predicate_stats().evals, 4);
    }

    #[test]
    fn restricting_to_zero_survivors_is_an_error() {
        let (problem, _, _) = scenario();
        assert!(restrict_problem(&problem, &[]).is_err());
    }

    #[test]
    fn planned_exact_count_equals_monolithic() {
        let (problem, pt, expr) = scenario();
        let plan = PhysicalPlan::build(Arc::clone(&problem), &pt, LogicalPlan::of(&expr)).unwrap();
        assert!(plan.logical().is_decomposed());
        assert_eq!(plan.survivors(), Some(24));
        assert_eq!(plan.exact_count().unwrap(), problem.exact_count().unwrap());
    }

    #[test]
    fn empty_prefilter_answers_zero_without_a_problem() {
        let (problem, pt, _) = scenario();
        let expr = Expr::col("x").lt(Expr::lit(-1.0)).and(
            Expr::count_where(
                Arc::clone(problem.objects()),
                Expr::col("x").lt(Expr::outer("y")),
            )
            .ge(Expr::lit(1.0)),
        );
        let plan = PhysicalPlan::build(Arc::clone(&problem), &pt, LogicalPlan::of(&expr)).unwrap();
        assert_eq!(plan.survivors(), Some(0));
        assert!(plan.restricted().is_none());
        assert_eq!(plan.exact_count().unwrap(), 0);
    }

    #[test]
    fn paged_prefilter_selects_identically_without_reading_cold_pages() {
        let (_, pt, _) = scenario();
        let dir = std::env::temp_dir().join(format!("lts_plan_paged_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PagedTable::create(&dir, pt.table(), 8).unwrap();
        let paged = PagedTable::open(&dir, 4).unwrap();
        let prefilter = Expr::col("x").lt(Expr::lit(24.0));
        let ram = select_prefilter(&pt, &prefilter).unwrap();
        let disk = select_prefilter_paged(&paged, &prefilter).unwrap();
        assert_eq!(disk.survivors, ram.survivors);
        assert_eq!(disk.population, ram.population);
        // x is sorted, so pages past the threshold are zone-skipped.
        assert!(paged.scan_snapshot().pages_skipped >= 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn paged_problem_reproduces_in_ram_estimates_bit_for_bit() {
        use crate::estimators::{CountEstimator, Lws, Srs};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (problem, pt, expr) = scenario();
        let dir = std::env::temp_dir().join(format!("lts_plan_est_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PagedTable::create(&dir, pt.table(), 8).unwrap();
        // Adversarially small pool: estimation must survive constant
        // eviction.
        let paged = Arc::new(PagedTable::open(&dir, 1).unwrap());
        let sub = paged_problem("q", Arc::clone(&paged), expr, &["x", "y"]).unwrap();
        assert_eq!(sub.n(), problem.n());
        assert_eq!(sub.features(), problem.features());
        assert_eq!(sub.exact_count().unwrap(), problem.exact_count().unwrap());

        let srs = Srs::default();
        let lws = Lws::default();
        for est in [&srs as &dyn CountEstimator, &lws] {
            let a = est
                .estimate(&problem, 32, &mut StdRng::seed_from_u64(7))
                .unwrap();
            let b = est
                .estimate(&sub, 32, &mut StdRng::seed_from_u64(7))
                .unwrap();
            assert_eq!(
                a.estimate.count.to_bits(),
                b.estimate.count.to_bits(),
                "{} point estimate",
                est.name()
            );
            assert_eq!(
                a.estimate.interval.lo.to_bits(),
                b.estimate.interval.lo.to_bits()
            );
            assert_eq!(
                a.estimate.interval.hi.to_bits(),
                b.estimate.interval.hi.to_bits()
            );
            assert_eq!(a.evals, b.evals, "{} evals", est.name());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecomposed_plan_is_the_monolithic_problem() {
        let (problem, pt, _) = scenario();
        let expr = Expr::col("x").lt(Expr::lit(24.0));
        let plan = PhysicalPlan::build(Arc::clone(&problem), &pt, LogicalPlan::of(&expr)).unwrap();
        assert!(!plan.logical().is_decomposed());
        assert!(plan.survivors().is_none());
        // Census over the full population (counts the problem's own
        // predicate, not `expr` — the logical plan only carries the
        // residual).
        assert_eq!(plan.exact_count().unwrap(), problem.exact_count().unwrap());
    }
}
