//! Warm-start support: snapshottable, resumable estimator state.
//!
//! A one-shot [`CountEstimator::estimate`](crate::CountEstimator) run
//! spends most of its labeling budget and wall time on assets that are
//! *reusable across runs of the same query*: the trained proxy
//! classifier, the scored-and-ordered population, and (for LSS) the
//! labeled design pilot with its optimized stratification. This module
//! splits the learned estimators into an expensive, cacheable
//! **prepare** phase and a cheap, repeatable **resume** phase:
//!
//! * [`Lss::prepare`] / [`Lws::prepare`] run phase 1 + the design and
//!   return a warm state ([`LssWarm`] / [`LwsWarm`]);
//! * [`Lss::estimate_prepared`] / [`Lws::estimate_prepared`] run only
//!   the final sampling stage against a warm state, with a **fresh
//!   seed** — producing a new, independent draw (and therefore a new
//!   unbiased estimate) while spending only the stage-2 share of the
//!   budget.
//!
//! Both phases are **deterministic functions of their seed**: preparing
//! twice with the same seed yields bit-identical states, and resuming a
//! given state twice with the same seed yields bit-identical reports —
//! regardless of thread count or of whether the state was freshly
//! prepared or restored from a snapshot. This is the contract the
//! `lts-serve` service builds its model store and replayable request
//! streams on.
//!
//! Persistence does **not** serialize model weights. Every classifier
//! family re-seeds its RNG from its construction seed on each `fit`, so
//! a fitted model is fully determined by `(spec, effective seed,
//! training set)` — that triple *is* the snapshot ([`ModelSnapshot`]),
//! and [`ModelSnapshot::rebuild`] refits bit-identically. Likewise a
//! whole warm state is reproducible from `(estimator config, prepare
//! seed, known labels)`, which is what the serving layer's store
//! export/import carries.

use crate::error::{CoreError, CoreResult};
use crate::estimators::lss::{stage2_estimate, LssBudgetSplit};
use crate::estimators::lws::lws_phase2;
use crate::estimators::{check_budget, Lss, Lws, PilotSource};
use crate::learnphase::{run_learn_phase, LearnPhaseConfig};
use crate::problem::{CountingProblem, Labeler};
use crate::report::{EstimateReport, Phase, PhaseTimer};
use crate::scoring::{OrderedPopulation, ScoredPopulation};
use crate::spec::ClassifierSpec;
use lts_learn::Classifier;
use lts_sampling::sample_without_replacement;
use lts_strata::Stratification;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Domain-separation salts for the per-phase seed streams.
const SALT_LEARN: u64 = 0x4C45_4152_4E01;
const SALT_DESIGN: u64 = 0x4445_5349_474E;
const SALT_SAMPLE: u64 = 0x5341_4D50_4C45;

/// Run `f` with oracle evaluations attributed to observability phase
/// `p`, and — when a trace collector is installed on this thread —
/// emit the matching trace event carrying the *exact* eval delta (the
/// labeler records once per batch on the calling thread) plus the
/// span's wall time. Wall time stays confined to the event's
/// `wall_nanos` field per the determinism contract; nothing is emitted
/// on the error path.
pub(crate) fn observed_phase<T, E>(
    p: lts_obs::Phase,
    f: impl FnOnce() -> Result<T, E>,
) -> Result<T, E> {
    let before = lts_obs::phase::thread_evals();
    let t0 = std::time::Instant::now();
    let scope = lts_obs::phase::scope(p);
    let out = f();
    drop(scope);
    if out.is_ok() && lts_obs::trace::collecting() {
        let evals = lts_obs::phase::delta(lts_obs::phase::thread_evals(), before)[p as usize];
        let wall_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = if p == lts_obs::Phase::Stage2 {
            lts_obs::TraceEvent::Stage2 { evals, wall_nanos }
        } else {
            lts_obs::TraceEvent::Phase {
                phase: p.name(),
                evals,
                wall_nanos,
            }
        };
        lts_obs::trace::emit(event);
    }
    out
}

/// Mix two 64-bit values into one seed (SplitMix64 finalizer over the
/// xor): the deterministic derivation used for phase and per-request
/// seed streams. Not cryptographic — just well-spread.
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice — the workspace's cheap stable digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A trained proxy classifier together with the exact labels that
/// produced it — the phase-1 asset every learned estimator can reuse.
pub struct TrainedProxy {
    /// The learning-phase configuration it was trained under.
    pub config: LearnPhaseConfig,
    /// The effective seed the classifier was built with (see
    /// [`crate::LearnedModel::model_seed`]).
    pub model_seed: u64,
    /// The fitted classifier (shareable across concurrent resumes).
    pub model: Arc<dyn Classifier>,
    /// Object ids labeled during training (`S_L`).
    pub labeled: Vec<usize>,
    /// Labels aligned with `labeled`.
    pub labels: Vec<bool>,
}

impl TrainedProxy {
    /// Exact positive count within the training sample.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&b| b).count()
    }

    /// The portable snapshot of this proxy: spec + effective seed +
    /// training set. [`ModelSnapshot::rebuild`] refits bit-identically.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            spec: self.config.spec,
            model_seed: self.model_seed,
            labeled: self.labeled.clone(),
            labels: self.labels.clone(),
        }
    }
}

/// Run the learning phase with its own deterministic seed stream and
/// return a reusable [`TrainedProxy`]. Labels drawn are charged to
/// `labeler` as usual.
///
/// # Errors
///
/// Propagates learning-phase errors.
pub fn train_proxy(
    problem: &CountingProblem,
    config: &LearnPhaseConfig,
    train_budget: usize,
    seed: u64,
    labeler: &mut Labeler<'_>,
) -> CoreResult<TrainedProxy> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lm = run_learn_phase(problem, labeler, train_budget, config, &mut rng)?;
    Ok(TrainedProxy {
        config: *config,
        model_seed: lm.model_seed,
        model: Arc::from(lm.model),
        labeled: lm.labeled,
        labels: lm.labels,
    })
}

/// The portable form of a fitted classifier: the spec, the effective
/// construction seed, and the exact training set. Rebuilding is a
/// single deterministic refit — bit-identical to the original because
/// every model family re-seeds from its construction seed on `fit`.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Classifier family + hyperparameters.
    pub spec: ClassifierSpec,
    /// Effective construction seed.
    pub model_seed: u64,
    /// Training-set object ids.
    pub labeled: Vec<usize>,
    /// Labels aligned with `labeled`.
    pub labels: Vec<bool>,
}

impl ModelSnapshot {
    /// Refit the classifier from the snapshot against the problem's
    /// feature matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range training ids or fit failures.
    pub fn rebuild(&self, problem: &CountingProblem) -> CoreResult<Box<dyn Classifier>> {
        let n = problem.n();
        if self.labeled.iter().any(|&i| i >= n) {
            return Err(CoreError::InvalidConfig {
                message: format!("model snapshot references object ids beyond N = {n}"),
            });
        }
        let mut model = self.spec.build(self.model_seed);
        model.fit(&problem.features().gather(&self.labeled), &self.labels)?;
        Ok(model)
    }

    /// Stable content digest (spec, seed, training set) — the "model
    /// version" stamp result caches carry.
    pub fn digest(&self) -> u64 {
        let mut bytes = format!("{:?}|{}", self.spec, self.model_seed).into_bytes();
        for (&i, &l) in self.labeled.iter().zip(&self.labels) {
            bytes.extend_from_slice(&(i as u64).to_le_bytes());
            bytes.push(u8::from(l));
        }
        fnv1a(&bytes)
    }
}

// ---------------------------------------------------------------- LWS

/// The reusable state of an LWS run: trained proxy + scored rest
/// population + the sampling-budget share.
pub struct LwsWarm {
    /// The phase-1 proxy.
    pub proxy: TrainedProxy,
    scored: ScoredPopulation,
    /// Labels each resume spends (the phase-2 share of the budget).
    pub sample_budget: usize,
    /// Oracle evaluations spent preparing (the cold-start cost).
    pub prepare_evals: usize,
    n: usize,
}

impl LwsWarm {
    /// All exactly-known `(object id, label)` pairs of this state — the
    /// free labels a resume preloads, and the payload a snapshot needs
    /// to restore without re-touching the oracle.
    pub fn known_labels(&self) -> Vec<(usize, bool)> {
        self.proxy
            .labeled
            .iter()
            .copied()
            .zip(self.proxy.labels.iter().copied())
            .collect()
    }

    /// Content digest of the reusable state (model + member set), used
    /// as the result-cache model-version stamp.
    pub fn digest(&self) -> u64 {
        mix_seed(
            self.proxy.snapshot().digest(),
            fnv1a(&(self.scored.len() as u64).to_le_bytes()) ^ self.sample_budget as u64,
        )
    }
}

impl Lws {
    /// Run the expensive, reusable phases (train + score) with a
    /// deterministic seed stream, returning a warm state that
    /// [`Lws::estimate_prepared`] can resume any number of times.
    ///
    /// # Errors
    ///
    /// Same conditions as the one-shot estimate path.
    pub fn prepare(
        &self,
        problem: &CountingProblem,
        budget: usize,
        seed: u64,
    ) -> CoreResult<LwsWarm> {
        self.prepare_with_known(problem, budget, seed, &[])
    }

    /// [`Lws::prepare`] resuming from already-known labels (snapshot
    /// restore): `known` pairs are preloaded, so re-preparing a state
    /// whose labels are all known costs **zero** oracle evaluations and
    /// reproduces the original state bit-identically (same seed).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lws::prepare`].
    pub fn prepare_with_known(
        &self,
        problem: &CountingProblem,
        budget: usize,
        seed: u64,
        known: &[(usize, bool)],
    ) -> CoreResult<LwsWarm> {
        check_budget(problem, budget)?;
        self.validate()?;
        let (train_budget, sample_budget) = self.budget_split(budget)?;
        let mut labeler = Labeler::new(problem);
        preload_pairs(&mut labeler, known);
        let proxy = observed_phase(lts_obs::Phase::Train, || {
            train_proxy(
                problem,
                &self.learn,
                train_budget,
                mix_seed(seed, SALT_LEARN),
                &mut labeler,
            )
        })?;
        let scored = observed_phase(lts_obs::Phase::Score, || {
            ScoredPopulation::score_rest(problem, proxy.model.as_ref(), &proxy.labeled)
        })?;
        if scored.len() < sample_budget {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: proxy.labeled.len() + sample_budget,
                reason: "sampling budget exceeds remaining objects".into(),
            });
        }
        Ok(LwsWarm {
            proxy,
            scored,
            sample_budget,
            prepare_evals: labeler.unique_evals(),
            n: problem.n(),
        })
    }

    /// Resume a prepared state: draw a fresh PPS sample with the given
    /// seed and produce a new unbiased estimate, spending only the
    /// stage-2 budget (training labels are preloaded for free).
    ///
    /// # Errors
    ///
    /// Returns an error when the state does not match the problem, or
    /// on sampling/labeling failures.
    pub fn estimate_prepared(
        &self,
        problem: &CountingProblem,
        warm: &LwsWarm,
        seed: u64,
    ) -> CoreResult<EstimateReport> {
        if warm.n != problem.n() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "warm state was prepared for N = {}, problem has N = {}",
                    warm.n,
                    problem.n()
                ),
            });
        }
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);
        labeler.preload(&warm.proxy.labeled, &warm.proxy.labels);
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, SALT_SAMPLE));
        let estimate = observed_phase(lts_obs::Phase::Stage2, || {
            timer.phase(Phase::Phase2, || {
                lws_phase2(
                    self,
                    &warm.scored,
                    warm.sample_budget,
                    warm.proxy.labeled.len(),
                    problem.level(),
                    &mut labeler,
                    &mut rng,
                )
            })
        })?;
        Ok(EstimateReport {
            estimate: estimate.shifted(warm.proxy.positives() as f64),
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: self.name_static().into(),
            notes: Vec::new(),
            forecast: None,
        })
    }

    fn name_static(&self) -> &'static str {
        "LWS"
    }
}

// ---------------------------------------------------------------- LSS

/// The reusable state of an LSS run: trained proxy, score ordering,
/// labeled design pilot, and the optimized stratification.
pub struct LssWarm {
    /// The phase-1 proxy.
    pub proxy: TrainedProxy,
    ordered: OrderedPopulation,
    /// Pilot positions within the ordering (ascending).
    pilot_positions: Vec<usize>,
    /// Pilot labels aligned with `pilot_positions`.
    pilot_labels: Vec<bool>,
    stratification: Stratification,
    /// The budget split the state was prepared under; each resume
    /// spends `split.stage2` fresh labels.
    pub split: LssBudgetSplit,
    /// Notes emitted by the design stage (constraint relaxations etc.).
    pub design_notes: Vec<String>,
    /// Oracle evaluations spent preparing (the cold-start cost).
    pub prepare_evals: usize,
    n: usize,
    reuse: bool,
}

impl LssWarm {
    /// All exactly-known `(object id, label)` pairs (training sample ∪
    /// design pilot) — preloaded for free on every resume, and the
    /// payload a snapshot restore needs to avoid re-touching the
    /// oracle.
    pub fn known_labels(&self) -> Vec<(usize, bool)> {
        let mut pairs: Vec<(usize, bool)> = self
            .proxy
            .labeled
            .iter()
            .copied()
            .zip(self.proxy.labels.iter().copied())
            .collect();
        for (&pos, &label) in self.pilot_positions.iter().zip(&self.pilot_labels) {
            pairs.push((self.ordered.object_at(pos), label));
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Content digest of the reusable state (model + pilot + cuts),
    /// used as the result-cache model-version stamp.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 * (self.pilot_positions.len() + 2));
        bytes.extend_from_slice(&self.proxy.snapshot().digest().to_le_bytes());
        for (&p, &l) in self.pilot_positions.iter().zip(&self.pilot_labels) {
            bytes.extend_from_slice(&(p as u64).to_le_bytes());
            bytes.push(u8::from(l));
        }
        for &c in &self.stratification.cuts {
            bytes.extend_from_slice(&(c as u64).to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// The design-time quality forecast requires a resume (it depends
    /// only on cached pilot data, so it is deterministic per state);
    /// expose the stratification's estimated variance for planners that
    /// want the raw objective instead.
    pub fn estimated_variance(&self) -> f64 {
        self.stratification.estimated_variance
    }
}

impl Lss {
    /// Run the expensive, reusable phases (train + score + order +
    /// pilot + design) with a deterministic per-phase seed stream,
    /// returning a warm state [`Lss::estimate_prepared`] can resume any
    /// number of times.
    ///
    /// # Errors
    ///
    /// Same conditions as the one-shot estimate path.
    pub fn prepare(
        &self,
        problem: &CountingProblem,
        budget: usize,
        seed: u64,
    ) -> CoreResult<LssWarm> {
        self.prepare_with_known(problem, budget, seed, &[])
    }

    /// [`Lss::prepare`] resuming from already-known labels (snapshot
    /// restore): `known` pairs are preloaded, so re-preparing a state
    /// whose labels are all known costs **zero** oracle evaluations and
    /// reproduces the original state bit-identically (same seed).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lss::prepare`].
    pub fn prepare_with_known(
        &self,
        problem: &CountingProblem,
        budget: usize,
        seed: u64,
        known: &[(usize, bool)],
    ) -> CoreResult<LssWarm> {
        check_budget(problem, budget)?;
        self.validate()?;
        let split = self.budget_split(budget)?;
        let mut labeler = Labeler::new(problem);
        preload_pairs(&mut labeler, known);

        let proxy = observed_phase(lts_obs::Phase::Train, || {
            train_proxy(
                problem,
                &self.learn,
                split.train,
                mix_seed(seed, SALT_LEARN),
                &mut labeler,
            )
        })?;

        // Score + order (mirrors the one-shot path).
        let reuse = self.pilot_source == PilotSource::ReuseLearning;
        let scored = observed_phase(lts_obs::Phase::Score, || {
            if reuse {
                ScoredPopulation::score_all(problem, proxy.model.as_ref())
            } else {
                ScoredPopulation::score_rest(problem, proxy.model.as_ref(), &proxy.labeled)
            }
        })?;
        let ordered = scored.into_ordered();
        let mut in_train = vec![false; problem.n()];
        for &i in &proxy.labeled {
            in_train[i] = true;
        }
        let train_positions = ordered.positions_marked(&in_train);
        let n_rest = ordered.n();
        let n_drawable = n_rest - train_positions.len();
        if split.pilot + split.stage2 > n_drawable {
            return Err(CoreError::BudgetTooSmall {
                budget,
                required: proxy.labeled.len() + n_drawable,
                reason: "sampling budget exceeds remaining objects".into(),
            });
        }

        // Stage-1 pilot draw + design, on its own seed stream.
        let (positions, labels) = observed_phase(lts_obs::Phase::Pilot, || -> CoreResult<_> {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, SALT_DESIGN));
            let mut positions = if reuse {
                let mut is_train = vec![false; n_rest];
                for &pos in &train_positions {
                    is_train[pos] = true;
                }
                let candidates: Vec<usize> = (0..n_rest).filter(|&p| !is_train[p]).collect();
                sample_without_replacement(&mut rng, split.pilot, candidates.len())?
                    .into_iter()
                    .map(|i| candidates[i])
                    .collect()
            } else {
                sample_without_replacement(&mut rng, split.pilot, n_rest)?
            };
            positions.extend_from_slice(&train_positions);
            let pilot_objs = ordered.objects_at(&positions);
            let labels = labeler.label_batch(&pilot_objs)?;
            Ok((positions, labels))
        })?;
        let entries: Vec<(usize, bool)> = positions.iter().copied().zip(labels).collect();
        let pilot = ordered.pilot_index(&entries)?;
        let mut design_notes = Vec::new();
        let stratification = observed_phase(lts_obs::Phase::Design, || {
            self.layout_cuts(
                &pilot,
                ordered.sorted_scores(),
                n_rest,
                split.stage2,
                &mut design_notes,
            )
        })?;

        // Store the pilot sorted by position with aligned labels.
        let mut sorted_entries = entries;
        sorted_entries.sort_unstable_by_key(|&(pos, _)| pos);
        let (pilot_positions, pilot_labels): (Vec<usize>, Vec<bool>) =
            sorted_entries.into_iter().unzip();

        Ok(LssWarm {
            proxy,
            ordered,
            pilot_positions,
            pilot_labels,
            stratification,
            split,
            design_notes,
            prepare_evals: labeler.unique_evals(),
            n: problem.n(),
            reuse,
        })
    }

    /// Resume a prepared state: allocate and draw a fresh stage-2
    /// stratified sample with the given seed, spending only the
    /// stage-2 budget (training + pilot labels are preloaded for free).
    /// The report carries the state's design-time quality forecast.
    ///
    /// # Errors
    ///
    /// Returns an error when the state does not match the problem, or
    /// on sampling/labeling failures.
    pub fn estimate_prepared(
        &self,
        problem: &CountingProblem,
        warm: &LssWarm,
        seed: u64,
    ) -> CoreResult<EstimateReport> {
        if warm.n != problem.n() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "warm state was prepared for N = {}, problem has N = {}",
                    warm.n,
                    problem.n()
                ),
            });
        }
        let mut timer = PhaseTimer::new();
        let mut labeler = Labeler::new(problem);
        labeler.preload(&warm.proxy.labeled, &warm.proxy.labels);
        let pilot_objs = warm.ordered.objects_at(&warm.pilot_positions);
        labeler.preload(&pilot_objs, &warm.pilot_labels);
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, SALT_SAMPLE));
        let (estimate, forecast) = observed_phase(lts_obs::Phase::Stage2, || {
            timer.phase(Phase::Phase2, || -> CoreResult<_> {
                let outcome = stage2_estimate(
                    self,
                    &warm.ordered,
                    &warm.pilot_positions,
                    &warm.stratification,
                    warm.split.stage2,
                    problem.level(),
                    &mut labeler,
                    &mut rng,
                )?;
                let shift = match (self.pilot_handling, warm.reuse) {
                    (crate::estimators::PilotHandling::ExactRemainder, true) => {
                        outcome.pilot_positives as f64
                    }
                    (crate::estimators::PilotHandling::ExactRemainder, false) => {
                        (warm.proxy.positives() + outcome.pilot_positives) as f64
                    }
                    (crate::estimators::PilotHandling::Textbook, _) => {
                        warm.proxy.positives() as f64
                    }
                };
                Ok((outcome.base.shifted(shift), outcome.forecast))
            })
        })?;
        Ok(EstimateReport {
            estimate,
            has_interval: true,
            evals: labeler.unique_evals(),
            timings: timer.finish(),
            estimator: "LSS".into(),
            notes: warm.design_notes.clone(),
            forecast: Some(forecast),
        })
    }
}

fn preload_pairs(labeler: &mut Labeler<'_>, known: &[(usize, bool)]) {
    if known.is_empty() {
        return;
    }
    let (ids, labels): (Vec<usize>, Vec<bool>) = known.iter().copied().unzip();
    labeler.preload(&ids, &labels);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests_support::{line_problem, ramp_problem};
    use crate::spec::ClassifierSpec;

    fn lss_knn() -> Lss {
        Lss {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            min_pilots_per_stratum: 2,
            ..Lss::default()
        }
    }

    fn lws_knn() -> Lws {
        Lws {
            learn: LearnPhaseConfig {
                spec: ClassifierSpec::Knn { k: 3 },
                ..LearnPhaseConfig::default()
            },
            ..Lws::default()
        }
    }

    #[test]
    fn mix_seed_separates_streams() {
        assert_ne!(mix_seed(1, 2), mix_seed(2, 1));
        assert_ne!(mix_seed(0, SALT_LEARN), mix_seed(0, SALT_SAMPLE));
        assert_eq!(mix_seed(7, 9), mix_seed(7, 9));
    }

    #[test]
    fn lss_prepare_is_deterministic_and_resume_replays_bit_identically() {
        let problem = ramp_problem(600, 0.2, 0.7, 11);
        let lss = lss_knn();
        let w1 = lss.prepare(&problem, 150, 42).unwrap();
        let w2 = lss.prepare(&problem, 150, 42).unwrap();
        assert_eq!(w1.digest(), w2.digest(), "same seed ⇒ same state");
        assert_eq!(w1.pilot_positions, w2.pilot_positions);
        assert_eq!(w1.prepare_evals, w2.prepare_evals);

        let r1 = lss.estimate_prepared(&problem, &w1, 1001).unwrap();
        let r2 = lss.estimate_prepared(&problem, &w2, 1001).unwrap();
        assert_eq!(r1.count().to_bits(), r2.count().to_bits());
        assert_eq!(
            r1.estimate.interval.lo.to_bits(),
            r2.estimate.interval.lo.to_bits()
        );
        assert_eq!(r1.evals, r2.evals);
        // A different request seed draws a different stage-2 sample.
        let r3 = lss.estimate_prepared(&problem, &w1, 1002).unwrap();
        assert_ne!(r1.count().to_bits(), r3.count().to_bits());
        // Resume spends only the stage-2 share.
        assert_eq!(r1.evals, w1.split.stage2);
        assert!(w1.prepare_evals >= w1.split.train + w1.split.pilot - 5);
    }

    #[test]
    fn lss_resume_estimates_stay_near_truth() {
        let problem = ramp_problem(800, 0.25, 0.65, 3);
        let truth = problem.exact_count().unwrap() as f64;
        let lss = lss_knn();
        let warm = lss.prepare(&problem, 200, 9).unwrap();
        let mut sum = 0.0;
        let trials = 40u32;
        for t in 0..trials {
            let r = lss
                .estimate_prepared(&problem, &warm, 5_000 + u64::from(t))
                .unwrap();
            sum += r.count();
            assert!(r.forecast.is_some());
        }
        let mean = sum / f64::from(trials);
        assert!(
            (mean - truth).abs() < 0.1 * truth + 20.0,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn lss_snapshot_restore_costs_zero_evals_and_matches() {
        let problem = line_problem(500, 0.3);
        let lss = lss_knn();
        let warm = lss.prepare(&problem, 120, 77).unwrap();
        assert!(warm.prepare_evals > 0);
        let known = warm.known_labels();
        problem.reset_meter();
        let restored = lss.prepare_with_known(&problem, 120, 77, &known).unwrap();
        assert_eq!(restored.prepare_evals, 0, "restore must not touch q");
        assert_eq!(problem.predicate_stats().evals, 0);
        assert_eq!(restored.digest(), warm.digest());
        let a = lss.estimate_prepared(&problem, &warm, 31).unwrap();
        let b = lss.estimate_prepared(&problem, &restored, 31).unwrap();
        assert_eq!(a.count().to_bits(), b.count().to_bits());
    }

    #[test]
    fn model_snapshot_rebuilds_bit_identical_scores() {
        let problem = line_problem(300, 0.4);
        let mut labeler = Labeler::new(&problem);
        for spec in [
            ClassifierSpec::Knn { k: 3 },
            ClassifierSpec::RandomForest { n_trees: 10 },
            ClassifierSpec::Mlp { epochs: 20 },
            ClassifierSpec::Logistic,
            ClassifierSpec::NaiveBayes,
            ClassifierSpec::Gbm { n_rounds: 5 },
            ClassifierSpec::Random,
        ] {
            let proxy = train_proxy(
                &problem,
                &LearnPhaseConfig {
                    spec,
                    ..LearnPhaseConfig::default()
                },
                40,
                99,
                &mut labeler,
            )
            .unwrap();
            let rebuilt = proxy.snapshot().rebuild(&problem).unwrap();
            let original = proxy.model.score_batch(problem.features()).unwrap();
            let restored = rebuilt.score_batch(problem.features()).unwrap();
            let same = original
                .iter()
                .zip(&restored)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{spec:?}: snapshot rebuild must be bit-identical");
        }
    }

    #[test]
    fn model_snapshot_digest_is_content_addressed() {
        let base = ModelSnapshot {
            spec: ClassifierSpec::Knn { k: 3 },
            model_seed: 5,
            labeled: vec![1, 2, 3],
            labels: vec![true, false, true],
        };
        assert_eq!(base.digest(), base.clone().digest());
        let mut other = base.clone();
        other.labels[1] = true;
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.model_seed = 6;
        assert_ne!(base.digest(), other.digest());
        // Out-of-range snapshot is rejected at rebuild.
        let problem = line_problem(3, 0.5);
        let bad = ModelSnapshot {
            labeled: vec![0, 9],
            labels: vec![true, false],
            ..base
        };
        assert!(bad.rebuild(&problem).is_err());
    }

    #[test]
    fn lws_warm_replays_and_saves_budget() {
        let problem = line_problem(500, 0.25);
        let lws = lws_knn();
        let warm = lws.prepare(&problem, 120, 13).unwrap();
        let r1 = lws.estimate_prepared(&problem, &warm, 501).unwrap();
        let r2 = lws.estimate_prepared(&problem, &warm, 501).unwrap();
        assert_eq!(r1.count().to_bits(), r2.count().to_bits());
        assert_eq!(r1.evals, warm.sample_budget);
        assert!(warm.prepare_evals > 0);
        // Restore from known labels is free and bit-identical.
        let restored = lws
            .prepare_with_known(&problem, 120, 13, &warm.known_labels())
            .unwrap();
        assert_eq!(restored.prepare_evals, 0);
        assert_eq!(restored.digest(), warm.digest());
        let r3 = lws.estimate_prepared(&problem, &restored, 501).unwrap();
        assert_eq!(r1.count().to_bits(), r3.count().to_bits());
    }

    #[test]
    fn warm_state_rejects_mismatched_problem() {
        let problem = line_problem(400, 0.3);
        let other = line_problem(300, 0.3);
        let lss = lss_knn();
        let warm = lss.prepare(&problem, 100, 1).unwrap();
        assert!(lss.estimate_prepared(&other, &warm, 2).is_err());
        let lws = lws_knn();
        let warm = lws.prepare(&problem, 100, 1).unwrap();
        assert!(lws.estimate_prepared(&other, &warm, 2).is_err());
    }
}
