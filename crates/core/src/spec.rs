//! Classifier specifications: buildable, seedable descriptions of the
//! classifier families the paper evaluates (Figures 6–7).

use lts_learn::{
    Classifier, ClassifierKind, GaussianNb, Gbm, GbmConfig, Knn, Logistic, Mlp, RandomForest,
    RandomScores,
};
use serde::{Deserialize, Serialize};

/// A buildable classifier description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierSpec {
    /// k-nearest neighbours.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// Random forest.
    RandomForest {
        /// Number of trees (paper default 100).
        n_trees: usize,
    },
    /// Two-layer (5, 2) neural network.
    Mlp {
        /// Training epochs.
        epochs: usize,
    },
    /// Logistic regression.
    Logistic,
    /// Gaussian Naive Bayes.
    NaiveBayes,
    /// Gradient-boosted trees.
    Gbm {
        /// Number of boosting rounds.
        n_rounds: usize,
    },
    /// Adversarial random scores (§5.4.4 worst case).
    Random,
}

impl Default for ClassifierSpec {
    /// The paper's default: a random forest with 100 estimators.
    fn default() -> Self {
        ClassifierSpec::RandomForest { n_trees: 100 }
    }
}

impl ClassifierSpec {
    /// Instantiate an unfitted classifier with the given seed.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        match *self {
            ClassifierSpec::Knn { k } => Box::new(Knn::new(k.max(1)).expect("k >= 1")),
            ClassifierSpec::RandomForest { n_trees } => {
                Box::new(RandomForest::with_trees(n_trees.max(1), seed))
            }
            ClassifierSpec::Mlp { epochs } => Box::new(Mlp::new(lts_learn::mlp::MlpConfig {
                epochs: epochs.max(1),
                seed,
                ..lts_learn::mlp::MlpConfig::default()
            })),
            ClassifierSpec::Logistic => Box::new(Logistic::default()),
            ClassifierSpec::NaiveBayes => Box::new(GaussianNb::default()),
            ClassifierSpec::Gbm { n_rounds } => Box::new(Gbm::new(GbmConfig {
                n_rounds: n_rounds.max(1),
                ..GbmConfig::default()
            })),
            ClassifierSpec::Random => Box::new(RandomScores::new(seed)),
        }
    }

    /// The family tag.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            ClassifierSpec::Knn { .. } => ClassifierKind::Knn,
            ClassifierSpec::RandomForest { .. } => ClassifierKind::RandomForest,
            ClassifierSpec::Mlp { .. } => ClassifierKind::Mlp,
            ClassifierSpec::Logistic => ClassifierKind::Logistic,
            ClassifierSpec::NaiveBayes => ClassifierKind::NaiveBayes,
            ClassifierSpec::Gbm { .. } => ClassifierKind::Gbm,
            ClassifierSpec::Random => ClassifierKind::Random,
        }
    }

    /// The specs used in the paper's classifier-comparison figures.
    pub fn paper_lineup() -> Vec<ClassifierSpec> {
        vec![
            ClassifierSpec::Knn { k: 5 },
            ClassifierSpec::Mlp { epochs: 200 },
            ClassifierSpec::RandomForest { n_trees: 100 },
            ClassifierSpec::Random,
        ]
    }

    /// The paper lineup plus this reproduction's extra families
    /// (logistic regression, Gaussian NB, gradient boosting), for the
    /// extended Figure-6/7 sweeps.
    pub fn extended_lineup() -> Vec<ClassifierSpec> {
        let mut lineup = Self::paper_lineup();
        lineup.insert(3, ClassifierSpec::Logistic);
        lineup.insert(4, ClassifierSpec::NaiveBayes);
        lineup.insert(5, ClassifierSpec::Gbm { n_rounds: 50 });
        lineup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_learn::Matrix;

    #[test]
    fn builds_every_kind() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [false, false, true, true];
        for spec in [
            ClassifierSpec::Knn { k: 3 },
            ClassifierSpec::RandomForest { n_trees: 5 },
            ClassifierSpec::Mlp { epochs: 10 },
            ClassifierSpec::Logistic,
            ClassifierSpec::NaiveBayes,
            ClassifierSpec::Gbm { n_rounds: 5 },
            ClassifierSpec::Random,
        ] {
            let mut c = spec.build(7);
            c.fit(&x, &y).unwrap();
            let s = c.score(&[1.5]).unwrap();
            assert!((0.0..=1.0).contains(&s), "{spec:?}: {s}");
        }
    }

    #[test]
    fn kinds_and_lineup() {
        assert_eq!(
            ClassifierSpec::default().kind(),
            ClassifierKind::RandomForest
        );
        let lineup = ClassifierSpec::paper_lineup();
        assert_eq!(lineup.len(), 4);
        assert_eq!(lineup[3].kind(), ClassifierKind::Random);
        let extended = ClassifierSpec::extended_lineup();
        assert_eq!(extended.len(), 7);
        assert_eq!(extended[4].kind(), ClassifierKind::NaiveBayes);
        assert_eq!(extended[5].kind(), ClassifierKind::Gbm);
        assert_eq!(
            extended.last().unwrap().kind(),
            ClassifierKind::Random,
            "Random stays last as the worst-case anchor"
        );
    }
}
