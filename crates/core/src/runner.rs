//! Repeated-trial experiment runner.
//!
//! The paper evaluates estimators by their *estimate distributions* over
//! repeated runs (violin plots summarized by IQR, §5). This runner
//! executes `trials` independent runs with per-trial seeds and produces
//! the summary statistics every repro binary prints.

use crate::error::CoreResult;
use crate::estimators::CountEstimator;
use crate::problem::CountingProblem;
use crate::report::PhaseTimings;
use lts_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Summary of repeated estimation trials.
#[derive(Debug, Clone)]
pub struct TrialStats {
    /// Per-trial point estimates.
    pub estimates: Vec<f64>,
    /// Five-number summary of the estimates.
    pub summary: Summary,
    /// Mean unique `q` evaluations per trial.
    pub mean_evals: f64,
    /// Mean per-phase timings.
    pub mean_timings: PhaseTimings,
    /// Fraction of trials whose interval covered the truth (`None`
    /// without ground truth or for interval-less estimators).
    pub coverage: Option<f64>,
    /// Root-mean-squared error against the truth (`None` without truth).
    pub rmse: Option<f64>,
    /// Tukey outliers (beyond 1.5·IQR) among the estimates.
    pub outliers: usize,
}

impl TrialStats {
    /// Interquartile range of the estimate distribution — the paper's
    /// headline spread metric.
    pub fn iqr(&self) -> f64 {
        self.summary.iqr()
    }

    /// Median estimate.
    pub fn median(&self) -> f64 {
        self.summary.median
    }
}

/// Run `trials` independent estimates. Each trial uses seed
/// `base_seed + trial` and resets the problem's predicate meter.
///
/// # Errors
///
/// Propagates the first estimator failure.
pub fn run_trials(
    problem: &CountingProblem,
    estimator: &dyn CountEstimator,
    budget: usize,
    trials: usize,
    base_seed: u64,
    truth: Option<f64>,
) -> CoreResult<TrialStats> {
    let mut estimates = Vec::with_capacity(trials);
    let mut covered = 0usize;
    let mut eval_sum = 0usize;
    let mut sse = 0.0f64;
    let mut t_learn = Duration::ZERO;
    let mut t_design = Duration::ZERO;
    let mut t_phase2 = Duration::ZERO;
    let mut t_label = Duration::ZERO;
    let mut t_total = Duration::ZERO;
    let interval_ok = estimator.provides_interval();

    for t in 0..trials {
        problem.reset_meter();
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(t as u64));
        let report = estimator.estimate(problem, budget, &mut rng)?;
        if let Some(truth) = truth {
            if interval_ok && report.estimate.interval.contains(truth) {
                covered += 1;
            }
            let d = report.count() - truth;
            sse += d * d;
        }
        eval_sum += report.evals;
        t_learn += report.timings.learn;
        t_design += report.timings.design;
        t_phase2 += report.timings.phase2;
        t_label += report.timings.labeling;
        t_total += report.timings.total;
        estimates.push(report.count());
    }

    let summary = Summary::from_slice(&estimates)?;
    let outliers = summary.tukey_outliers(&estimates);
    let tf = trials.max(1) as u32;
    Ok(TrialStats {
        outliers,
        mean_evals: eval_sum as f64 / f64::from(tf),
        mean_timings: PhaseTimings {
            learn: t_learn / tf,
            design: t_design / tf,
            phase2: t_phase2 / tf,
            labeling: t_label / tf,
            total: t_total / tf,
        },
        coverage: truth.map(|_| {
            if interval_ok {
                covered as f64 / f64::from(tf)
            } else {
                f64::NAN
            }
        }),
        rmse: truth.map(|_| (sse / f64::from(tf)).sqrt()),
        summary,
        estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::Srs;
    use crate::problem::tests_support::line_problem;

    #[test]
    fn runs_trials_and_summarizes() {
        let problem = line_problem(300, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        let stats = run_trials(&problem, &Srs::default(), 60, 50, 42, Some(truth)).unwrap();
        assert_eq!(stats.estimates.len(), 50);
        assert!((stats.median() - truth).abs() < 30.0);
        assert!(stats.iqr() >= 0.0);
        assert!((stats.mean_evals - 60.0).abs() < 1e-9);
        let coverage = stats.coverage.unwrap();
        assert!(coverage > 0.7, "coverage {coverage}");
        assert!(stats.rmse.unwrap() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = line_problem(200, 0.4);
        let a = run_trials(&problem, &Srs::default(), 40, 10, 7, None).unwrap();
        let b = run_trials(&problem, &Srs::default(), 40, 10, 7, None).unwrap();
        assert_eq!(a.estimates, b.estimates);
        let c = run_trials(&problem, &Srs::default(), 40, 10, 8, None).unwrap();
        assert_ne!(a.estimates, c.estimates);
    }

    #[test]
    fn no_truth_no_metrics() {
        let problem = line_problem(100, 0.5);
        let stats = run_trials(&problem, &Srs::default(), 20, 5, 1, None).unwrap();
        assert!(stats.coverage.is_none());
        assert!(stats.rmse.is_none());
    }
}
