//! Repeated-trial experiment runner.
//!
//! The paper evaluates estimators by their *estimate distributions* over
//! repeated runs (violin plots summarized by IQR, §5). This runner
//! executes `trials` independent runs with per-trial seeds and produces
//! the summary statistics every repro binary prints.
//!
//! Trials are independent by construction — trial `t` builds its own
//! `StdRng::seed_from_u64(base_seed + t)` and its own [`Labeler`] cache
//! — so [`run_trials`] fans them out across threads. Because each
//! trial's randomness is fully determined by its seed and results are
//! collected in trial order, the parallel path is **bit-identical** to
//! [`TrialExecution::Sequential`] (asserted by tests and the
//! `bench_parallel_runner` harness).
//!
//! [`Labeler`]: crate::problem::Labeler

use crate::error::CoreResult;
use crate::estimators::CountEstimator;
use crate::problem::CountingProblem;
use crate::report::{EstimateReport, PhaseTimings};
use lts_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Duration;

/// How [`run_trials_with`] schedules its independent trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialExecution {
    /// One trial at a time on the calling thread. Use this for
    /// uncontended wall-time measurements (e.g. the Figure 3 overhead
    /// analysis), where concurrent trials competing for cores would
    /// stretch every duration.
    Sequential,
    /// Trials fan out across threads (the default). Estimates, evals,
    /// coverage, and RMSE are bit-identical to `Sequential`. Per-phase
    /// attribution stays exact too — labeling time is measured with a
    /// thread-local in-predicate clock, not the shared meter — but the
    /// *magnitudes* of timings can stretch under core contention.
    #[default]
    Parallel,
}

/// Summary of repeated estimation trials.
#[derive(Debug, Clone)]
pub struct TrialStats {
    /// Per-trial point estimates.
    pub estimates: Vec<f64>,
    /// Five-number summary of the estimates.
    pub summary: Summary,
    /// Mean unique `q` evaluations per trial.
    pub mean_evals: f64,
    /// Mean per-phase timings.
    pub mean_timings: PhaseTimings,
    /// Fraction of trials whose interval covered the truth (`None`
    /// without ground truth or for interval-less estimators).
    pub coverage: Option<f64>,
    /// Root-mean-squared error against the truth (`None` without truth).
    pub rmse: Option<f64>,
    /// Tukey outliers (beyond 1.5·IQR) among the estimates.
    pub outliers: usize,
}

impl TrialStats {
    /// Interquartile range of the estimate distribution — the paper's
    /// headline spread metric.
    pub fn iqr(&self) -> f64 {
        self.summary.iqr()
    }

    /// Median estimate.
    pub fn median(&self) -> f64 {
        self.summary.median
    }
}

/// Run `trials` independent estimates in parallel. Each trial uses seed
/// `base_seed + trial`; the problem's predicate meter is reset once at
/// the start (it accumulates across all trials — read per-trial unique
/// evals from the reports, not the shared meter).
///
/// # Errors
///
/// Propagates the first (in trial order) estimator failure.
pub fn run_trials(
    problem: &CountingProblem,
    estimator: &dyn CountEstimator,
    budget: usize,
    trials: usize,
    base_seed: u64,
    truth: Option<f64>,
) -> CoreResult<TrialStats> {
    run_trials_with(
        problem,
        estimator,
        budget,
        trials,
        base_seed,
        truth,
        TrialExecution::default(),
    )
}

/// [`run_trials`] with an explicit execution mode.
///
/// # Errors
///
/// Propagates the first (in trial order) estimator failure.
pub fn run_trials_with(
    problem: &CountingProblem,
    estimator: &dyn CountEstimator,
    budget: usize,
    trials: usize,
    base_seed: u64,
    truth: Option<f64>,
    execution: TrialExecution,
) -> CoreResult<TrialStats> {
    problem.reset_meter();
    let one_trial = |t: usize| -> CoreResult<EstimateReport> {
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(t as u64));
        estimator.estimate(problem, budget, &mut rng)
    };
    let reports: Vec<CoreResult<EstimateReport>> = match execution {
        TrialExecution::Sequential => (0..trials).map(one_trial).collect(),
        TrialExecution::Parallel => (0..trials).into_par_iter().map(one_trial).collect(),
    };
    summarize(reports, estimator.provides_interval(), truth)
}

/// Fold per-trial reports (in trial order) into [`TrialStats`].
fn summarize(
    reports: Vec<CoreResult<EstimateReport>>,
    interval_ok: bool,
    truth: Option<f64>,
) -> CoreResult<TrialStats> {
    let trials = reports.len();
    let mut estimates = Vec::with_capacity(trials);
    let mut covered = 0usize;
    let mut eval_sum = 0usize;
    let mut sse = 0.0f64;
    let mut t_learn = Duration::ZERO;
    let mut t_design = Duration::ZERO;
    let mut t_phase2 = Duration::ZERO;
    let mut t_label = Duration::ZERO;
    let mut t_total = Duration::ZERO;

    for report in reports {
        let report = report?;
        if let Some(truth) = truth {
            if interval_ok && report.estimate.interval.contains(truth) {
                covered += 1;
            }
            let d = report.count() - truth;
            sse += d * d;
        }
        eval_sum += report.evals;
        t_learn += report.timings.learn;
        t_design += report.timings.design;
        t_phase2 += report.timings.phase2;
        t_label += report.timings.labeling;
        t_total += report.timings.total;
        estimates.push(report.count());
    }

    let summary = Summary::from_slice(&estimates)?;
    let outliers = summary.tukey_outliers(&estimates);
    let tf = trials.max(1) as u32;
    Ok(TrialStats {
        outliers,
        mean_evals: eval_sum as f64 / f64::from(tf),
        mean_timings: PhaseTimings {
            learn: t_learn / tf,
            design: t_design / tf,
            phase2: t_phase2 / tf,
            labeling: t_label / tf,
            total: t_total / tf,
        },
        coverage: truth.map(|_| {
            if interval_ok {
                covered as f64 / f64::from(tf)
            } else {
                f64::NAN
            }
        }),
        rmse: truth.map(|_| (sse / f64::from(tf)).sqrt()),
        summary,
        estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::Srs;
    use crate::problem::tests_support::line_problem;

    #[test]
    fn runs_trials_and_summarizes() {
        let problem = line_problem(300, 0.3);
        let truth = problem.exact_count().unwrap() as f64;
        let stats = run_trials(&problem, &Srs::default(), 60, 50, 42, Some(truth)).unwrap();
        assert_eq!(stats.estimates.len(), 50);
        assert!((stats.median() - truth).abs() < 30.0);
        assert!(stats.iqr() >= 0.0);
        assert!((stats.mean_evals - 60.0).abs() < 1e-9);
        let coverage = stats.coverage.unwrap();
        assert!(coverage > 0.7, "coverage {coverage}");
        assert!(stats.rmse.unwrap() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = line_problem(200, 0.4);
        let a = run_trials(&problem, &Srs::default(), 40, 10, 7, None).unwrap();
        let b = run_trials(&problem, &Srs::default(), 40, 10, 7, None).unwrap();
        assert_eq!(a.estimates, b.estimates);
        let c = run_trials(&problem, &Srs::default(), 40, 10, 8, None).unwrap();
        assert_ne!(a.estimates, c.estimates);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let problem = line_problem(250, 0.35);
        let truth = problem.exact_count().unwrap() as f64;
        let est = Srs::default();
        let seq = run_trials_with(
            &problem,
            &est,
            50,
            16,
            99,
            Some(truth),
            TrialExecution::Sequential,
        )
        .unwrap();
        let par = run_trials_with(
            &problem,
            &est,
            50,
            16,
            99,
            Some(truth),
            TrialExecution::Parallel,
        )
        .unwrap();
        // Bit-identical, not approximately equal.
        assert_eq!(seq.estimates, par.estimates);
        assert_eq!(seq.coverage, par.coverage);
        assert_eq!(seq.rmse, par.rmse);
        assert_eq!(seq.mean_evals, par.mean_evals);
        assert_eq!(seq.outliers, par.outliers);
    }

    #[test]
    fn meter_accumulates_across_trials() {
        let problem = line_problem(120, 0.5);
        problem.reset_meter();
        let stats = run_trials(&problem, &Srs::default(), 30, 4, 3, None).unwrap();
        assert!((stats.mean_evals - 30.0).abs() < 1e-9);
        // The shared meter holds the total across all trials.
        assert_eq!(problem.predicate_stats().evals, 4 * 30);
    }

    #[test]
    fn no_truth_no_metrics() {
        let problem = line_problem(100, 0.5);
        let stats = run_trials(&problem, &Srs::default(), 20, 5, 1, None).unwrap();
        assert!(stats.coverage.is_none());
        assert!(stats.rmse.is_none());
    }
}
