//! The counting problem and the budget-tracking labeler.

use crate::error::{CoreError, CoreResult};
use crate::feature::features_from_columns;
use lts_learn::Matrix;
use lts_table::{Metered, ObjectPredicate, PredicateStats, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// A counting problem: the object set `O` (paper Q2), the expensive
/// predicate `q` (paper Q3) behind a metering wrapper, and a feature row
/// per object for the learning-based estimators.
pub struct CountingProblem {
    objects: Arc<Table>,
    predicate: Arc<Metered<Arc<dyn ObjectPredicate>>>,
    features: Matrix,
    level: f64,
}

impl CountingProblem {
    /// Build a problem, extracting features from the named columns (the
    /// paper's "attributes referenced in q" heuristic).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/non-numeric feature columns or an
    /// empty object set.
    pub fn new(
        objects: Arc<Table>,
        predicate: Arc<dyn ObjectPredicate>,
        feature_columns: &[&str],
    ) -> CoreResult<Self> {
        let features = features_from_columns(&objects, feature_columns)?;
        Self::with_features(objects, predicate, features)
    }

    /// Build a problem from a pre-computed feature matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix row count differs from the object
    /// count or the object set is empty.
    pub fn with_features(
        objects: Arc<Table>,
        predicate: Arc<dyn ObjectPredicate>,
        features: Matrix,
    ) -> CoreResult<Self> {
        if objects.is_empty() {
            return Err(CoreError::InvalidConfig {
                message: "object set is empty".into(),
            });
        }
        if features.rows() != objects.len() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "feature rows ({}) != objects ({})",
                    features.rows(),
                    objects.len()
                ),
            });
        }
        Ok(Self {
            objects,
            predicate: Arc::new(Metered::new(predicate)),
            features,
            level: 0.95,
        })
    }

    /// Set the confidence level for intervals (default 0.95).
    #[must_use]
    pub fn with_level(mut self, level: f64) -> Self {
        self.level = level;
        self
    }

    /// Number of objects `N`.
    pub fn n(&self) -> usize {
        self.objects.len()
    }

    /// Confidence level for intervals.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The object table.
    pub fn objects(&self) -> &Arc<Table> {
        &self.objects
    }

    /// The metered predicate, shared. Shard sub-problems delegate their
    /// labeling here so `q` always sees the parent table and global row
    /// ids (predicates may capture per-row state indexed by global id),
    /// and so the parent's meter keeps counting across shards.
    pub(crate) fn metered_predicate(&self) -> Arc<Metered<Arc<dyn ObjectPredicate>>> {
        Arc::clone(&self.predicate)
    }

    /// Per-object features.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Evaluate `q` on one object (metered).
    ///
    /// # Errors
    ///
    /// Propagates predicate errors.
    pub fn label(&self, idx: usize) -> CoreResult<bool> {
        Ok(self.predicate.eval(&self.objects, idx)?)
    }

    /// Evaluate `q` on a batch of objects (metered as one oracle call
    /// of `idxs.len()` evaluations). Labels align with `idxs`.
    ///
    /// This is the raw batched oracle: every index is evaluated, even
    /// duplicates. Estimators should label through [`Labeler`], which
    /// dedups so the budget counts **unique** evaluations.
    ///
    /// # Errors
    ///
    /// Propagates predicate errors.
    pub fn label_batch(&self, idxs: &[usize]) -> CoreResult<Vec<bool>> {
        Ok(self.predicate.eval_batch(&self.objects, idxs)?)
    }

    /// Metering counters for `q`.
    pub fn predicate_stats(&self) -> PredicateStats {
        self.predicate.stats()
    }

    /// Reset the `q` meter (between trials).
    pub fn reset_meter(&self) {
        self.predicate.reset();
    }

    /// Exact `C(O, q)` by full evaluation — the expensive ground truth.
    ///
    /// # Errors
    ///
    /// Propagates predicate errors.
    pub fn exact_count(&self) -> CoreResult<usize> {
        let all: Vec<usize> = (0..self.n()).collect();
        Ok(self.label_batch(&all)?.into_iter().filter(|&l| l).count())
    }
}

/// A caching labeler: evaluates `q` at most once per object, so an
/// estimator's unique-evaluation count (its budget consumption) is
/// tracked precisely even when phases revisit objects.
pub struct Labeler<'a> {
    problem: &'a CountingProblem,
    cache: HashMap<usize, bool>,
    /// Labels injected via [`Labeler::preload`] — known before the run
    /// started (warm starts), so they never count as evaluations.
    preloaded: usize,
}

impl<'a> Labeler<'a> {
    /// Create a labeler for one estimation run.
    pub fn new(problem: &'a CountingProblem) -> Self {
        Self {
            problem,
            cache: HashMap::new(),
            preloaded: 0,
        }
    }

    /// Seed the cache with labels already known from a previous run
    /// (e.g. a warm start resuming from a stored training sample and
    /// design pilot). Preloaded labels cost nothing: they are excluded
    /// from [`Labeler::unique_evals`] and never reach the oracle.
    /// Indices already cached are ignored.
    pub fn preload(&mut self, idxs: &[usize], labels: &[bool]) {
        debug_assert_eq!(idxs.len(), labels.len());
        for (&i, &l) in idxs.iter().zip(labels) {
            if let std::collections::hash_map::Entry::Vacant(e) = self.cache.entry(i) {
                e.insert(l);
                self.preloaded += 1;
            }
        }
    }

    /// Label an object, consulting the cache first.
    ///
    /// # Errors
    ///
    /// Propagates predicate errors.
    pub fn label(&mut self, idx: usize) -> CoreResult<bool> {
        if let Some(&l) = self.cache.get(&idx) {
            return Ok(l);
        }
        let l = self.problem.label(idx)?;
        self.cache.insert(idx, l);
        Ok(l)
    }

    /// Label a batch of objects, returning labels aligned with `idxs`.
    ///
    /// Only indices missing from the cache are sent to the oracle, as
    /// **one deduplicated batch** — so the meter advances by exactly
    /// the number of *unique, previously unseen* indices, and budget
    /// accounting stays exact even when phases revisit objects or a
    /// draw contains repeats.
    ///
    /// # Errors
    ///
    /// Propagates predicate errors; on error no labels are cached.
    pub fn label_batch(&mut self, idxs: &[usize]) -> CoreResult<Vec<bool>> {
        let mut missing = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &i in idxs {
            if !self.cache.contains_key(&i) && seen.insert(i) {
                missing.push(i);
            }
        }
        if !missing.is_empty() {
            let labels = self.problem.label_batch(&missing)?;
            for (&i, l) in missing.iter().zip(labels) {
                self.cache.insert(i, l);
            }
        }
        Ok(idxs.iter().map(|i| self.cache[i]).collect())
    }

    /// Unique `q` evaluations so far (fresh oracle work only —
    /// preloaded labels are excluded).
    pub fn unique_evals(&self) -> usize {
        self.cache.len() - self.preloaded
    }

    /// Count of positives among a set of objects, labeling any
    /// not-yet-labeled member as one batched oracle call.
    ///
    /// # Errors
    ///
    /// Propagates predicate errors.
    pub fn count_positives(&mut self, indices: &[usize]) -> CoreResult<usize> {
        Ok(self
            .label_batch(indices)?
            .into_iter()
            .filter(|&l| l)
            .count())
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for estimator tests.
    use super::*;
    use lts_table::table::table_of_floats;
    use lts_table::FnPredicate;

    /// A 1-d problem: objects `x = 0..n`, positive iff `x < frac·n`.
    /// Perfectly learnable from the single feature.
    pub(crate) fn line_problem(n: usize, frac: f64) -> CountingProblem {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let threshold = frac * n as f64;
        let p: Arc<dyn ObjectPredicate> =
            Arc::new(FnPredicate::new("lt-frac", move |t: &Table, i| {
                Ok(t.floats("x")?[i] < threshold)
            }));
        CountingProblem::new(t, p, &["x"]).unwrap()
    }

    /// A ramp problem: `P(q = 1)` rises linearly from 0 to 1 as `x`
    /// crosses `[lo·n, hi·n]` (labels fixed per object via hashing).
    /// This is the paper's picture: confident regions at both ends and a
    /// wide uncertain band in the middle that stratified designs should
    /// isolate.
    pub(crate) fn ramp_problem(n: usize, lo: f64, hi: f64, seed: u64) -> CountingProblem {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let (lo, hi) = (lo * n as f64, hi * n as f64);
        let p: Arc<dyn ObjectPredicate> =
            Arc::new(FnPredicate::new("ramp", move |t: &Table, i| {
                let x = t.floats("x")?[i];
                let prob = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                Ok(u < prob)
            }));
        CountingProblem::new(t, p, &["x"]).unwrap()
    }

    /// A noisy 1-d problem: positive with probability depending on x
    /// (hard boundary + deterministic hash noise) — learnable but not
    /// perfectly separable.
    pub(crate) fn noisy_problem(n: usize, frac: f64, noise: f64, seed: u64) -> CountingProblem {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let threshold = frac * n as f64;
        let p: Arc<dyn ObjectPredicate> =
            Arc::new(FnPredicate::new("noisy", move |t: &Table, i| {
                let x = t.floats("x")?[i];
                let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                let base = x < threshold;
                Ok(if u < noise { !base } else { base })
            }));
        CountingProblem::new(t, p, &["x"]).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::table::table_of_floats;
    use lts_table::FnPredicate;

    fn problem() -> CountingProblem {
        let t = Arc::new(table_of_floats(&[("v", &[1.0, -1.0, 2.0, -2.0, 3.0])]).unwrap());
        let p: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("v")?[i] > 0.0)
        }));
        CountingProblem::new(t, p, &["v"]).unwrap()
    }

    #[test]
    fn problem_basics() {
        let p = problem();
        assert_eq!(p.n(), 5);
        assert_eq!(p.level(), 0.95);
        assert_eq!(p.features().rows(), 5);
        assert_eq!(p.exact_count().unwrap(), 3);
        assert!(p.predicate_stats().evals >= 5);
        p.reset_meter();
        assert_eq!(p.predicate_stats().evals, 0);
    }

    #[test]
    fn labeler_caches() {
        let p = problem();
        p.reset_meter();
        let mut l = Labeler::new(&p);
        assert!(l.label(0).unwrap());
        assert!(l.label(0).unwrap());
        assert!(!l.label(1).unwrap());
        assert_eq!(l.unique_evals(), 2);
        assert_eq!(p.predicate_stats().evals, 2); // cache prevented re-eval
        assert_eq!(l.count_positives(&[0, 1, 2]).unwrap(), 2);
        assert_eq!(l.unique_evals(), 3);
    }

    #[test]
    fn label_batch_dedups_within_and_across_calls() {
        let p = problem();
        p.reset_meter();
        let mut l = Labeler::new(&p);
        // Duplicates inside one batch cost one eval each.
        let labels = l.label_batch(&[0, 1, 0, 1, 2]).unwrap();
        assert_eq!(labels, vec![true, false, true, false, true]);
        assert_eq!(l.unique_evals(), 3);
        assert_eq!(p.predicate_stats().evals, 3);
        assert_eq!(p.predicate_stats().calls, 1);
        // Already-cached indices cost nothing; only index 3 is new.
        let labels = l.label_batch(&[2, 3, 2]).unwrap();
        assert_eq!(labels, vec![true, false, true]);
        assert_eq!(l.unique_evals(), 4);
        assert_eq!(p.predicate_stats().evals, 4);
        // Batch and single-row labeling agree.
        let mut fresh = Labeler::new(&p);
        for i in 0..p.n() {
            assert_eq!(
                fresh.label(i).unwrap(),
                l.label_batch(&[i]).unwrap()[0],
                "row {i}"
            );
        }
    }

    #[test]
    fn empty_and_fully_cached_batches_touch_no_oracle() {
        let p = problem();
        p.reset_meter();
        let mut l = Labeler::new(&p);
        assert!(l.label_batch(&[]).unwrap().is_empty());
        assert_eq!(p.predicate_stats().calls, 0);
        l.label_batch(&[0, 1]).unwrap();
        let calls = p.predicate_stats().calls;
        l.label_batch(&[1, 0]).unwrap();
        assert_eq!(
            p.predicate_stats().calls,
            calls,
            "cache hit must not call q"
        );
    }

    #[test]
    fn preloaded_labels_cost_nothing() {
        let p = problem();
        p.reset_meter();
        let mut l = Labeler::new(&p);
        l.preload(&[0, 1], &[true, false]);
        assert_eq!(l.unique_evals(), 0, "preloads are not evals");
        // Labeling preloaded ids is answered from the cache.
        assert_eq!(l.label_batch(&[0, 1]).unwrap(), vec![true, false]);
        assert_eq!(p.predicate_stats().calls, 0);
        // Fresh ids still hit the oracle and count.
        assert!(l.label(2).unwrap());
        assert_eq!(l.unique_evals(), 1);
        assert_eq!(p.predicate_stats().evals, 1);
        // Preloading an already-known id is a no-op (no double count).
        l.preload(&[2], &[false]);
        assert!(l.label(2).unwrap(), "existing label wins over preload");
        assert_eq!(l.unique_evals(), 1);
    }

    #[test]
    fn with_level_and_validation() {
        let p = problem().with_level(0.9);
        assert_eq!(p.level(), 0.9);
        let t = Arc::new(table_of_floats(&[("v", &[1.0])]).unwrap());
        let pred: Arc<dyn ObjectPredicate> =
            Arc::new(FnPredicate::new("any", |_: &Table, _| Ok(true)));
        let bad_features = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(CountingProblem::with_features(t, pred, bad_features).is_err());
    }
}
