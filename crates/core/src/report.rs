//! Estimate reports and phase timings.

use lts_sampling::CountEstimate;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-time breakdown of one estimation run, matching the paper's
/// Figure-3 phases.
///
/// `labeling` is the time spent inside the expensive predicate `q`
/// (the dominant cost the approach amortizes); the other fields are the
/// *overheads* the figure reports: `learn` (P1 learning: classifier
/// training, excluding the labeling of its training set), `design`
/// (P1 sample design: pilot indexing, variance estimates, strata
/// layout, allocation), and `phase2` (P2 overhead: scoring the
/// population, ordering, and the sampling machinery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// P1 Learning overhead (classifier fitting).
    pub learn: Duration,
    /// P1 Sample-design overhead (stratification + allocation).
    pub design: Duration,
    /// P2 overhead (scoring, ordering, draw machinery, estimation).
    pub phase2: Duration,
    /// Cumulative time inside `q`.
    pub labeling: Duration,
    /// Total wall time of the run.
    pub total: Duration,
}

impl PhaseTimings {
    /// Total overhead (everything except labeling).
    pub fn overhead(&self) -> Duration {
        self.learn + self.design + self.phase2
    }

    /// Overhead as a fraction of total runtime (the paper reports
    /// ≈ 0.2%).
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.overhead().as_secs_f64() / t
        }
    }
}

/// A pre-sampling forecast of estimate quality (the paper's concluding
/// future-work sketch: "use the performance characteristics of the
/// underlying classifier during the second phase of sampling to produce
/// an estimate on the quality of the estimate").
///
/// LSS can evaluate its design objective — Eq. (4), the estimated
/// variance of the stratified estimator — with the pilot-estimated
/// within-stratum deviations and the chosen allocation *before any
/// stage-2 label is drawn*. A user can inspect the forecast and abort
/// or re-budget a run whose design cannot reach the accuracy they need.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QualityForecast {
    /// Predicted standard error of the final count estimate.
    pub predicted_se: f64,
    /// Predicted confidence-interval halfwidth at the problem's level.
    pub predicted_halfwidth: f64,
    /// Stage-2 samples the forecast assumes.
    pub stage2_samples: usize,
}

/// The result of one estimation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimateReport {
    /// The count estimate with its interval.
    pub estimate: CountEstimate,
    /// Whether the interval is statistically meaningful (quantification
    /// learning produces point estimates only).
    pub has_interval: bool,
    /// Unique `q` evaluations consumed.
    pub evals: usize,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Estimator name.
    pub estimator: String,
    /// Free-form notes (e.g. "QLAC fell back to QLCC: tpr ≈ fpr").
    pub notes: Vec<String>,
    /// Design-time quality forecast (estimators with a design stage:
    /// LSS; `None` elsewhere).
    pub forecast: Option<QualityForecast>,
}

impl EstimateReport {
    /// The point estimate.
    pub fn count(&self) -> f64 {
        self.estimate.count
    }
}

/// Incremental phase timer used by estimator implementations: tracks
/// wall time per phase and attributes in-predicate time to `labeling`.
#[derive(Debug)]
pub(crate) struct PhaseTimer {
    start: std::time::Instant,
    timings: PhaseTimings,
}

impl PhaseTimer {
    pub(crate) fn new() -> Self {
        Self {
            start: std::time::Instant::now(),
            timings: PhaseTimings::default(),
        }
    }

    /// Run `f` attributed to a phase; label time accumulated inside is
    /// subtracted from the phase and credited to `labeling`.
    ///
    /// Label time is measured with the **thread-local** in-predicate
    /// clock ([`lts_table::thread_labeling_nanos`]), not the problem's
    /// shared meter — so attribution stays exact per run even when
    /// other trials label concurrently on other threads (the parallel
    /// trial runner).
    pub(crate) fn phase<T>(&mut self, which: Phase, f: impl FnOnce() -> T) -> T {
        let label_before = lts_table::thread_labeling_nanos();
        let t0 = std::time::Instant::now();
        let out = f();
        let wall = t0.elapsed();
        let label_delta = std::time::Duration::from_nanos(
            lts_table::thread_labeling_nanos().saturating_sub(label_before),
        );
        let overhead = wall.saturating_sub(label_delta);
        self.timings.labeling += label_delta;
        match which {
            Phase::Learn => self.timings.learn += overhead,
            Phase::Design => self.timings.design += overhead,
            Phase::Phase2 => self.timings.phase2 += overhead,
        }
        out
    }

    pub(crate) fn finish(mut self) -> PhaseTimings {
        self.timings.total = self.start.elapsed();
        self.timings
    }
}

/// Phases for [`PhaseTimer::phase`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Learn,
    Design,
    Phase2,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction() {
        let t = PhaseTimings {
            learn: Duration::from_millis(1),
            design: Duration::from_millis(2),
            phase2: Duration::from_millis(1),
            labeling: Duration::from_millis(996),
            total: Duration::from_millis(1000),
        };
        assert_eq!(t.overhead(), Duration::from_millis(4));
        assert!((t.overhead_fraction() - 0.004).abs() < 1e-9);
        let zero = PhaseTimings::default();
        assert_eq!(zero.overhead_fraction(), 0.0);
    }
}
