//! Determinism audit for the shared scoring pipeline (the tie-breaking
//! satellite of the batched-scoring refactor):
//!
//! * the population ordering is a **stable sort by `(score, id)`** —
//!   tied scores always resolve by ascending object id;
//! * scores and orderings are **bit-identical at every partition
//!   count** (these tests run unchanged under any pinned
//!   `RAYON_NUM_THREADS`; CI runs them at 1 and default). The golden
//!   seeded `run_trials` sweep across thread counts lives in its own
//!   binary, `scoring_thread_sweep.rs`, because it mutates the env var.

mod common;

use common::band_problem;
use lts_core::{CountingProblem, ScoredPopulation};
use lts_learn::{Classifier, ConstantScore, Knn, RandomForest};

fn fitted_forest(problem: &CountingProblem) -> RandomForest {
    let ids: Vec<usize> = (0..problem.n()).step_by(9).collect();
    let labels: Vec<bool> = ids.iter().map(|&i| problem.label(i).unwrap()).collect();
    let mut model = RandomForest::with_trees(9, 3);
    model
        .fit(&problem.features().gather(&ids), &labels)
        .unwrap();
    model
}

#[test]
fn scores_and_ordering_identical_across_partition_counts() {
    let problem = band_problem(700, 5);
    let model = fitted_forest(&problem);
    let members: Vec<usize> = (0..700).collect();
    let reference =
        ScoredPopulation::score_members_partitioned(&problem, &model, members.clone(), 1).unwrap();
    let ref_ordered = reference.clone().into_ordered();
    for parts in [2usize, 3, 7, 16, 64, 700, 2000] {
        let sp =
            ScoredPopulation::score_members_partitioned(&problem, &model, members.clone(), parts)
                .unwrap();
        let bits: Vec<u64> = sp.scores().iter().map(|s| s.to_bits()).collect();
        let ref_bits: Vec<u64> = reference.scores().iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits, ref_bits, "scores diverged at {parts} partitions");
        let ordered = sp.into_ordered();
        assert_eq!(
            ordered.order(),
            ref_ordered.order(),
            "ordering diverged at {parts} partitions"
        );
    }
}

#[test]
fn ordering_is_stable_sort_by_score_then_id() {
    let problem = band_problem(300, 9);
    // Total tie: constant scores must order by ascending object id.
    let ordered = ScoredPopulation::score_all(&problem, &ConstantScore::new(0.5))
        .unwrap()
        .into_ordered();
    let ids: Vec<usize> = (0..300).collect();
    assert_eq!(ordered.order(), ids.as_slice());

    // Heavy ties: kNN scores take at most k+1 distinct values, so most
    // scores collide — within each tie class, ids must ascend.
    let ids_train: Vec<usize> = (0..300).step_by(5).collect();
    let labels: Vec<bool> = ids_train
        .iter()
        .map(|&i| problem.label(i).unwrap())
        .collect();
    let mut knn = Knn::new(3).unwrap();
    knn.fit(&problem.features().gather(&ids_train), &labels)
        .unwrap();
    let ordered = ScoredPopulation::score_all(&problem, &knn)
        .unwrap()
        .into_ordered();
    for p in 1..ordered.n() {
        let (s0, s1) = (ordered.sorted_scores()[p - 1], ordered.sorted_scores()[p]);
        assert!(
            s0.total_cmp(&s1).is_lt()
                || (s0.to_bits() == s1.to_bits()
                    && ordered.object_at(p - 1) < ordered.object_at(p)),
            "tie at position {p} not broken by id"
        );
    }
}
