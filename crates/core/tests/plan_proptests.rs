//! Property tests for the planning layer: over random tables (values,
//! NULL-producing zeros, error-producing NaNs) and random conjunctions
//! of cheap and subquery-bearing conjuncts, the decomposed plan's
//! exact count must agree with a row-by-row reference model of the
//! two-pass pipeline, and — whenever both succeed — with the
//! monolithic [`CountQuery::exact_count`].
//!
//! Error semantics are asymmetric by design (see
//! `lts_table::decompose`): the monolithic evaluation short-circuits
//! left-to-right, so it may surface an error the decomposed pipeline
//! never reaches (a subquery error on a row the prefilter rejects) and
//! vice versa (a prefilter error the monolithic AND short-circuits
//! past). The properties therefore compare counts only on the
//! `Ok`/`Ok` diagonal and pin the decomposed pipeline's error-ness to
//! the reference model, which replays its exact evaluation order.

use lts_core::{CountingProblem, LogicalPlan, PhysicalPlan};
use lts_table::{
    contains_subquery, decompose, table_of_floats, CountQuery, Expr, ExprPredicate,
    PartitionedTable, RowCtx, Table,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One conjunct of the generated query, as pure data (the `Expr` needs
/// the table's `Arc`, so construction happens inside the test body).
#[derive(Debug, Clone)]
enum Conjunct {
    /// `kind ∈ {0, 1, 2}`: `a < t`, `b > t`, or `a / b > t` (the
    /// division yields NULL — Kleene false — wherever `b == 0`).
    Cheap(u8, f64),
    /// `kind ∈ {0, 1}`: `count_where(t, a > o.a) < k` or
    /// `count_where(t, b >= o.b) >= k`.
    Expensive(u8, usize),
}

impl Conjunct {
    fn to_expr(&self, table: &Arc<Table>) -> Expr {
        match *self {
            Conjunct::Cheap(0, t) => Expr::col("a").lt(Expr::lit(t)),
            Conjunct::Cheap(1, t) => Expr::col("b").gt(Expr::lit(t)),
            Conjunct::Cheap(_, t) => Expr::col("a").div(Expr::col("b")).gt(Expr::lit(t)),
            Conjunct::Expensive(0, k) => {
                Expr::count_where(Arc::clone(table), Expr::col("a").gt(Expr::outer("a")))
                    .lt(Expr::lit(k as f64))
            }
            Conjunct::Expensive(_, k) => {
                Expr::count_where(Arc::clone(table), Expr::col("b").ge(Expr::outer("b")))
                    .ge(Expr::lit(k as f64))
            }
        }
    }

    fn is_expensive(&self) -> bool {
        matches!(self, Conjunct::Expensive(..))
    }
}

/// Cell values: mostly ordinary floats, some exact zeros (division by
/// zero → NULL), occasionally NaN (comparison → type error).
fn cell() -> impl Strategy<Value = f64> {
    prop_oneof![
        30 => (-50i32..50).prop_map(|v| f64::from(v) / 10.0),
        4 => Just(0.0),
        1 => Just(f64::NAN),
    ]
}

fn conjuncts() -> impl Strategy<Value = Vec<Conjunct>> {
    let cheap = (0u8..3, -50i32..50).prop_map(|(k, t)| Conjunct::Cheap(k, f64::from(t) / 10.0));
    let expensive = (0u8..2, 0usize..16).prop_map(|(k, c)| Conjunct::Expensive(k, c));
    proptest::collection::vec(prop_oneof![3 => cheap, 2 => expensive], 1..5)
}

fn build_scenario(rows: &[(f64, f64)], specs: &[Conjunct]) -> (Arc<Table>, Expr) {
    let a: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let b: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let table = Arc::new(table_of_floats(&[("a", &a), ("b", &b)]).unwrap());
    let expr = specs
        .iter()
        .map(|c| c.to_expr(&table))
        .reduce(Expr::and)
        .unwrap();
    (table, expr)
}

/// Row-by-row reference model of the decomposed pipeline: pass 1 runs
/// the prefilter over every row (errors propagate, NULL is false);
/// pass 2 runs the full predicate over the survivors — exactly what
/// the restricted problem's delegating predicate does.
fn reference_count(table: &Arc<Table>, prefilter: Option<&Expr>, full: &Expr) -> Result<usize, ()> {
    let mut survivors = Vec::new();
    match prefilter {
        Some(p) => {
            for i in 0..table.len() {
                match p.eval_bool(RowCtx::top(table, i)) {
                    Ok(true) => survivors.push(i),
                    Ok(false) => {}
                    Err(_) => return Err(()),
                }
            }
        }
        None => survivors.extend(0..table.len()),
    }
    let mut count = 0;
    for &i in &survivors {
        match full.eval_bool(RowCtx::top(table, i)) {
            Ok(true) => count += 1,
            Ok(false) => {}
            Err(_) => return Err(()),
        }
    }
    Ok(count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The decomposed plan's exact count replays the two-pass reference
    /// model (same count, same error-ness), and both agree with the
    /// monolithic census whenever all paths succeed.
    #[test]
    fn planned_exact_count_matches_reference_and_monolithic(
        rows in proptest::collection::vec((cell(), cell()), 2..24),
        specs in conjuncts(),
        parts in 1usize..5,
    ) {
        let (table, expr) = build_scenario(&rows, &specs);

        // Structural contract: the split exists iff the conjunction
        // mixes cheap and subquery-bearing conjuncts.
        let d = decompose(&expr);
        let has_cheap = specs.iter().any(|c| !c.is_expensive());
        let has_expensive = specs.iter().any(Conjunct::is_expensive);
        prop_assert_eq!(d.exact_prefilter.is_some(), has_cheap && has_expensive);
        if let Some(p) = &d.exact_prefilter {
            prop_assert!(!contains_subquery(p));
        }
        prop_assert_eq!(contains_subquery(&d.residual), has_expensive);

        let reference = reference_count(&table, d.exact_prefilter.as_ref(), &expr);
        let predicate = Arc::new(ExprPredicate::new("q", expr.clone()));
        let problem = Arc::new(
            CountingProblem::new(Arc::clone(&table), Arc::clone(&predicate) as _, &["a", "b"])
                .unwrap(),
        );
        let pt = PartitionedTable::new(Arc::clone(&table), parts);

        match PhysicalPlan::build(Arc::clone(&problem), &pt, LogicalPlan::of(&expr)) {
            // Building the plan fails only when the prefilter scan
            // errors — which the reference's pass 1 must replay.
            Err(_) => prop_assert!(reference.is_err()),
            Ok(plan) => {
                let planned = plan.exact_count();
                match (&planned, &reference) {
                    (Ok(got), Ok(want)) => prop_assert_eq!(got, want),
                    (Err(_), Err(())) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "plan/reference disagree on error-ness: {other:?}"
                        )));
                    }
                }
                // Monolithic agreement on the Ok/Ok diagonal. (The
                // monolithic path may error where the planned one does
                // not, and vice versa — error shadowing is the one
                // freedom the decomposition contract grants.)
                let mono = CountQuery::new(Arc::clone(&table), predicate as _).exact_count();
                if let (Ok(got), Ok(want)) = (&planned, &mono) {
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
