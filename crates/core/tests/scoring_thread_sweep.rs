//! The golden thread-count sweep, isolated in its **own test binary**:
//! it mutates the process-wide `RAYON_NUM_THREADS`, which would race
//! with sibling tests (and silently defeat a pinned-thread CI leg) if
//! it shared a binary with them. Here the only other code running is
//! this sweep itself, and the incoming value is restored afterwards.

mod common;

use common::band_problem;
use lts_core::estimators::{CountEstimator, Lss, Lws, Qlcc};
use lts_core::{run_trials_with, ClassifierSpec, LearnPhaseConfig, TrialExecution};

/// Per-seed estimates from the learned estimators are bit-identical
/// under 1 thread, many threads, and the host default, in both
/// sequential and parallel trial execution. (No hardcoded golden
/// floats: the cross-configuration equality *is* the contract;
/// absolute values are pinned by the estimator test suites.)
#[test]
fn run_trials_estimates_identical_across_thread_counts() {
    let problem = band_problem(500, 7);
    let truth = problem.exact_count().unwrap() as f64;
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::Knn { k: 3 },
        ..LearnPhaseConfig::default()
    };
    let estimators: Vec<Box<dyn CountEstimator>> = vec![
        Box::new(Lss {
            learn,
            min_pilots_per_stratum: 2,
            ..Lss::default()
        }),
        Box::new(Lws {
            learn,
            ..Lws::default()
        }),
        Box::new(Qlcc { learn }),
    ];
    let incoming = std::env::var("RAYON_NUM_THREADS").ok();
    for est in &estimators {
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for threads in ["1", "5", ""] {
            // The rayon shim reads the var per call, so each sweep leg
            // genuinely runs at the requested worker count.
            if threads.is_empty() {
                std::env::remove_var("RAYON_NUM_THREADS");
            } else {
                std::env::set_var("RAYON_NUM_THREADS", threads);
            }
            for execution in [TrialExecution::Sequential, TrialExecution::Parallel] {
                let stats =
                    run_trials_with(&problem, est.as_ref(), 90, 8, 42, Some(truth), execution)
                        .unwrap();
                runs.push(stats.estimates.iter().map(|e| e.to_bits()).collect());
            }
        }
        for run in &runs[1..] {
            assert_eq!(
                run,
                &runs[0],
                "{}: estimates diverged across thread counts / execution modes",
                est.name()
            );
        }
    }
    // Restore the environment the harness launched us with.
    match incoming {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}
