//! Sharded-estimation determinism sweep, isolated in its **own test
//! binary** because it mutates the process-wide `RAYON_NUM_THREADS`
//! (sharing a binary with other tests would race, and would silently
//! defeat a pinned-thread CI leg).
//!
//! Contracts pinned here, for shard counts {1, 2, 4, 8}:
//!
//! * prepare digests and merged estimates are **bit-identical** across
//!   1 worker, many workers, and the host default;
//! * the merge is independent of shard execution order: composing the
//!   per-shard reports serially in *reverse* shard order reproduces the
//!   parallel merge bit-for-bit (addition order is fixed by shard
//!   index, not completion order);
//! * the merged interval is exactly the composed-variance interval —
//!   no post-hoc widening.

mod common;

use common::band_problem;
use lts_core::{shard_problems, shard_seed, Lss, ShardPlan};
use lts_stats::{compose_independent, Component};

#[test]
fn sharded_estimates_identical_across_threads_and_ordered_merges() {
    let problem = band_problem(2_000, 13);
    let lss = Lss {
        min_pilots_per_stratum: 2,
        ..Lss::default()
    };
    let (budget, seed) = (500, 4242);

    let incoming = std::env::var("RAYON_NUM_THREADS").ok();
    for k in [1usize, 2, 4, 8] {
        let plan = ShardPlan::uniform(problem.n(), k).unwrap();
        let mut runs: Vec<(u64, u64, u64, u64, u64)> = Vec::new();
        for threads in ["1", "5", ""] {
            // The rayon shim reads the var per call, so each leg
            // genuinely runs at the requested worker count.
            if threads.is_empty() {
                std::env::remove_var("RAYON_NUM_THREADS");
            } else {
                std::env::set_var("RAYON_NUM_THREADS", threads);
            }
            let warm = lss.prepare_sharded(&problem, &plan, budget, seed).unwrap();
            let r = lss
                .estimate_prepared_sharded(&problem, &warm, seed)
                .unwrap();
            runs.push((
                warm.digest(),
                r.estimate.count.to_bits(),
                r.estimate.std_error.to_bits(),
                r.estimate.interval.lo.to_bits(),
                r.estimate.interval.hi.to_bits(),
            ));
        }
        for run in &runs[1..] {
            assert_eq!(run, &runs[0], "k={k}: diverged across thread counts");
        }

        // Reverse-order serial recomposition: estimate shards highest
        // index first, then compose in shard order — must equal the
        // parallel merge exactly.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let warm = lss.prepare_sharded(&problem, &plan, budget, seed).unwrap();
        let merged = lss
            .estimate_prepared_sharded(&problem, &warm, seed)
            .unwrap();
        let subs = shard_problems(&problem, &plan).unwrap();
        let mut parts = vec![None; plan.k()];
        for s in (0..plan.k()).rev() {
            let sr = lss
                .estimate_prepared(&subs[s], &warm.shards()[s], shard_seed(seed, s))
                .unwrap();
            parts[s] = Some(Component {
                value: sr.estimate.count,
                variance: sr.estimate.std_error * sr.estimate.std_error,
                df: sr.estimate.df,
            });
        }
        let parts: Vec<Component> = parts.into_iter().map(|p| p.unwrap()).collect();
        let composed = compose_independent(&parts, problem.level()).unwrap();
        assert_eq!(
            merged.estimate.count.to_bits(),
            composed.value.to_bits(),
            "k={k}: merge depends on execution order"
        );
        assert_eq!(
            merged.estimate.std_error.to_bits(),
            composed.std_error.to_bits()
        );
        // No post-hoc widening: the merged interval is the composed
        // interval, clamped to the population only.
        let clamped = composed.interval.clamped(0.0, problem.n() as f64);
        assert_eq!(merged.estimate.interval.lo.to_bits(), clamped.lo.to_bits());
        assert_eq!(merged.estimate.interval.hi.to_bits(), clamped.hi.to_bits());
    }
    match incoming {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}
