//! Shared fixture for the scoring integration tests.

use lts_core::CountingProblem;
use lts_table::table::table_of_floats;
use lts_table::{FnPredicate, ObjectPredicate, Table};
use std::sync::Arc;

/// A 2-d problem with pseudo-random features and a linear-band
/// predicate (deterministic, no RNG).
pub fn band_problem(n: usize, seed: u64) -> CountingProblem {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let xs: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    let q: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("band", |t: &Table, i| {
        Ok(t.floats("x")?[i] + 0.3 * t.floats("y")?[i] < 6.0)
    }));
    CountingProblem::new(table, q, &["x", "y"]).unwrap()
}
