//! Planned-estimation determinism sweep, isolated in its **own test
//! binary** because it mutates the process-wide `RAYON_NUM_THREADS`
//! (sharing a binary with other tests would race, and would silently
//! defeat a pinned-thread CI leg).
//!
//! Contracts pinned here, for partition counts {1, 3, 8}:
//!
//! * the prefilter selection (survivor ids) is **identical** across
//!   1 worker, many workers, the host default, and every partition
//!   count — and equal to a forced-serial row-by-row scan;
//! * the planned exact count equals the monolithic census at every
//!   thread count;
//! * the restricted-residual warm digest and the planned estimate
//!   (count, std error, interval endpoints) are **bit-identical**
//!   across all thread-count × partition-count legs, and equal to the
//!   leg pinned to one worker (the forced-serial plan).

use lts_core::{CountingProblem, LogicalPlan, Lss, PhysicalPlan};
use lts_table::{table_of_floats, Expr, ExprPredicate, PartitionedTable, RowCtx};
use std::sync::Arc;

/// A decomposable conjunctive query over a 900-row table: a cheap
/// prefilter on `y` plus a correlated-subquery residual on `x`.
fn scenario() -> (Arc<CountingProblem>, Arc<lts_table::Table>, Expr) {
    let n = 900;
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    // A permutation so the prefilter keeps a scattered id set.
    let ys: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    // `y < 450 AND (SELECT COUNT(*) FROM t WHERE x < o.x) > 600`
    let expr = Expr::col("y").lt(Expr::lit(450.0)).and(
        Expr::count_where(Arc::clone(&table), Expr::col("x").lt(Expr::outer("x")))
            .gt(Expr::lit(600.0)),
    );
    let predicate = Arc::new(ExprPredicate::new("q", expr.clone()));
    let problem =
        Arc::new(CountingProblem::new(Arc::clone(&table), predicate, &["x", "y"]).unwrap());
    (problem, table, expr)
}

#[test]
fn planned_estimates_identical_across_threads_partitions_and_serial() {
    let (problem, table, expr) = scenario();
    let lss = Lss {
        min_pilots_per_stratum: 2,
        ..Lss::default()
    };
    let (budget, seed) = (160, 7171);

    // Forced-serial reference: row-by-row prefilter scan plus a
    // row-by-row residual census over the survivors.
    let logical = LogicalPlan::of(&expr);
    let prefilter = logical.prefilter.clone().expect("query must decompose");
    let serial_survivors: Vec<usize> = (0..table.len())
        .filter(|&i| prefilter.eval_bool(RowCtx::top(&table, i)).unwrap())
        .collect();
    assert_eq!(serial_survivors.len(), 450);
    let serial_count = serial_survivors
        .iter()
        .filter(|&&i| expr.eval_bool(RowCtx::top(&table, i)).unwrap())
        .count();
    let monolithic = problem.exact_count().unwrap();
    assert_eq!(serial_count, monolithic);

    let incoming = std::env::var("RAYON_NUM_THREADS").ok();
    let mut runs: Vec<(usize, u64, u64, u64, u64, u64)> = Vec::new();
    for threads in ["1", "5", ""] {
        // The rayon shim reads the var per call, so each leg genuinely
        // runs at the requested worker count.
        if threads.is_empty() {
            std::env::remove_var("RAYON_NUM_THREADS");
        } else {
            std::env::set_var("RAYON_NUM_THREADS", threads);
        }
        for parts in [1usize, 3, 8] {
            let pt = PartitionedTable::new(Arc::clone(&table), parts);
            let plan =
                PhysicalPlan::build(Arc::clone(&problem), &pt, LogicalPlan::of(&expr)).unwrap();
            assert_eq!(
                plan.survivors(),
                Some(serial_survivors.len()),
                "threads={threads:?} parts={parts}: selection diverged from serial"
            );
            assert_eq!(plan.exact_count().unwrap(), monolithic);
            let restricted = plan.restricted().expect("rows survive");
            let warm = lss.prepare(restricted, budget, seed).unwrap();
            let r = lss.estimate_prepared(restricted, &warm, seed).unwrap();
            runs.push((
                plan.survivors().unwrap(),
                warm.digest(),
                r.estimate.count.to_bits(),
                r.estimate.std_error.to_bits(),
                r.estimate.interval.lo.to_bits(),
                r.estimate.interval.hi.to_bits(),
            ));
        }
    }
    // All nine legs — including the 1-worker forced-serial one — must
    // agree bit-for-bit.
    for run in &runs[1..] {
        assert_eq!(run, &runs[0], "planned estimate diverged across legs");
    }
    // The planned estimate stays inside the restricted population, and
    // its interval covers the true count in this pinned configuration.
    let est = f64::from_bits(runs[0].2);
    assert!(est >= 0.0 && est <= serial_survivors.len() as f64);
    match incoming {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
}
