//! Object predicates and evaluation metering.
//!
//! The paper's cost model counts **evaluations of the expensive predicate
//! `q`** — every estimator has a labeling budget denominated in such
//! evaluations. [`Metered`] wraps any predicate and tracks the evaluation
//! count and cumulative wall time, so experiments can verify that no
//! estimator exceeds its budget and report overhead as a fraction of
//! labeling cost (Figure 3).

use crate::error::TableResult;
use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A Boolean predicate over rows of an object table: `q : O → {0, 1}`.
pub trait ObjectPredicate: Send + Sync {
    /// Evaluate `q(o)` for the object at `idx` in `objects`.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors (unknown columns, type
    /// mismatches, …).
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "predicate"
    }
}

impl<P: ObjectPredicate + ?Sized> ObjectPredicate for Arc<P> {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        (**self).eval(objects, idx)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A predicate defined by a closure (a "user-defined function").
pub struct FnPredicate<F> {
    f: F,
    name: String,
}

impl<F> FnPredicate<F>
where
    F: Fn(&Table, usize) -> TableResult<bool> + Send + Sync,
{
    /// Wrap a closure as a predicate.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            f,
            name: name.into(),
        }
    }
}

impl<F> ObjectPredicate for FnPredicate<F>
where
    F: Fn(&Table, usize) -> TableResult<bool> + Send + Sync,
{
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        (self.f)(objects, idx)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Snapshot of metering counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of `q` evaluations performed.
    pub evals: u64,
    /// Cumulative wall time spent inside `q`.
    pub elapsed: Duration,
}

impl PredicateStats {
    /// Mean time per evaluation (zero when no evaluations happened).
    pub fn mean_eval_time(&self) -> Duration {
        if self.evals == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.evals.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        }
    }
}

/// Wraps a predicate and meters evaluation count + wall time.
///
/// Cheap to share: counters are atomics, so a single `Arc<Metered>` can
/// be used across an entire estimation pipeline.
pub struct Metered<P: ?Sized> {
    evals: AtomicU64,
    nanos: AtomicU64,
    inner: P,
}

impl<P: ObjectPredicate> Metered<P> {
    /// Wrap a predicate.
    pub fn new(inner: P) -> Self {
        Self {
            evals: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            inner,
        }
    }

    /// The wrapped predicate.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ObjectPredicate + ?Sized> Metered<P> {
    /// Current counters.
    pub fn stats(&self) -> PredicateStats {
        PredicateStats {
            evals: self.evals.load(Ordering::Relaxed),
            elapsed: Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
        }
    }

    /// Reset the counters to zero.
    pub fn reset(&self) {
        self.evals.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
    }
}

impl<P: ObjectPredicate + ?Sized> ObjectPredicate for Metered<P> {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        let start = Instant::now();
        let result = self.inner.eval(objects, idx);
        let dt = start.elapsed();
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.nanos
            .fetch_add(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
        result
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of_floats;

    #[test]
    fn fn_predicate_evaluates() {
        let t = table_of_floats(&[("x", &[1.0, -2.0, 3.0])]).unwrap();
        let p = FnPredicate::new("positive", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 0.0)
        });
        assert!(p.eval(&t, 0).unwrap());
        assert!(!p.eval(&t, 1).unwrap());
        assert_eq!(p.name(), "positive");
    }

    #[test]
    fn metering_counts_evaluations() {
        let t = table_of_floats(&[("x", &[1.0, -2.0, 3.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 0.0)
        }));
        for i in 0..3 {
            let _ = p.eval(&t, i).unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.evals, 3);
        p.reset();
        assert_eq!(p.stats().evals, 0);
        assert_eq!(p.stats().elapsed, Duration::ZERO);
    }

    #[test]
    fn metering_through_arc() {
        let t = table_of_floats(&[("x", &[1.0])]).unwrap();
        let p = Arc::new(Metered::new(FnPredicate::new("any", |_: &Table, _| Ok(true))));
        let p2 = Arc::clone(&p);
        assert!(p2.eval(&t, 0).unwrap());
        assert!(p.eval(&t, 0).unwrap());
        assert_eq!(p.stats().evals, 2);
    }

    #[test]
    fn mean_eval_time_handles_zero() {
        let s = PredicateStats {
            evals: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(s.mean_eval_time(), Duration::ZERO);
        let s = PredicateStats {
            evals: 2,
            elapsed: Duration::from_nanos(100),
        };
        assert_eq!(s.mean_eval_time(), Duration::from_nanos(50));
    }

    #[test]
    fn errors_propagate_and_still_count() {
        let t = table_of_floats(&[("x", &[1.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("bad", |t: &Table, _| {
            t.floats("nope").map(|_| true)
        }));
        assert!(p.eval(&t, 0).is_err());
        assert_eq!(p.stats().evals, 1);
    }
}
