//! Object predicates and evaluation metering.
//!
//! The paper's cost model counts **evaluations of the expensive predicate
//! `q`** — every estimator has a labeling budget denominated in such
//! evaluations. [`Metered`] wraps any predicate and tracks the evaluation
//! count and cumulative wall time, so experiments can verify that no
//! estimator exceeds its budget and report overhead as a fraction of
//! labeling cost (Figure 3).

use crate::error::TableResult;
use crate::table::Table;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

thread_local! {
    static THREAD_LABEL_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Nanoseconds the **current thread** has spent inside metered
/// predicates (monotone, never reset).
///
/// Phase timers diff this around a closure to attribute labeling time
/// to the work that ran *on this thread* — exact even when other
/// threads label concurrently against the same shared [`Metered`]
/// (whose global counters would cross-charge). A predicate that spawns
/// its own worker threads internally under-reports here; the global
/// [`Metered::stats`] elapsed time still captures it.
pub fn thread_labeling_nanos() -> u64 {
    THREAD_LABEL_NANOS.with(Cell::get)
}

/// A Boolean predicate over rows of an object table: `q : O → {0, 1}`.
pub trait ObjectPredicate: Send + Sync {
    /// Evaluate `q(o)` for the object at `idx` in `objects`.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors (unknown columns, type
    /// mismatches, …).
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool>;

    /// Evaluate `q` on a batch of objects, returning labels aligned
    /// with `idxs`.
    ///
    /// The default implementation loops over [`eval`](Self::eval);
    /// predicates with amortizable per-call setup (plan caching, shared
    /// scans, SIMD/accelerator batches) should override it. Batching is
    /// the labeling pipeline's unit of work: estimators hand whole
    /// sample draws to the oracle instead of row-at-a-time calls.
    ///
    /// # Errors
    ///
    /// Propagates the first row's evaluation error.
    fn eval_batch(&self, objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        idxs.iter().map(|&i| self.eval(objects, i)).collect()
    }

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "predicate"
    }
}

impl<P: ObjectPredicate + ?Sized> ObjectPredicate for Arc<P> {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        (**self).eval(objects, idx)
    }
    fn eval_batch(&self, objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        (**self).eval_batch(objects, idxs)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A predicate defined by a closure (a "user-defined function").
pub struct FnPredicate<F> {
    f: F,
    name: String,
}

impl<F> FnPredicate<F>
where
    F: Fn(&Table, usize) -> TableResult<bool> + Send + Sync,
{
    /// Wrap a closure as a predicate.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            f,
            name: name.into(),
        }
    }
}

impl<F> ObjectPredicate for FnPredicate<F>
where
    F: Fn(&Table, usize) -> TableResult<bool> + Send + Sync,
{
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        (self.f)(objects, idx)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Snapshot of metering counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of `q` evaluations performed.
    pub evals: u64,
    /// Number of oracle calls that carried those evaluations (a batch
    /// of any size counts once; single-row `eval` counts once). The
    /// ratio `evals / calls` is the achieved batching factor.
    pub calls: u64,
    /// Cumulative wall time spent inside `q`.
    pub elapsed: Duration,
}

impl PredicateStats {
    /// Mean time per evaluation (zero when no evaluations happened).
    pub fn mean_eval_time(&self) -> Duration {
        if self.evals == 0 {
            Duration::ZERO
        } else {
            // Divide in nanosecond space: `Duration / u32` would clamp
            // eval counts above u32::MAX and lose sub-divisor nanos.
            let nanos = self.elapsed.as_nanos() / u128::from(self.evals);
            Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
        }
    }

    /// Mean evaluations per oracle call (the batching factor; zero when
    /// nothing ran).
    pub fn batching_factor(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.evals as f64 / self.calls as f64
        }
    }
}

/// Wraps a predicate and meters evaluation count + wall time.
///
/// Cheap to share: counters are atomics, so a single `Arc<Metered>` can
/// be used across an entire estimation pipeline.
pub struct Metered<P: ?Sized> {
    evals: AtomicU64,
    calls: AtomicU64,
    nanos: AtomicU64,
    inner: P,
}

impl<P: ObjectPredicate> Metered<P> {
    /// Wrap a predicate.
    pub fn new(inner: P) -> Self {
        Self {
            evals: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            inner,
        }
    }

    /// The wrapped predicate.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ObjectPredicate + ?Sized> Metered<P> {
    /// Current counters.
    pub fn stats(&self) -> PredicateStats {
        PredicateStats {
            evals: self.evals.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            elapsed: Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
        }
    }

    /// Reset the counters to zero.
    pub fn reset(&self) {
        self.evals.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn record(&self, evals: u64, dt: Duration) {
        // One saturating RMW per counter: counts stay exact under
        // concurrent single-row and batch evaluations (each batch
        // contributes its length exactly once, atomically), and a
        // pathological long-running session pins at `u64::MAX` instead
        // of silently wrapping to a tiny count (`fetch_add` wraps).
        saturating_fetch_add(&self.evals, evals);
        saturating_fetch_add(&self.calls, 1);
        let nanos = u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
        saturating_fetch_add(&self.nanos, nanos);
        THREAD_LABEL_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
        // Attribute the batch to whatever pipeline phase is in scope
        // on this thread (train / pilot / stage-2 / …). The labeler
        // records once per batch on the calling thread, so the
        // per-phase split is exact, not sampled.
        lts_obs::phase::record_evals(evals);
    }

    /// Force the raw counters to specific values — a test hook for
    /// exercising the saturation path without performing ~2⁶⁴ real
    /// evaluations.
    #[cfg(test)]
    fn force_counters(&self, evals: u64, calls: u64, nanos: u64) {
        self.evals.store(evals, Ordering::Relaxed);
        self.calls.store(calls, Ordering::Relaxed);
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

/// `fetch_add` that clamps at `u64::MAX` instead of wrapping. A CAS
/// loop: contention retries are bounded by the number of concurrent
/// writers, and the saturated state is absorbing (no retry storm once
/// pinned).
#[inline]
fn saturating_fetch_add(counter: &AtomicU64, delta: u64) -> u64 {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(delta);
        match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(prev) => return prev,
            Err(observed) => current = observed,
        }
    }
}

impl<P: ObjectPredicate + ?Sized> ObjectPredicate for Metered<P> {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        let start = Instant::now();
        let result = self.inner.eval(objects, idx);
        self.record(1, start.elapsed());
        result
    }
    fn eval_batch(&self, objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        if idxs.is_empty() {
            return Ok(Vec::new());
        }
        let start = Instant::now();
        let result = self.inner.eval_batch(objects, idxs);
        // An errored batch is charged in full even though the inner
        // implementation may have stopped at the first failing row: the
        // meter cannot observe how far a batch got, and its
        // budget-enforcement role prefers an upper bound over
        // under-counting. Estimation aborts on error, so the
        // overcharge never skews a completed run's statistics.
        self.record(idxs.len() as u64, start.elapsed());
        result
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of_floats;

    #[test]
    fn fn_predicate_evaluates() {
        let t = table_of_floats(&[("x", &[1.0, -2.0, 3.0])]).unwrap();
        let p = FnPredicate::new("positive", |t: &Table, i| Ok(t.floats("x")?[i] > 0.0));
        assert!(p.eval(&t, 0).unwrap());
        assert!(!p.eval(&t, 1).unwrap());
        assert_eq!(p.name(), "positive");
    }

    #[test]
    fn metering_counts_evaluations() {
        let t = table_of_floats(&[("x", &[1.0, -2.0, 3.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 0.0)
        }));
        for i in 0..3 {
            let _ = p.eval(&t, i).unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.evals, 3);
        p.reset();
        assert_eq!(p.stats().evals, 0);
        assert_eq!(p.stats().elapsed, Duration::ZERO);
    }

    #[test]
    fn metering_through_arc() {
        let t = table_of_floats(&[("x", &[1.0])]).unwrap();
        let p = Arc::new(Metered::new(FnPredicate::new("any", |_: &Table, _| {
            Ok(true)
        })));
        let p2 = Arc::clone(&p);
        assert!(p2.eval(&t, 0).unwrap());
        assert!(p.eval(&t, 0).unwrap());
        assert_eq!(p.stats().evals, 2);
    }

    #[test]
    fn mean_eval_time_handles_zero() {
        let s = PredicateStats {
            evals: 0,
            calls: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(s.mean_eval_time(), Duration::ZERO);
        assert_eq!(s.batching_factor(), 0.0);
        let s = PredicateStats {
            evals: 2,
            calls: 1,
            elapsed: Duration::from_nanos(100),
        };
        assert_eq!(s.mean_eval_time(), Duration::from_nanos(50));
        assert_eq!(s.batching_factor(), 2.0);
    }

    #[test]
    fn mean_eval_time_no_u32_clamp() {
        // Eval counts above u32::MAX used to be clamped, inflating the
        // mean; nanosecond arithmetic divides exactly.
        let evals = u64::from(u32::MAX) + 5;
        let s = PredicateStats {
            evals,
            calls: 1,
            elapsed: Duration::from_nanos(evals * 3),
        };
        assert_eq!(s.mean_eval_time(), Duration::from_nanos(3));
    }

    #[test]
    fn batch_eval_matches_rows_and_counts_once_per_row() {
        let t = table_of_floats(&[("x", &[1.0, -2.0, 3.0, -4.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 0.0)
        }));
        let idxs = [3, 0, 2, 0];
        let batch = p.eval_batch(&t, &idxs).unwrap();
        let rows: Vec<bool> = idxs
            .iter()
            .map(|&i| p.inner().eval(&t, i).unwrap())
            .collect();
        assert_eq!(batch, rows);
        let stats = p.stats();
        // The metered batch charged exactly idxs.len() evals in 1 call.
        assert_eq!(stats.evals, 4);
        assert_eq!(stats.calls, 1);
    }

    #[test]
    fn concurrent_batches_keep_counters_exact() {
        let xs: Vec<f64> = (0..256).map(|i| f64::from(i) - 128.0).collect();
        let t = table_of_floats(&[("x", &xs)]).unwrap();
        let p = Arc::new(Metered::new(FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 0.0)
        })));
        std::thread::scope(|s| {
            for k in 0..8 {
                let p = Arc::clone(&p);
                let t = &t;
                s.spawn(move || {
                    let idxs: Vec<usize> = (0..32).map(|j| (k * 32 + j) % 256).collect();
                    p.eval_batch(t, &idxs).unwrap();
                    p.eval(t, k).unwrap();
                });
            }
        });
        let stats = p.stats();
        assert_eq!(stats.evals, 8 * 32 + 8);
        assert_eq!(stats.calls, 16);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let t = table_of_floats(&[("x", &[1.0, 2.0, 3.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("any", |_: &Table, _| Ok(true)));
        // Counters one step from the ceiling: the next batch must pin
        // them at u64::MAX, not wrap to a tiny value.
        p.force_counters(u64::MAX - 1, u64::MAX, u64::MAX - 1);
        p.eval_batch(&t, &[0, 1, 2]).unwrap();
        let stats = p.stats();
        assert_eq!(stats.evals, u64::MAX, "evals must saturate");
        assert_eq!(stats.calls, u64::MAX, "calls must saturate");
        assert_eq!(
            stats.elapsed,
            Duration::from_nanos(u64::MAX),
            "nanos must saturate"
        );
        // The saturated state is absorbing.
        p.eval(&t, 0).unwrap();
        assert_eq!(p.stats().evals, u64::MAX);
        // And a reset recovers normal counting.
        p.reset();
        p.eval(&t, 0).unwrap();
        assert_eq!(p.stats().evals, 1);
    }

    #[test]
    fn errors_propagate_and_still_count() {
        let t = table_of_floats(&[("x", &[1.0])]).unwrap();
        let p = Metered::new(FnPredicate::new("bad", |t: &Table, _| {
            t.floats("nope").map(|_| true)
        }));
        assert!(p.eval(&t, 0).is_err());
        assert_eq!(p.stats().evals, 1);
    }
}
