//! Table schemas: named, typed fields with O(1) name resolution.

use crate::error::{TableError, TableResult};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields with a name → index map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Schema {
    /// Build a schema from fields.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::DuplicateColumn`] on duplicate names.
    pub fn new(fields: Vec<Field>) -> TableResult<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn {
                    name: f.name.clone(),
                });
            }
        }
        Ok(Self { fields, by_name })
    }

    /// Convenience constructor from `(name, type)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::DuplicateColumn`] on duplicate names.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> TableResult<Self> {
        Self::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Resolve a column name to its index.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownColumn`] if the name does not exist.
    pub fn index_of(&self, name: &str) -> TableResult<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownColumn { name: name.into() })
    }

    /// Field at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ColumnIndexOutOfRange`] when out of range.
    pub fn field(&self, index: usize) -> TableResult<&Field> {
        self.fields
            .get(index)
            .ok_or(TableError::ColumnIndexOutOfRange {
                index,
                len: self.fields.len(),
            })
    }

    /// Rebuild the internal name map (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_names() {
        let s = Schema::from_pairs(&[("x", DataType::Float), ("y", DataType::Float)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("x").unwrap(), 0);
        assert_eq!(s.index_of("y").unwrap(), 1);
        assert!(s.index_of("z").is_err());
        assert_eq!(s.field(1).unwrap().name, "y");
        assert!(s.field(2).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Float)]);
        assert!(matches!(err, Err(TableError::DuplicateColumn { .. })));
    }

    #[test]
    fn equality_ignores_index_map() {
        let a = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let mut b = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        b.rebuild_index();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.fields().len(), 0);
    }
}
