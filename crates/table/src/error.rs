//! Error types for the table engine.

use std::fmt;

/// Errors produced by the table engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A referenced column does not exist.
    UnknownColumn {
        /// The column name that failed to resolve.
        name: String,
    },
    /// A column index was out of range.
    ColumnIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of columns in the schema.
        len: usize,
    },
    /// A row index was out of range.
    RowIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// A value had the wrong type for the operation.
    TypeMismatch {
        /// Description of what was expected.
        expected: &'static str,
        /// Description of what was found.
        found: String,
    },
    /// Column lengths disagree when building a table.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// A duplicate column name was supplied.
    DuplicateColumn {
        /// The duplicated name.
        name: String,
    },
    /// An expression referenced the outer row, but no outer row is bound.
    NoOuterRow,
    /// An arithmetic error (e.g. division by zero on integers).
    Arithmetic {
        /// Description of the failure.
        message: &'static str,
    },
    /// An expression is invalid (e.g. wrong arity for a function).
    InvalidExpression {
        /// Description of the problem.
        message: String,
    },
    /// A condition string failed to parse.
    Parse {
        /// Byte offset of the failure in the input.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An empty table or column set where data is required.
    Empty,
    /// A paged-storage I/O or integrity fault surfaced during a scan
    /// (see `storage::StorageError` for the structured form).
    Storage {
        /// Description of the storage fault.
        message: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            TableError::ColumnIndexOutOfRange { index, len } => {
                write!(f, "column index {index} out of range ({len} columns)")
            }
            TableError::RowIndexOutOfRange { index, len } => {
                write!(f, "row index {index} out of range ({len} rows)")
            }
            TableError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TableError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "column length mismatch: expected {expected}, found {found}"
                )
            }
            TableError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            TableError::NoOuterRow => {
                write!(f, "expression references outer row but none is bound")
            }
            TableError::Arithmetic { message } => write!(f, "arithmetic error: {message}"),
            TableError::InvalidExpression { message } => write!(f, "invalid expression: {message}"),
            TableError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            TableError::Empty => write!(f, "empty input"),
            TableError::Storage { message } => write!(f, "storage error: {message}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Convenience result alias for the table engine.
pub type TableResult<T> = Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = TableError::UnknownColumn {
            name: "wins".into(),
        };
        assert!(e.to_string().contains("wins"));
        let e = TableError::RowIndexOutOfRange { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = TableError::TypeMismatch {
            expected: "float",
            found: "Str(\"a\")".into(),
        };
        assert!(e.to_string().contains("float"));
    }
}
