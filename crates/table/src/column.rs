//! Typed columnar storage.

use crate::error::{TableError, TableResult};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single typed column of values.
///
/// Columns are dense (non-nullable): `Value::Null` only arises during
/// expression evaluation (e.g. division by zero), never in storage. This
/// matches the synthetic workloads of the paper and keeps scans branch-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Bool => Column::Bool(Vec::with_capacity(capacity)),
            DataType::Int => Column::Int(Vec::with_capacity(capacity)),
            DataType::Float => Column::Float(Vec::with_capacity(capacity)),
            DataType::Str => Column::Str(Vec::with_capacity(capacity)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RowIndexOutOfRange`] when out of range.
    pub fn get(&self, row: usize) -> TableResult<Value> {
        let oob = || TableError::RowIndexOutOfRange {
            index: row,
            len: self.len(),
        };
        Ok(match self {
            Column::Bool(v) => Value::Bool(*v.get(row).ok_or_else(oob)?),
            Column::Int(v) => Value::Int(*v.get(row).ok_or_else(oob)?),
            Column::Float(v) => Value::Float(*v.get(row).ok_or_else(oob)?),
            Column::Str(v) => Value::Str(v.get(row).ok_or_else(oob)?.clone()),
        })
    }

    /// Append a value, coercing `Int` → `Float` where needed.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch if the value does not fit the column.
    pub fn push(&mut self, value: Value) -> TableResult<()> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(b),
            (Column::Int(v), Value::Int(i)) => v.push(i),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Float(v), Value::Int(i)) => v.push(i as f64),
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (col, value) => {
                return Err(TableError::TypeMismatch {
                    expected: match col.data_type() {
                        DataType::Bool => "bool",
                        DataType::Int => "int",
                        DataType::Float => "float",
                        DataType::Str => "str",
                    },
                    found: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Borrow as a float slice.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch if the column is not `Float`.
    pub fn as_floats(&self) -> TableResult<&[f64]> {
        match self {
            Column::Float(v) => Ok(v),
            other => Err(TableError::TypeMismatch {
                expected: "float column",
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Borrow as an int slice.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch if the column is not `Int`.
    pub fn as_ints(&self) -> TableResult<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            other => Err(TableError::TypeMismatch {
                expected: "int column",
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Materialize the column as `f64`s (ints and bools coerce).
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for string columns.
    pub fn to_f64_vec(&self) -> TableResult<Vec<f64>> {
        Ok(match self {
            Column::Float(v) => v.clone(),
            Column::Int(v) => v.iter().map(|&i| i as f64).collect(),
            Column::Bool(v) => v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            Column::Str(_) => {
                return Err(TableError::TypeMismatch {
                    expected: "numeric column",
                    found: "str".into(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Int(-2)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap(), Value::Int(-2));
        assert!(c.get(2).is_err());
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Float(1.5)).unwrap();
        assert_eq!(c.as_floats().unwrap(), &[3.0, 1.5]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Bool);
        assert!(c.push(Value::Int(1)).is_err());
        let c = Column::empty(DataType::Str);
        assert!(c.as_floats().is_err());
        assert!(c.to_f64_vec().is_err());
    }

    #[test]
    fn to_f64_coerces() {
        let mut c = Column::empty(DataType::Bool);
        c.push(Value::Bool(true)).unwrap();
        c.push(Value::Bool(false)).unwrap();
        assert_eq!(c.to_f64_vec().unwrap(), vec![1.0, 0.0]);
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        assert_eq!(c.to_f64_vec().unwrap(), vec![7.0]);
    }

    #[test]
    fn with_capacity_reserves() {
        let c = Column::with_capacity(DataType::Float, 100);
        assert!(c.is_empty());
        if let Column::Float(v) = c {
            assert!(v.capacity() >= 100);
        } else {
            unreachable!();
        }
    }
}
