//! Conjunctive plan analysis: split a predicate into a **cheap exact
//! prefilter** and an **expensive residual**.
//!
//! The paper prices estimation in unique evaluations of the expensive
//! predicate `q` — yet a query like
//! `price < 50 AND (SELECT COUNT(*) …) < k` pays that price even for
//! rows a vectorized scan could discard for free. This module is the
//! analysis half of the fix: it flattens the top-level `AND` chain of a
//! parsed [`Expr`], classifies each conjunct, and hands the planner a
//! [`DecomposedQuery`] whose prefilter can run as an exact partitioned
//! scan while only the residual ever touches the metered oracle.
//!
//! **Classification.** A conjunct is *cheap-exact* when it contains no
//! aggregate subquery anywhere ([`contains_subquery`]): such an
//! expression is a pure column computation the vectorized engine
//! ([`crate::vector`] / [`crate::partition`]) evaluates without oracle
//! cost. A conjunct containing [`Expr::Subquery`] — the
//! [`crate::AggThresholdPredicate`] shape — is *expensive*: each
//! evaluation scans the inner table, which is exactly the cost the
//! estimators meter.
//!
//! **Semantic contract (Kleene NULL / error semantics).** For boolean
//! acceptance ([`Expr::eval_bool`]) `AND` is order-free on *values*:
//! NULL and FALSE both reject a row, so
//! `accept(c₁ AND … AND cₙ) = accept(P) ∧ accept(R)` for any
//! partition of the conjuncts into `P` and `R`. The decomposed plan
//! evaluates the residual only on rows where the prefilter is
//! **definitively true**, so a row enters the residual population only
//! if every cheap conjunct accepted it. What the split may change is
//! *which evaluation error surfaces*: the original left-to-right order
//! short-circuits on the first FALSE conjunct and may thereby shadow an
//! error in a later conjunct, while the split evaluates all cheap
//! conjuncts first (and may shadow residual errors on rows the
//! prefilter rejects). This is the same freedom the fingerprint
//! canonicalization already claims when it reorders `AND`/`OR` chains:
//! error-free evaluations are bit-identical, and every consumer aborts
//! on any error, so no cached artifact depends on which error wins.

use crate::expr::{BinaryOp, Expr};

/// Whether the expression contains an aggregate subquery anywhere —
/// including inside a subquery's own `WHERE` filter or aggregate
/// argument. Subquery-bearing expressions are the expensive-oracle
/// class: evaluating one costs a scan of the inner table per row.
pub fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Column(_) | Expr::Outer(_) => false,
        Expr::Unary(_, e) => contains_subquery(e),
        Expr::Binary(_, l, r) => contains_subquery(l) || contains_subquery(r),
        Expr::Call(_, args) => args.iter().any(contains_subquery),
        Expr::Subquery(_) => true,
    }
}

/// Flatten the top-level `AND` chain of `expr` into its conjuncts, in
/// source order. A non-`AND` expression is its own single conjunct;
/// `AND`s nested under `OR`/`NOT`/arithmetic are *not* flattened (they
/// are not top-level conjuncts and cannot be split soundly).
pub fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary(BinaryOp::And, l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Rebuild a non-empty conjunct list as a left-associated `AND` chain.
fn conjoin(mut parts: Vec<Expr>) -> Expr {
    let rest = parts.split_off(1);
    let first = parts.into_iter().next().expect("non-empty conjunction");
    rest.into_iter().fold(first, Expr::and)
}

/// A query split into an exact prefilter and an expensive residual.
///
/// `exact_prefilter` is `Some` **iff the split is useful**: the
/// top-level conjunction has at least one cheap conjunct *and* at least
/// one expensive conjunct. Otherwise (pure-cheap, pure-expensive, or a
/// non-`AND` top level) the prefilter is `None` and `residual` is the
/// whole original expression — the monolithic plan is already optimal,
/// and callers keep their existing path bit-for-bit.
#[derive(Debug, Clone)]
pub struct DecomposedQuery {
    /// Conjunction of the subquery-free conjuncts (source order
    /// preserved), or `None` when the query does not usefully split.
    pub exact_prefilter: Option<Expr>,
    /// Conjunction of the remaining conjuncts (source order preserved);
    /// the whole expression when `exact_prefilter` is `None`.
    pub residual: Expr,
}

impl DecomposedQuery {
    /// Whether the query split into both a prefilter and a residual.
    pub fn is_decomposed(&self) -> bool {
        self.exact_prefilter.is_some()
    }
}

/// Split `expr` into a cheap exact prefilter and an expensive residual
/// (see [`DecomposedQuery`] for when the split engages and the module
/// docs for the semantic contract).
pub fn decompose(expr: &Expr) -> DecomposedQuery {
    let (cheap, expensive): (Vec<&Expr>, Vec<&Expr>) = split_conjuncts(expr)
        .into_iter()
        .partition(|c| !contains_subquery(c));
    if cheap.is_empty() || expensive.is_empty() {
        return DecomposedQuery {
            exact_prefilter: None,
            residual: expr.clone(),
        };
    }
    DecomposedQuery {
        exact_prefilter: Some(conjoin(cheap.into_iter().cloned().collect())),
        residual: conjoin(expensive.into_iter().cloned().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, RowCtx};
    use crate::table::{table_of_floats, Table};
    use std::sync::Arc;

    fn inner() -> Arc<Table> {
        Arc::new(table_of_floats(&[("v", &[1.0, 2.0, 3.0, 4.0])]).unwrap())
    }

    /// `(SELECT COUNT(*) FROM inner WHERE v > o.x) < 3`
    fn expensive() -> Expr {
        Expr::count_where(inner(), Expr::col("v").gt(Expr::outer("x"))).lt(Expr::lit(3.0))
    }

    #[test]
    fn detects_subqueries_at_any_depth() {
        assert!(!contains_subquery(&Expr::col("x").lt(Expr::lit(1.0))));
        assert!(!contains_subquery(
            &Expr::col("x").div(Expr::col("y")).ge(Expr::lit(0.5)).not()
        ));
        assert!(contains_subquery(&expensive()));
        // Nested under NOT, arithmetic, and function calls.
        assert!(contains_subquery(&expensive().not()));
        assert!(contains_subquery(
            &expensive().or(Expr::col("x").lt(Expr::lit(1.0)))
        ));
        assert!(contains_subquery(
            &Expr::subquery(inner(), None, AggFunc::Sum, Some(Expr::col("v")))
                .sqrt()
                .gt(Expr::lit(1.0))
        ));
    }

    #[test]
    fn splits_mixed_conjunction_preserving_order() {
        let a = Expr::col("x").lt(Expr::lit(5.0));
        let b = expensive();
        let c = Expr::col("y").gt(Expr::lit(0.0));
        let expr = a.clone().and(b.clone()).and(c.clone());
        assert_eq!(split_conjuncts(&expr).len(), 3);
        let d = decompose(&expr);
        assert!(d.is_decomposed());
        // Cheap conjuncts keep source order: `x < 5 AND y > 0`.
        assert_eq!(d.exact_prefilter.unwrap().to_string(), a.and(c).to_string());
        assert_eq!(d.residual.to_string(), b.to_string());
    }

    #[test]
    fn pure_cheap_and_pure_expensive_do_not_split() {
        let cheap = Expr::col("x")
            .lt(Expr::lit(5.0))
            .and(Expr::col("y").gt(Expr::lit(0.0)));
        let d = decompose(&cheap);
        assert!(!d.is_decomposed());
        assert_eq!(d.residual.to_string(), cheap.to_string());

        let exp = expensive().and(expensive());
        assert!(!decompose(&exp).is_decomposed());
    }

    #[test]
    fn or_top_level_is_one_conjunct() {
        // `cheap OR expensive` cannot be split: OR needs the expensive
        // side even on rows the cheap side rejects.
        let expr = Expr::col("x").lt(Expr::lit(5.0)).or(expensive());
        assert_eq!(split_conjuncts(&expr).len(), 1);
        assert!(!decompose(&expr).is_decomposed());
    }

    #[test]
    fn and_nested_under_not_is_not_flattened() {
        let expr = Expr::col("x").lt(Expr::lit(5.0)).and(expensive()).not();
        assert_eq!(split_conjuncts(&expr).len(), 1);
        assert!(!decompose(&expr).is_decomposed());
    }

    /// Row-by-row, the decomposed acceptance `P ∧ R` equals monolithic
    /// acceptance — including NULL-valued conjuncts (div-by-zero), which
    /// Kleene-reject through `eval_bool` on both sides of the split.
    #[test]
    fn decomposed_acceptance_matches_monolithic_with_nulls() {
        // y = 0 rows make `x / y > 0.5` NULL → rejected.
        let table = table_of_floats(&[
            ("x", &[1.0, 2.0, 3.0, 4.0, 5.0]),
            ("y", &[2.0, 0.0, 4.0, 0.0, 8.0]),
        ])
        .unwrap();
        let cheap = Expr::col("x").div(Expr::col("y")).gt(Expr::lit(0.4));
        let expr = cheap.and(expensive());
        let d = decompose(&expr);
        let p = d.exact_prefilter.as_ref().unwrap();
        for row in 0..table.len() {
            let mono = expr.eval_bool(RowCtx::top(&table, row)).unwrap();
            let pre = p.eval_bool(RowCtx::top(&table, row)).unwrap();
            let split = pre && d.residual.eval_bool(RowCtx::top(&table, row)).unwrap();
            assert_eq!(mono, split, "row {row}");
        }
    }
}
