//! A small in-memory table engine for the `learning-to-sample` workspace.
//!
//! The paper (§2) frames counting queries as: a set of objects `O` that is
//! cheap to enumerate (query Q2), and an expensive per-object predicate
//! `q` (query Q3) that may involve correlated aggregate subqueries,
//! self-joins with HAVING clauses, or arbitrary user-defined functions.
//! This crate provides exactly that substrate:
//!
//! * typed columnar [`Table`]s with a [`Schema`],
//! * an expression AST ([`expr::Expr`]) with arithmetic, comparisons,
//!   `SQRT`/`POWER`, boolean logic, and **correlated scalar aggregate
//!   subqueries** evaluated by nested-loop scan — the evaluation strategy
//!   the paper argues a generic system falls back to,
//! * the Q1 → (Q2, Q3) decomposition ([`query`]): distinct projection for
//!   the object set and an aggregate-threshold predicate,
//! * conjunctive plan analysis ([`mod@decompose`]): split a parsed predicate
//!   into a cheap exact prefilter and an expensive subquery-bearing
//!   residual, feeding the planning layer upstream,
//! * a vectorized, column-at-a-time expression engine ([`vector`]) that
//!   evaluates an `Expr` over a whole table (or a row range, or a
//!   selection vector) in typed branch-free kernels, result-identical
//!   to the row-wise interpreter — the fast path behind every batched
//!   predicate scan,
//! * a partitioned table layer with a parallel scan executor
//!   ([`partition`]): zero-copy row-range partitions over `Arc`-shared
//!   columns, driven in parallel with results bit-identical to the
//!   serial scan at every partition and thread count,
//! * instrumented predicates ([`predicate::Metered`]) that meter the
//!   number and wall time of expensive `q` evaluations — the budget
//!   currency of every estimator in the paper,
//! * a 2-d [`grid::GridIndex`] used for surrogate-attribute
//!   stratification (the paper's SSP baseline) and for fast exact ground
//!   truth,
//! * a SQL-ish condition [`parser`] (the paper's textual predicate form,
//!   correlated subqueries included) with a round-trippable `Display`,
//! * [`csv`] reading/writing with per-column type inference, so
//!   populations come from real files the way the paper's datasets did.

#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod decompose;
pub mod error;
pub mod expr;
pub mod grid;
pub mod parser;
pub mod partition;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod storage;
pub mod table;
pub mod value;
pub mod vector;

pub use column::Column;
pub use csv::{read_csv_path, read_csv_str, write_csv_string, CsvOptions};
pub use decompose::{contains_subquery, decompose, split_conjuncts, DecomposedQuery};
pub use error::{TableError, TableResult};
pub use expr::{AggFunc, AggSubquery, BinaryOp, CmpOp, Expr, Func, RowCtx, UnaryOp};
pub use grid::GridIndex;
pub use parser::{parse_condition, TableRegistry};
pub use partition::{par_eval_bool_ids, partition_bounds, PartitionedTable};
pub use predicate::{thread_labeling_nanos, FnPredicate, Metered, ObjectPredicate, PredicateStats};
pub use query::{distinct_project, AggThresholdPredicate, CountQuery, ExprPredicate};
pub use schema::{Field, Schema};
pub use storage::{
    BufferManager, BufferSnapshot, PagedTable, ScanSnapshot, Snapshot, StorageError, StorageResult,
    TableManifest, ZoneMap,
};
pub use table::{table_of_floats, Table, TableBuilder};
pub use value::{DataType, Value};
pub use vector::{eval_bool_columnar, eval_columnar, eval_columnar_sel, Batch, RowSel};
