//! Expression AST and evaluator.
//!
//! Expressions support arithmetic, SQL three-valued boolean logic,
//! comparisons with numeric coercion, a few scalar functions
//! (`SQRT`/`POWER`/`ABS`), and — the key piece for this paper —
//! **correlated scalar aggregate subqueries**: a subexpression of the form
//!
//! ```sql
//! (SELECT COUNT(*) FROM D WHERE SQRT(POWER(o.x - x, 2) + POWER(o.y - y, 2)) <= d)
//! ```
//!
//! where `o` is the *outer* (object) row. Subqueries are evaluated by a
//! nested-loop scan over their table, which is precisely the expensive
//! evaluation strategy the paper assumes for complex predicates (§1).
//!
//! One level of correlation is supported (`Expr::Outer` refers to the row
//! the predicate is being evaluated for), which covers every query shape
//! in the paper (Examples 1 and 2 and the general Q3 form).
//!
//! # Three-valued logic, NULL, and errors
//!
//! Columns are dense (never NULL), so `Value::Null` arises only *during*
//! evaluation. The engine distinguishes **NULL results** from **errors**,
//! and both the row-wise evaluator here and the vectorized engine in
//! [`crate::vector`] enforce the same rules (asserted by property tests):
//!
//! * **NULL sources** — a `NULL` literal, division by zero (SQL style:
//!   `x / 0` is `NULL`, not an error), and NULL propagation: any
//!   arithmetic, comparison, or scalar function applied to a NULL
//!   operand yields NULL, and `AVG`/`MIN`/`MAX` over an empty set are
//!   NULL.
//! * **Kleene AND/OR** — `FALSE AND NULL = FALSE`, `TRUE OR NULL =
//!   TRUE`, otherwise NULL stays NULL; `NOT NULL = NULL`.
//! * **Predicates** — [`Expr::eval_bool`] maps a NULL result to `false`
//!   (SQL `WHERE` semantics), so NULL never silently counts an object.
//! * **Errors, not NULL** — unknown columns, type mismatches (e.g.
//!   comparing a string to a float, or a NaN comparison), integer
//!   overflow (including `-i64::MIN` and `ABS(i64::MIN)`), wrong
//!   function arity, and an unbound outer row are hard errors.
//! * **Short-circuit shadowing** — `AND` evaluates its left operand
//!   first; where it is `FALSE`, the right operand is *not* evaluated,
//!   so an error the right side would raise is shadowed (symmetrically
//!   for `OR`/`TRUE`, and a NULL `POWER` base shadows its exponent).
//!   The vectorized engine evaluates both sides eagerly but masks
//!   per-row errors to reproduce exactly this behaviour.

use crate::error::{TableError, TableResult};
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces a float).
    Div,
    /// Comparison operators.
    Cmp(CmpOp),
    /// Logical AND (SQL three-valued).
    And,
    /// Logical OR (SQL three-valued).
    Or,
}

/// Comparison operators with SQL numeric coercion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison to an ordering.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical NOT (SQL three-valued).
    Not,
    /// Numeric negation.
    Neg,
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Func {
    /// `SQRT(x)`
    Sqrt,
    /// `POWER(x, y)`
    Power,
    /// `ABS(x)`
    Abs,
}

/// Aggregate functions for subqueries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` over rows passing the filter.
    Count,
    /// `SUM(arg)`.
    Sum,
    /// `MIN(arg)`.
    Min,
    /// `MAX(arg)`.
    Max,
    /// `AVG(arg)`.
    Avg,
}

/// A correlated scalar aggregate subquery:
/// `(SELECT agg(arg) FROM table WHERE filter)`, where `filter`/`arg` may
/// reference the outer row through [`Expr::Outer`].
#[derive(Debug, Clone)]
pub struct AggSubquery {
    /// The table scanned by the subquery.
    pub table: Arc<Table>,
    /// The WHERE clause (may reference `Outer` columns).
    pub filter: Option<Expr>,
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregate argument (required for all but `Count`).
    pub arg: Option<Expr>,
}

/// An expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column of the current row.
    Column(String),
    /// A column of the outer (object) row — correlation.
    Outer(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Scalar function call.
    Call(Func, Vec<Expr>),
    /// Correlated scalar aggregate subquery.
    Subquery(Box<AggSubquery>),
}

/// Evaluation context: the current row, plus (optionally) the outer row
/// for correlated subqueries.
#[derive(Debug, Clone, Copy)]
pub struct RowCtx<'a> {
    /// Table of the current row.
    pub table: &'a Table,
    /// Index of the current row.
    pub row: usize,
    /// Outer (object) row, if evaluating inside a subquery.
    pub outer: Option<(&'a Table, usize)>,
}

impl<'a> RowCtx<'a> {
    /// Context for a top-level row (no outer binding).
    pub fn top(table: &'a Table, row: usize) -> Self {
        Self {
            table,
            row,
            outer: None,
        }
    }
}

// Builder methods deliberately mirror SQL operator names (`add`, `sub`,
// `lt`, …) like other expression DSLs; they are not std::ops overloads
// because `Expr` construction must stay explicit.
#[allow(clippy::should_implement_trait)]
impl Expr {
    // ------------------------------------------------------------------
    // Builders
    // ------------------------------------------------------------------

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// A column reference on the current row.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// A column reference on the outer (object) row.
    pub fn outer(name: impl Into<String>) -> Expr {
        Expr::Outer(name.into())
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Add, Box::new(self), Box::new(rhs))
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Sub, Box::new(self), Box::new(rhs))
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Mul, Box::new(self), Box::new(rhs))
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Div, Box::new(self), Box::new(rhs))
    }
    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Eq), Box::new(self), Box::new(rhs))
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Ne), Box::new(self), Box::new(rhs))
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Lt), Box::new(self), Box::new(rhs))
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Le), Box::new(self), Box::new(rhs))
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Gt), Box::new(self), Box::new(rhs))
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Cmp(CmpOp::Ge), Box::new(self), Box::new(rhs))
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::And, Box::new(self), Box::new(rhs))
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::Or, Box::new(self), Box::new(rhs))
    }
    /// `NOT self`
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }
    /// `-self`
    pub fn neg(self) -> Expr {
        Expr::Unary(UnaryOp::Neg, Box::new(self))
    }
    /// `SQRT(self)`
    pub fn sqrt(self) -> Expr {
        Expr::Call(Func::Sqrt, vec![self])
    }
    /// `POWER(self, e)`
    pub fn power(self, e: Expr) -> Expr {
        Expr::Call(Func::Power, vec![self, e])
    }
    /// `ABS(self)`
    pub fn abs(self) -> Expr {
        Expr::Call(Func::Abs, vec![self])
    }

    /// A correlated aggregate subquery expression.
    pub fn subquery(
        table: Arc<Table>,
        filter: Option<Expr>,
        func: AggFunc,
        arg: Option<Expr>,
    ) -> Expr {
        Expr::Subquery(Box::new(AggSubquery {
            table,
            filter,
            func,
            arg,
        }))
    }

    /// Shorthand for `(SELECT COUNT(*) FROM table WHERE filter)`.
    pub fn count_where(table: Arc<Table>, filter: Expr) -> Expr {
        Expr::subquery(table, Some(filter), AggFunc::Count, None)
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluate the expression in the given row context.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown columns, type mismatches, missing
    /// outer rows, or malformed function calls.
    pub fn eval(&self, ctx: RowCtx<'_>) -> TableResult<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(name) => ctx.table.get_by_name(ctx.row, name),
            Expr::Outer(name) => {
                let (t, r) = ctx.outer.ok_or(TableError::NoOuterRow)?;
                t.get_by_name(r, name)
            }
            Expr::Unary(op, e) => eval_unary(*op, e.eval(ctx)?),
            Expr::Binary(op, l, r) => eval_binary(*op, l, r, ctx),
            Expr::Call(f, args) => eval_call(*f, args, ctx),
            Expr::Subquery(sq) => eval_subquery(sq, ctx),
        }
    }

    /// Evaluate as a predicate (SQL semantics: `Null` is false).
    ///
    /// # Errors
    ///
    /// Returns an error if the expression does not produce a boolean.
    pub fn eval_bool(&self, ctx: RowCtx<'_>) -> TableResult<bool> {
        self.eval(ctx)?.truthy()
    }
}

/// Apply a unary operator to an already-evaluated value. Shared by the
/// row-wise evaluator and the vectorized kernels in [`crate::vector`],
/// so the two paths cannot drift.
pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> TableResult<Value> {
    match op {
        UnaryOp::Not => Ok(match v {
            Value::Null => Value::Null,
            other => Value::Bool(!other.as_bool()?),
        }),
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or(TableError::Arithmetic {
                    message: "integer overflow",
                }),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(TableError::TypeMismatch {
                expected: "numeric",
                found: format!("{other:?}"),
            }),
        },
    }
}

fn eval_binary(op: BinaryOp, l: &Expr, r: &Expr, ctx: RowCtx<'_>) -> TableResult<Value> {
    // Three-valued logic short-circuits.
    match op {
        BinaryOp::And => {
            let lv = l.eval(ctx)?;
            if let Value::Bool(false) = lv {
                return Ok(Value::Bool(false));
            }
            let rv = r.eval(ctx)?;
            return kleene_and(lv, rv);
        }
        BinaryOp::Or => {
            let lv = l.eval(ctx)?;
            if let Value::Bool(true) = lv {
                return Ok(Value::Bool(true));
            }
            let rv = r.eval(ctx)?;
            return kleene_or(lv, rv);
        }
        _ => {}
    }
    let lv = l.eval(ctx)?;
    let rv = r.eval(ctx)?;
    apply_binary(op, lv, rv)
}

/// Apply a non-short-circuiting binary operator to two already-evaluated
/// values (for `AND`/`OR` this is the no-short-circuit Kleene tail).
/// Shared by the row-wise evaluator and the vectorized kernels in
/// [`crate::vector`], so the two paths cannot drift.
pub(crate) fn apply_binary(op: BinaryOp, lv: Value, rv: Value) -> TableResult<Value> {
    match op {
        BinaryOp::And => return kleene_and(lv, rv),
        BinaryOp::Or => return kleene_or(lv, rv),
        _ => {}
    }
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
            if let (Value::Int(a), Value::Int(b)) = (&lv, &rv) {
                let res = match op {
                    BinaryOp::Add => a.checked_add(*b),
                    BinaryOp::Sub => a.checked_sub(*b),
                    BinaryOp::Mul => a.checked_mul(*b),
                    _ => unreachable!(),
                };
                return res.map(Value::Int).ok_or(TableError::Arithmetic {
                    message: "integer overflow",
                });
            }
            let (a, b) = (lv.as_f64()?, rv.as_f64()?);
            Ok(Value::Float(match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                _ => unreachable!(),
            }))
        }
        BinaryOp::Div => {
            let (a, b) = (lv.as_f64()?, rv.as_f64()?);
            if b == 0.0 {
                Ok(Value::Null) // SQL: division by zero — we surface NULL.
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinaryOp::Cmp(cmp) => match lv.sql_cmp(&rv) {
            Some(ord) => Ok(Value::Bool(cmp.test(ord))),
            None => Err(TableError::TypeMismatch {
                expected: "comparable values",
                found: format!("{lv:?} vs {rv:?}"),
            }),
        },
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

pub(crate) fn kleene_and(l: Value, r: Value) -> TableResult<Value> {
    Ok(match (bool3(&l)?, bool3(&r)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

pub(crate) fn kleene_or(l: Value, r: Value) -> TableResult<Value> {
    Ok(match (bool3(&l)?, bool3(&r)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn bool3(v: &Value) -> TableResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        other => Ok(Some(other.as_bool()?)),
    }
}

fn eval_call(f: Func, args: &[Expr], ctx: RowCtx<'_>) -> TableResult<Value> {
    let arity = match f {
        Func::Sqrt | Func::Abs => 1,
        Func::Power => 2,
    };
    if args.len() != arity {
        return Err(TableError::InvalidExpression {
            message: format!("{f:?} expects {arity} argument(s), got {}", args.len()),
        });
    }
    let a = args[0].eval(ctx)?;
    if a.is_null() {
        return Ok(Value::Null);
    }
    match f {
        Func::Sqrt => Ok(Value::Float(a.as_f64()?.sqrt())),
        Func::Abs => match a {
            Value::Int(i) => i
                .checked_abs()
                .map(Value::Int)
                .ok_or(TableError::Arithmetic {
                    message: "integer overflow",
                }),
            other => Ok(Value::Float(other.as_f64()?.abs())),
        },
        Func::Power => {
            let b = args[1].eval(ctx)?;
            if b.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Float(a.as_f64()?.powf(b.as_f64()?)))
        }
    }
}

fn eval_subquery(sq: &AggSubquery, ctx: RowCtx<'_>) -> TableResult<Value> {
    // The row we were called for becomes the *outer* row inside the
    // subquery. One level of correlation is supported.
    let outer = Some((ctx.table, ctx.row));
    let inner = sq.table.as_ref();
    let mut count: i64 = 0;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for row in 0..inner.len() {
        let ictx = RowCtx {
            table: inner,
            row,
            outer,
        };
        if let Some(filter) = &sq.filter {
            if !filter.eval_bool(ictx)? {
                continue;
            }
        }
        count += 1;
        if !matches!(sq.func, AggFunc::Count) {
            let arg = sq
                .arg
                .as_ref()
                .ok_or_else(|| TableError::InvalidExpression {
                    message: format!("{:?} requires an argument expression", sq.func),
                })?;
            let v = arg.eval(ictx)?.as_f64()?;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
    }
    Ok(match sq.func {
        AggFunc::Count => Value::Int(count),
        AggFunc::Sum => Value::Float(if count == 0 { 0.0 } else { sum }),
        AggFunc::Avg => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(sum / count as f64)
            }
        }
        AggFunc::Min => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(min)
            }
        }
        AggFunc::Max => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(max)
            }
        }
    })
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// Renders the expression as SQL-ish text that
/// [`crate::parser::parse_condition`] reads back, with every compound
/// subexpression parenthesized (no precedence reconstruction needed).
/// Subqueries print `FROM <table>` as a placeholder — the AST holds the
/// table by reference, not by name, so subquery output is for debugging
/// and is the one non-round-trippable form.
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::Null => write!(f, "NULL"),
                Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
                Value::Int(i) => write!(f, "{i}"),
                // `{:?}` prints the shortest digits that round-trip.
                Value::Float(x) => write!(f, "{x:?}"),
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            },
            Expr::Column(name) => f.write_str(name),
            Expr::Outer(name) => write!(f, "o.{name}"),
            Expr::Unary(op, e) => match op {
                UnaryOp::Not => write!(f, "(NOT {e})"),
                UnaryOp::Neg => write!(f, "(- {e})"),
            },
            Expr::Binary(op, l, r) => {
                let sym = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::And => "AND",
                    BinaryOp::Or => "OR",
                    BinaryOp::Cmp(c) => match c {
                        CmpOp::Eq => "=",
                        CmpOp::Ne => "<>",
                        CmpOp::Lt => "<",
                        CmpOp::Le => "<=",
                        CmpOp::Gt => ">",
                        CmpOp::Ge => ">=",
                    },
                };
                write!(f, "({l} {sym} {r})")
            }
            Expr::Call(func, args) => {
                let name = match func {
                    Func::Sqrt => "SQRT",
                    Func::Power => "POWER",
                    Func::Abs => "ABS",
                };
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Subquery(sq) => {
                write!(f, "(SELECT {}(", sq.func)?;
                match &sq.arg {
                    Some(arg) => write!(f, "{arg}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ") FROM <table>")?;
                if let Some(filter) = &sq.filter {
                    write!(f, " WHERE {filter}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of_floats;

    fn t() -> Table {
        table_of_floats(&[("x", &[1.0, 2.0, 3.0]), ("y", &[10.0, 20.0, 30.0])]).unwrap()
    }

    #[test]
    fn arithmetic_and_columns() {
        let table = t();
        let e = Expr::col("x").add(Expr::col("y")).mul(Expr::lit(2.0));
        let v = e.eval(RowCtx::top(&table, 1)).unwrap();
        assert_eq!(v, Value::Float(44.0));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let table = t();
        let e = Expr::lit(3i64).add(Expr::lit(4i64));
        assert_eq!(e.eval(RowCtx::top(&table, 0)).unwrap(), Value::Int(7));
        let e = Expr::lit(3i64).add(Expr::lit(4.0));
        assert_eq!(e.eval(RowCtx::top(&table, 0)).unwrap(), Value::Float(7.0));
        // Overflow is an error, not a wrap.
        let e = Expr::lit(i64::MAX).add(Expr::lit(1i64));
        assert!(e.eval(RowCtx::top(&table, 0)).is_err());
    }

    #[test]
    fn negation_and_abs_overflow_are_errors() {
        // -i64::MIN and ABS(i64::MIN) don't fit in i64; they must be
        // arithmetic errors, not panics or silent wraps.
        let table = t();
        let ctx = RowCtx::top(&table, 0);
        assert!(matches!(
            Expr::lit(i64::MIN).neg().eval(ctx),
            Err(TableError::Arithmetic { .. })
        ));
        assert!(matches!(
            Expr::lit(i64::MIN).abs().eval(ctx),
            Err(TableError::Arithmetic { .. })
        ));
        assert_eq!(
            Expr::lit(i64::MIN + 1).neg().eval(ctx).unwrap(),
            Value::Int(i64::MAX)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let table = t();
        let e = Expr::lit(1.0).div(Expr::lit(0.0));
        assert!(e.eval(RowCtx::top(&table, 0)).unwrap().is_null());
    }

    #[test]
    fn comparisons_and_logic() {
        let table = t();
        let ctx = RowCtx::top(&table, 2); // x=3, y=30
        assert_eq!(
            Expr::col("x").ge(Expr::lit(3.0)).eval(ctx).unwrap(),
            Value::Bool(true)
        );
        let e = Expr::col("x")
            .gt(Expr::lit(1.0))
            .and(Expr::col("y").lt(Expr::lit(25.0)));
        assert_eq!(e.eval(ctx).unwrap(), Value::Bool(false));
        let e = Expr::col("x")
            .gt(Expr::lit(10.0))
            .or(Expr::col("y").eq(Expr::lit(30.0)));
        assert_eq!(e.eval(ctx).unwrap(), Value::Bool(true));
        assert_eq!(Expr::lit(true).not().eval(ctx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic() {
        let table = t();
        let ctx = RowCtx::top(&table, 0);
        let null = || Expr::Literal(Value::Null);
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert_eq!(
            null().and(Expr::lit(false)).eval(ctx).unwrap(),
            Value::Bool(false)
        );
        assert!(null().and(Expr::lit(true)).eval(ctx).unwrap().is_null());
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
        assert_eq!(
            null().or(Expr::lit(true)).eval(ctx).unwrap(),
            Value::Bool(true)
        );
        assert!(null().or(Expr::lit(false)).eval(ctx).unwrap().is_null());
        // NOT NULL = NULL; comparisons with NULL are NULL.
        assert!(null().not().eval(ctx).unwrap().is_null());
        assert!(null().lt(Expr::lit(1.0)).eval(ctx).unwrap().is_null());
        // eval_bool treats NULL as false.
        assert!(!null().eval_bool(ctx).unwrap());
    }

    #[test]
    fn scalar_functions() {
        let table = t();
        let ctx = RowCtx::top(&table, 0);
        assert_eq!(Expr::lit(9.0).sqrt().eval(ctx).unwrap(), Value::Float(3.0));
        assert_eq!(
            Expr::lit(2.0).power(Expr::lit(10.0)).eval(ctx).unwrap(),
            Value::Float(1024.0)
        );
        assert_eq!(Expr::lit(-3i64).abs().eval(ctx).unwrap(), Value::Int(3));
        assert_eq!(Expr::lit(-2.5).neg().eval(ctx).unwrap(), Value::Float(2.5));
        // Wrong arity errors.
        let bad = Expr::Call(Func::Sqrt, vec![]);
        assert!(bad.eval(ctx).is_err());
    }

    #[test]
    fn outer_requires_binding() {
        let table = t();
        let e = Expr::outer("x");
        assert!(matches!(
            e.eval(RowCtx::top(&table, 0)),
            Err(TableError::NoOuterRow)
        ));
    }

    #[test]
    fn correlated_count_subquery() {
        // For each row o, count rows with x >= o.x  → 3, 2, 1.
        let table = Arc::new(t());
        let sub = Expr::count_where(Arc::clone(&table), Expr::col("x").ge(Expr::outer("x")));
        for (row, want) in [(0usize, 3i64), (1, 2), (2, 1)] {
            let got = sub.eval(RowCtx::top(&table, row)).unwrap();
            assert_eq!(got, Value::Int(want), "row {row}");
        }
    }

    #[test]
    fn aggregate_functions_over_subquery() {
        let table = Arc::new(t());
        let mk = |func, arg: Option<Expr>| {
            Expr::subquery(
                Arc::clone(&table),
                Some(Expr::col("x").gt(Expr::lit(1.0))),
                func,
                arg,
            )
        };
        let ctx_t = t();
        let ctx = RowCtx::top(&ctx_t, 0);
        assert_eq!(
            mk(AggFunc::Sum, Some(Expr::col("y"))).eval(ctx).unwrap(),
            Value::Float(50.0)
        );
        assert_eq!(
            mk(AggFunc::Min, Some(Expr::col("y"))).eval(ctx).unwrap(),
            Value::Float(20.0)
        );
        assert_eq!(
            mk(AggFunc::Max, Some(Expr::col("y"))).eval(ctx).unwrap(),
            Value::Float(30.0)
        );
        assert_eq!(
            mk(AggFunc::Avg, Some(Expr::col("y"))).eval(ctx).unwrap(),
            Value::Float(25.0)
        );
        // Empty aggregate: AVG/MIN/MAX are NULL, SUM is 0, COUNT is 0.
        let empty = |func, arg: Option<Expr>| {
            Expr::subquery(Arc::clone(&table), Some(Expr::lit(false)), func, arg)
        };
        assert_eq!(
            empty(AggFunc::Count, None).eval(ctx).unwrap(),
            Value::Int(0)
        );
        assert!(empty(AggFunc::Avg, Some(Expr::col("y")))
            .eval(ctx)
            .unwrap()
            .is_null());
        // SUM/MIN/MAX without arg is an error.
        assert!(mk(AggFunc::Sum, None).eval(ctx).is_err());
    }

    #[test]
    fn example1_distance_predicate_shape() {
        // SQRT(POWER(o.x - x, 2) + POWER(o.y - y, 2)) <= d, few-neighbors.
        let pts =
            Arc::new(table_of_floats(&[("x", &[0.0, 1.0, 5.0]), ("y", &[0.0, 0.0, 0.0])]).unwrap());
        let dist = Expr::outer("x")
            .sub(Expr::col("x"))
            .power(Expr::lit(2.0))
            .add(Expr::outer("y").sub(Expr::col("y")).power(Expr::lit(2.0)))
            .sqrt();
        let neighbors = Expr::count_where(Arc::clone(&pts), dist.le(Expr::lit(2.0)));
        // Point 0 has neighbors {0,1} within distance 2 → count 2.
        let got = neighbors.eval(RowCtx::top(&pts, 0)).unwrap();
        assert_eq!(got, Value::Int(2));
        // Point 2 only has itself.
        let got = neighbors.eval(RowCtx::top(&pts, 2)).unwrap();
        assert_eq!(got, Value::Int(1));
    }
}
