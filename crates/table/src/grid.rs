//! A 2-d uniform grid index.
//!
//! Two uses in this workspace:
//!
//! 1. **Surrogate stratification** for the SSP baseline (paper §3.1): the
//!    paper grids the 2-d attribute space into the desired number of
//!    strata; [`GridIndex::assignments`] yields the stratum id per row.
//! 2. **Fast exact ground truth** for the few-neighbors query:
//!    [`GridIndex::for_each_candidate_within`] visits only rows in grid
//!    cells that intersect a query disk, so computing the true count for
//!    calibration does not need a quadratic scan.

use crate::error::{TableError, TableResult};

/// A uniform grid over the bounding box of a 2-d point set.
#[derive(Debug, Clone)]
pub struct GridIndex {
    nx: usize,
    ny: usize,
    min_x: f64,
    min_y: f64,
    inv_wx: f64,
    inv_wy: f64,
    /// Row ids per cell, row-major (`cy * nx + cx`).
    cells: Vec<Vec<u32>>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl GridIndex {
    /// Build an `nx × ny` grid over the points `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// Returns an error if the slices are empty, of different lengths, or
    /// if `nx`/`ny` are zero.
    pub fn build(xs: &[f64], ys: &[f64], nx: usize, ny: usize) -> TableResult<Self> {
        if xs.is_empty() {
            return Err(TableError::Empty);
        }
        if xs.len() != ys.len() {
            return Err(TableError::LengthMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        if nx == 0 || ny == 0 {
            return Err(TableError::InvalidExpression {
                message: "grid dimensions must be positive".into(),
            });
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for (&x, &y) in xs.iter().zip(ys) {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Degenerate extents still get a valid 1-wide bucket.
        let wx = ((max_x - min_x) / nx as f64).max(f64::MIN_POSITIVE);
        let wy = ((max_y - min_y) / ny as f64).max(f64::MIN_POSITIVE);
        let mut grid = Self {
            nx,
            ny,
            min_x,
            min_y,
            inv_wx: 1.0 / wx,
            inv_wy: 1.0 / wy,
            cells: vec![Vec::new(); nx * ny],
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        };
        for i in 0..xs.len() {
            let (cx, cy) = grid.cell_coords(xs[i], ys[i]);
            grid.cells[cy * nx + cx].push(u32::try_from(i).expect("row count fits u32"));
        }
        Ok(grid)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell coordinates for a point (clamped to the grid).
    pub fn cell_coords(&self, x: f64, y: f64) -> (usize, usize) {
        let cx = (((x - self.min_x) * self.inv_wx) as usize).min(self.nx - 1);
        let cy = (((y - self.min_y) * self.inv_wy) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Flat cell id (`cy * nx + cx`) for a point.
    pub fn cell_id(&self, x: f64, y: f64) -> usize {
        let (cx, cy) = self.cell_coords(x, y);
        cy * self.nx + cx
    }

    /// Cell (stratum) id per indexed row — the SSP surrogate strata.
    pub fn assignments(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.xs.len()];
        for (cell, rows) in self.cells.iter().enumerate() {
            for &r in rows {
                out[r as usize] = cell;
            }
        }
        out
    }

    /// Visit every indexed row whose cell intersects the disk of radius
    /// `d` around `(x, y)`. Visited rows are *candidates*: the caller
    /// must apply the exact distance test.
    pub fn for_each_candidate_within(&self, x: f64, y: f64, d: f64, mut visit: impl FnMut(usize)) {
        let d = d.max(0.0);
        let (cx0, cy0) = self.cell_coords(x - d, y - d);
        let (cx1, cy1) = self.cell_coords(x + d, y + d);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &r in &self.cells[cy * self.nx + cx] {
                    visit(r as usize);
                }
            }
        }
    }

    /// Exact count of indexed points within Euclidean distance `d` of
    /// `(x, y)` (including any point identical to the query point).
    pub fn count_within(&self, x: f64, y: f64, d: f64) -> usize {
        let d2 = d * d;
        let mut count = 0;
        self.for_each_candidate_within(x, y, d, |i| {
            let dx = self.xs[i] - x;
            let dy = self.ys[i] - y;
            if dx * dx + dy * dy <= d2 {
                count += 1;
            }
        });
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_count(xs: &[f64], ys: &[f64], x: f64, y: f64, d: f64) -> usize {
        xs.iter()
            .zip(ys)
            .filter(|&(&px, &py)| {
                let dx = px - x;
                let dy = py - y;
                dx * dx + dy * dy <= d * d
            })
            .count()
    }

    #[test]
    fn assignments_cover_all_rows() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.0, 2.0, 3.0, 4.0];
        let g = GridIndex::build(&xs, &ys, 2, 2).unwrap();
        let a = g.assignments();
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&c| c < g.num_cells()));
        // Corner points land in opposite corner cells.
        assert_ne!(a[0], a[4]);
    }

    #[test]
    fn count_within_matches_brute_force() {
        // Deterministic pseudo-random points.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            xs.push(next() * 10.0);
            ys.push(next() * 10.0);
        }
        let g = GridIndex::build(&xs, &ys, 8, 8).unwrap();
        for i in (0..300).step_by(17) {
            for &d in &[0.1, 0.5, 2.0, 20.0] {
                assert_eq!(
                    g.count_within(xs[i], ys[i], d),
                    brute_count(&xs, &ys, xs[i], ys[i], d),
                    "point {i}, d {d}"
                );
            }
        }
    }

    #[test]
    fn degenerate_extent_is_fine() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 2.0, 2.0];
        let g = GridIndex::build(&xs, &ys, 3, 3).unwrap();
        assert_eq!(g.count_within(1.0, 2.0, 0.0), 3);
        let a = g.assignments();
        assert!(a.iter().all(|&c| c == a[0]));
    }

    #[test]
    fn build_rejects_bad_input() {
        assert!(GridIndex::build(&[], &[], 2, 2).is_err());
        assert!(GridIndex::build(&[1.0], &[1.0, 2.0], 2, 2).is_err());
        assert!(GridIndex::build(&[1.0], &[1.0], 0, 2).is_err());
    }

    #[test]
    fn cell_ids_are_stable_and_clamped() {
        let xs = [0.0, 10.0];
        let ys = [0.0, 10.0];
        let g = GridIndex::build(&xs, &ys, 4, 4).unwrap();
        // Outside points clamp to edge cells.
        assert_eq!(g.cell_id(-5.0, -5.0), 0);
        assert_eq!(g.cell_id(100.0, 100.0), g.num_cells() - 1);
        assert_eq!(g.dims(), (4, 4));
    }
}
