//! A parser for SQL-ish condition strings.
//!
//! The paper writes every predicate as a SQL condition — Example 1's
//! "few neighbors", Example 2's k-skyband membership, and the general
//! Q3 form all look like
//!
//! ```sql
//! (SELECT COUNT(*) FROM D
//!  WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < 5
//! ```
//!
//! This module turns such strings into [`Expr`] trees so predicates can
//! be supplied as text (configuration files, CLIs, notebooks) instead
//! of hand-built ASTs. Supported grammar, in precedence order (loosest
//! first):
//!
//! ```text
//! expr    := and_expr (OR and_expr)*
//! and     := not_expr (AND not_expr)*
//! not     := NOT not | cmp
//! cmp     := add ((= | <> | != | < | <= | > | >=) add)?
//! add     := mul ((+ | -) mul)*
//! mul     := unary ((* | /) unary)*
//! unary   := - unary | primary
//! primary := NUMBER | 'string' | TRUE | FALSE | NULL
//!          | SQRT(e) | POWER(e, e) | ABS(e)
//!          | o.ident                   -- outer (object) column
//!          | ident                     -- current-row column
//!          | ( SELECT agg FROM ident [WHERE expr] )  -- subquery
//!          | ( expr )
//! agg     := COUNT(*) | SUM(e) | MIN(e) | MAX(e) | AVG(e)
//! ```
//!
//! Keywords are case-insensitive; `o.` is the outer-row qualifier the
//! paper uses. Subquery `FROM` names resolve through a caller-supplied
//! [`TableRegistry`].

use crate::error::{TableError, TableResult};
use crate::expr::{AggFunc, AggSubquery, Expr, Func};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves `FROM` names inside subqueries to tables.
#[derive(Debug, Clone, Default)]
pub struct TableRegistry {
    tables: HashMap<String, Arc<Table>>,
}

impl TableRegistry {
    /// An empty registry (conditions without subqueries parse fine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under a name (case-insensitive lookup).
    pub fn register(mut self, name: impl Into<String>, table: Arc<Table>) -> Self {
        self.tables.insert(name.into().to_ascii_lowercase(), table);
        self
    }

    fn resolve(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }
}

/// Parse a condition string into an [`Expr`].
///
/// # Errors
///
/// Returns [`TableError::Parse`] with a byte position and message for
/// any lexical or syntactic problem, including unknown `FROM` names.
///
/// # Examples
///
/// ```
/// use lts_table::parser::{parse_condition, TableRegistry};
/// let expr = parse_condition("x >= 3 AND NOT (y < 2 OR y > 10)", &TableRegistry::new()).unwrap();
/// ```
pub fn parse_condition(input: &str, registry: &TableRegistry) -> TableResult<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        registry,
    };
    let expr = p.expr()?;
    if let Some(tok) = p.peek() {
        return Err(err_at(
            tok.pos,
            format!("unexpected trailing `{}`", tok.text()),
        ));
    }
    Ok(expr)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Number(f64),
    Str(String),
    Ident(String),
    /// Operators and punctuation (`<=`, `(`, `,`, `*`, …).
    Sym(&'static str),
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    tok: Tok,
    pos: usize,
}

impl Token {
    fn text(&self) -> String {
        match &self.tok {
            Tok::Number(n) => n.to_string(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Ident(s) => s.clone(),
            Tok::Sym(s) => (*s).to_string(),
        }
    }
}

fn err_at(position: usize, message: impl Into<String>) -> TableError {
    TableError::Parse {
        position,
        message: message.into(),
    }
}

fn tokenize(input: &str) -> TableResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' | ')' | ',' | '+' | '-' | '*' | '/' | '=' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    _ => "=",
                };
                out.push(Token {
                    tok: Tok::Sym(sym),
                    pos: i,
                });
                i += 1;
            }
            '<' => {
                let (sym, w) = match bytes.get(i + 1).map(|&b| b as char) {
                    Some('=') => ("<=", 2),
                    Some('>') => ("<>", 2),
                    _ => ("<", 1),
                };
                out.push(Token {
                    tok: Tok::Sym(sym),
                    pos: i,
                });
                i += w;
            }
            '>' => {
                let (sym, w) = match bytes.get(i + 1).map(|&b| b as char) {
                    Some('=') => (">=", 2),
                    _ => (">", 1),
                };
                out.push(Token {
                    tok: Tok::Sym(sym),
                    pos: i,
                });
                i += w;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Sym("<>"),
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(err_at(i, "expected `!=`"));
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err_at(start, "unterminated string literal")),
                        Some(b'\'') => {
                            // SQL-style doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| err_at(start, format!("invalid number `{text}`")))?;
                out.push(Token {
                    tok: Tok::Number(n),
                    pos: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let mut ident = input[start..i].to_string();
                // Qualified name: `o.x` (outer) or `t.x` (treated as a
                // plain column of the current row).
                if bytes.get(i) == Some(&b'.') {
                    i += 1;
                    let col_start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    if col_start == i {
                        return Err(err_at(col_start, "expected column name after `.`"));
                    }
                    ident.push('.');
                    ident.push_str(&input[col_start..i]);
                }
                out.push(Token {
                    tok: Tok::Ident(ident),
                    pos: start,
                });
            }
            other => return Err(err_at(i, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    registry: &'a TableRegistry,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn end_pos(&self) -> usize {
        self.tokens.last().map_or(0, |t| t.pos + 1)
    }

    /// Consume a symbol or fail.
    fn expect_sym(&mut self, sym: &str) -> TableResult<()> {
        match self.next() {
            Some(t) if t.tok == Tok::Sym(match_sym(sym)) => Ok(()),
            Some(t) => Err(err_at(
                t.pos,
                format!("expected `{sym}`, found `{}`", t.text()),
            )),
            None => Err(err_at(
                self.end_pos(),
                format!("expected `{sym}`, found end of input"),
            )),
        }
    }

    /// Peek: is the next token the given (case-insensitive) keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> TableResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            let (pos, found) = match self.peek() {
                Some(t) => (t.pos, t.text()),
                None => (self.end_pos(), "end of input".into()),
            };
            Err(err_at(pos, format!("expected `{kw}`, found `{found}`")))
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Sym(s), .. }) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.at_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // -- grammar ------------------------------------------------------

    fn expr(&mut self) -> TableResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> TableResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> TableResult<Expr> {
        if self.eat_keyword("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> TableResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token {
                tok: Tok::Sym(s), ..
            }) => match *s {
                "=" => Some("="),
                "<>" => Some("<>"),
                "<" => Some("<"),
                "<=" => Some("<="),
                ">" => Some(">"),
                ">=" => Some(">="),
                _ => None,
            },
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(match op {
            "=" => lhs.eq(rhs),
            "<>" => lhs.ne(rhs),
            "<" => lhs.lt(rhs),
            "<=" => lhs.le(rhs),
            ">" => lhs.gt(rhs),
            _ => lhs.ge(rhs),
        })
    }

    fn add_expr(&mut self) -> TableResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                lhs = lhs.add(self.mul_expr()?);
            } else if self.eat_sym("-") {
                lhs = lhs.sub(self.mul_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> TableResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_sym("*") {
                lhs = lhs.mul(self.unary()?);
            } else if self.eat_sym("/") {
                lhs = lhs.div(self.unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> TableResult<Expr> {
        if self.eat_sym("-") {
            Ok(self.unary()?.neg())
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> TableResult<Expr> {
        let Some(token) = self.next() else {
            return Err(err_at(self.end_pos(), "unexpected end of input"));
        };
        match token.tok {
            Tok::Number(n) => Ok(Expr::lit(n)),
            Tok::Str(s) => Ok(Expr::Literal(Value::str(s))),
            Tok::Sym("(") => {
                // Either a subquery or a parenthesized expression.
                if self.at_keyword("SELECT") {
                    let sub = self.subquery(token.pos)?;
                    self.expect_sym(")")?;
                    Ok(sub)
                } else {
                    let inner = self.expr()?;
                    self.expect_sym(")")?;
                    Ok(inner)
                }
            }
            Tok::Ident(name) => self.ident_expr(name, token.pos),
            Tok::Sym(s) => Err(err_at(token.pos, format!("unexpected `{s}`"))),
        }
    }

    fn ident_expr(&mut self, name: String, pos: usize) -> TableResult<Expr> {
        // Keyword literals.
        if name.eq_ignore_ascii_case("TRUE") {
            return Ok(Expr::lit(true));
        }
        if name.eq_ignore_ascii_case("FALSE") {
            return Ok(Expr::lit(false));
        }
        if name.eq_ignore_ascii_case("NULL") {
            return Ok(Expr::Literal(Value::Null));
        }

        // Scalar function call.
        let func = if name.eq_ignore_ascii_case("SQRT") {
            Some((Func::Sqrt, 1))
        } else if name.eq_ignore_ascii_case("POWER") {
            Some((Func::Power, 2))
        } else if name.eq_ignore_ascii_case("ABS") {
            Some((Func::Abs, 1))
        } else {
            None
        };
        if let Some((func, arity)) = func {
            self.expect_sym("(")?;
            let mut args = vec![self.expr()?];
            while self.eat_sym(",") {
                args.push(self.expr()?);
            }
            self.expect_sym(")")?;
            if args.len() != arity {
                return Err(err_at(
                    pos,
                    format!("{name} takes {arity} argument(s), got {}", args.len()),
                ));
            }
            return Ok(Expr::Call(func, args));
        }

        // Qualified name: the paper's `o.` prefix marks the outer row;
        // any other qualifier is stripped (single-table subqueries).
        if let Some((qual, col)) = name.split_once('.') {
            if qual.eq_ignore_ascii_case("o") || qual.eq_ignore_ascii_case("outer") {
                return Ok(Expr::outer(col));
            }
            return Ok(Expr::col(col));
        }
        Ok(Expr::col(name))
    }

    /// Parse `SELECT agg FROM name [WHERE expr]`; the opening `(` is
    /// already consumed and the closing `)` is left for the caller.
    fn subquery(&mut self, open_pos: usize) -> TableResult<Expr> {
        self.expect_keyword("SELECT")?;

        // Aggregate function.
        let Some(tok) = self.next() else {
            return Err(err_at(self.end_pos(), "expected aggregate after SELECT"));
        };
        let Tok::Ident(agg_name) = &tok.tok else {
            return Err(err_at(
                tok.pos,
                format!("expected aggregate, found `{}`", tok.text()),
            ));
        };
        let func = if agg_name.eq_ignore_ascii_case("COUNT") {
            AggFunc::Count
        } else if agg_name.eq_ignore_ascii_case("SUM") {
            AggFunc::Sum
        } else if agg_name.eq_ignore_ascii_case("MIN") {
            AggFunc::Min
        } else if agg_name.eq_ignore_ascii_case("MAX") {
            AggFunc::Max
        } else if agg_name.eq_ignore_ascii_case("AVG") {
            AggFunc::Avg
        } else {
            return Err(err_at(
                tok.pos,
                format!("unknown aggregate `{agg_name}` (COUNT/SUM/MIN/MAX/AVG)"),
            ));
        };
        self.expect_sym("(")?;
        let arg = if func == AggFunc::Count {
            self.expect_sym("*")?;
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_sym(")")?;

        self.expect_keyword("FROM")?;
        let Some(tok) = self.next() else {
            return Err(err_at(self.end_pos(), "expected table name after FROM"));
        };
        let Tok::Ident(table_name) = &tok.tok else {
            return Err(err_at(
                tok.pos,
                format!("expected table name, found `{}`", tok.text()),
            ));
        };
        let Some(table) = self.registry.resolve(table_name) else {
            return Err(err_at(
                tok.pos,
                format!("unknown table `{table_name}` (register it in the TableRegistry)"),
            ));
        };

        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let _ = open_pos;
        Ok(Expr::Subquery(Box::new(AggSubquery {
            table,
            filter,
            func,
            arg,
        })))
    }
}

/// Normalize a symbol so `expect_sym` compares interned strings.
fn match_sym(sym: &str) -> &'static str {
    match sym {
        "(" => "(",
        ")" => ")",
        "," => ",",
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "/" => "/",
        "=" => "=",
        "<" => "<",
        "<=" => "<=",
        ">" => ">",
        ">=" => ">=",
        "<>" => "<>",
        other => unreachable!("unknown symbol `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RowCtx;
    use crate::table::table_of_floats;

    fn eval_on(expr: &Expr, table: &Table, row: usize) -> Value {
        expr.eval(RowCtx::top(table, row)).unwrap()
    }

    fn points() -> Arc<Table> {
        // Five 2-d points.
        Arc::new(
            table_of_floats(&[
                ("x", &[0.0, 1.0, 2.0, 3.0, 4.0]),
                ("y", &[0.0, 2.0, 1.0, 4.0, 3.0]),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn arithmetic_and_precedence() {
        let t = points();
        let reg = TableRegistry::new();
        let e = parse_condition("1 + 2 * 3 = 7", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
        let e = parse_condition("(1 + 2) * 3 = 9", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
        let e = parse_condition("2 * x + 1 > 4", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 1), Value::Bool(false)); // 3 > 4
        assert_eq!(eval_on(&e, &t, 2), Value::Bool(true)); // 5 > 4
    }

    #[test]
    fn boolean_logic_and_not() {
        let t = points();
        let reg = TableRegistry::new();
        let e = parse_condition("x >= 1 AND NOT (y < 2 OR y > 3)", &reg).unwrap();
        // Row 1: x=1, y=2 → true; row 3: x=3, y=4 → false.
        assert_eq!(eval_on(&e, &t, 1), Value::Bool(true));
        assert_eq!(eval_on(&e, &t, 3), Value::Bool(false));
        // AND binds tighter than OR.
        let e = parse_condition("TRUE OR FALSE AND FALSE", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
    }

    #[test]
    fn functions_and_unary_minus() {
        let t = points();
        let reg = TableRegistry::new();
        let e = parse_condition("SQRT(POWER(-3, 2) + POWER(4, 2)) = 5", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
        let e = parse_condition("ABS(-x) = x", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 2), Value::Bool(true));
    }

    #[test]
    fn parses_example_2_skyband_condition() {
        // The k-skyband membership predicate, verbatim from the paper.
        let t = points();
        let reg = TableRegistry::new().register("D", Arc::clone(&t));
        let e = parse_condition(
            "(SELECT COUNT(*) FROM D \
             WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < 2",
            &reg,
        )
        .unwrap();
        // Dominator counts for the five points: p0 is dominated by
        // p1..p4 minus incomparable ones; verify against brute force.
        let xs = t.floats("x").unwrap();
        let ys = t.floats("y").unwrap();
        for i in 0..t.len() {
            let dominators = (0..t.len())
                .filter(|&j| xs[j] >= xs[i] && ys[j] >= ys[i] && (xs[j] > xs[i] || ys[j] > ys[i]))
                .count();
            let want = dominators < 2;
            let ctx = RowCtx {
                table: &t,
                row: i,
                outer: Some((&t, i)),
            };
            assert_eq!(e.eval_bool(ctx).unwrap(), want, "row {i}");
        }
    }

    #[test]
    fn parses_example_1_neighbors_condition() {
        let t = points();
        let reg = TableRegistry::new().register("D", Arc::clone(&t));
        let e = parse_condition(
            "(SELECT COUNT(*) FROM D \
             WHERE SQRT(POWER(o.x - x, 2) + POWER(o.y - y, 2)) <= 2.0) <= 2",
            &reg,
        )
        .unwrap();
        let xs = t.floats("x").unwrap();
        let ys = t.floats("y").unwrap();
        for i in 0..t.len() {
            let neighbors = (0..t.len())
                .filter(|&j| {
                    let (dx, dy) = (xs[i] - xs[j], ys[i] - ys[j]);
                    (dx * dx + dy * dy).sqrt() <= 2.0
                })
                .count();
            let want = neighbors <= 2;
            let ctx = RowCtx {
                table: &t,
                row: i,
                outer: Some((&t, i)),
            };
            assert_eq!(e.eval_bool(ctx).unwrap(), want, "row {i}");
        }
    }

    #[test]
    fn other_aggregates_parse() {
        let t = points();
        let reg = TableRegistry::new().register("pts", Arc::clone(&t));
        for (cond, expect) in [
            ("(SELECT SUM(x) FROM pts) = 10", true),
            ("(SELECT MIN(y) FROM pts WHERE x > 0) = 1", true),
            ("(SELECT MAX(x) FROM pts) = 4", true),
            ("(SELECT AVG(x) FROM pts) = 2", true),
        ] {
            let e = parse_condition(cond, &reg).unwrap();
            assert_eq!(eval_on(&e, &t, 0), Value::Bool(expect), "{cond}");
        }
    }

    #[test]
    fn string_literals_and_keywords() {
        let t = points();
        let reg = TableRegistry::new();
        let e = parse_condition("'ab''c' = 'ab''c'", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
        let e = parse_condition("true AND NOT false", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
    }

    #[test]
    fn parse_errors_carry_position() {
        let reg = TableRegistry::new();
        for bad in [
            "x >",
            "x + ",
            "(x > 1",
            "SQRT(1, 2) > 0",
            "POWER(1) > 0",
            "x ! y",
            "'unterminated",
            "x @ y",
            "(SELECT COUNT(*) FROM nowhere) > 0",
            "(SELECT MEDIAN(x) FROM nowhere) > 0",
            "x > 1 extra",
            "1..2 > 0",
        ] {
            let r = parse_condition(bad, &reg);
            match r {
                Err(TableError::Parse { message, .. }) => {
                    assert!(!message.is_empty(), "{bad}: empty message")
                }
                other => panic!("`{bad}` should fail to parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn case_insensitive_keywords_and_whitespace() {
        let t = points();
        let reg = TableRegistry::new().register("D", Arc::clone(&t));
        let e = parse_condition("( select count(*) from d where x >= o.x ) >= 1", &reg).unwrap();
        let ctx = RowCtx {
            table: &t,
            row: 4,
            outer: Some((&t, 4)),
        };
        assert!(e.eval_bool(ctx).unwrap()); // x=4 dominates itself (>=)
    }

    #[test]
    fn qualified_inner_columns_strip_the_qualifier() {
        let t = points();
        let reg = TableRegistry::new().register("D", Arc::clone(&t));
        let e = parse_condition("(SELECT COUNT(*) FROM D WHERE d.x > 1) = 3", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
    }

    #[test]
    fn scientific_notation_numbers() {
        let t = points();
        let reg = TableRegistry::new();
        let e = parse_condition("1.5e2 = 150", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
        let e = parse_condition("2E-1 = 0.2", &reg).unwrap();
        assert_eq!(eval_on(&e, &t, 0), Value::Bool(true));
    }
}
