//! Out-of-core paged columnar storage.
//!
//! Every table in this workspace used to live wholly in RAM. This
//! module tree adds the disk half: a checksummed on-disk **page
//! format** ([`page`]), a bounded **buffer manager** with clock
//! eviction and pin/unpin accounting ([`buffer`]), and a
//! [`PagedTable`] ([`paged`]) that implements the same scan surface as
//! [`crate::PartitionedTable`] — `par_eval_bool` / `par_count` /
//! `eval_bool_ids` — over fixed-row-count column pages faulted in on
//! demand.
//!
//! Two properties make the layer more than a cache:
//!
//! * **Zone maps.** Every `(column, page)` chunk records min/max,
//!   null-count and error-count at write time. A top-level conjunct of
//!   the form `col CMP literal` whose range provably misses a page's
//!   zone map lets the scan emit `false` for the whole page without
//!   faulting it in — the same eval-budget economics the paper applies
//!   to oracle calls, applied to I/O. The skip rule is
//!   **Kleene-sound**: a page is skipped only when the provably-false
//!   conjunct comes *before* (in source order) any conjunct that might
//!   error on that page, so error surfacing stays bit-identical to the
//!   in-RAM scan (see [`paged`] for the proof sketch).
//! * **Targeted reads.** Stage-2 stratified draws evaluate the
//!   predicate on sampled row ids only; `eval_bool_ids` faults in only
//!   the pages containing those ids.
//!
//! Scans return [`crate::TableResult`] exactly like the in-RAM
//! executor; storage faults (truncation, checksum mismatch, I/O
//! errors) surface as [`crate::TableError::Storage`] wrapping the
//! structured [`StorageError`] — never a panic, never a silently wrong
//! count.

pub mod buffer;
pub mod page;
pub mod paged;

pub use buffer::{BufferManager, BufferSnapshot, PageGuard};
pub use lts_obs::Snapshot;
pub use page::{decode_page, encode_page, PageMeta, TableManifest, ZoneMap, PAGE_FORMAT_VERSION};
pub use paged::{PagedTable, ScanSnapshot};

use crate::error::TableError;
use std::fmt;
use std::path::PathBuf;

/// Structured faults from the on-disk page format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// The manifest does not start with the `LTSP` magic bytes.
    BadMagic {
        /// The file involved.
        path: PathBuf,
    },
    /// The on-disk format version is not the one this build reads.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// Stored and recomputed checksums disagree (bit rot, torn write).
    ChecksumMismatch {
        /// What failed to verify (manifest, or a specific page).
        what: String,
    },
    /// A file ended before the bytes the manifest promised.
    Truncated {
        /// What was cut short.
        what: String,
    },
    /// Structurally invalid bytes (bad type tag, ragged payload, …).
    Corrupt {
        /// Description of the problem.
        message: String,
    },
    /// Invalid caller-supplied configuration (zero page rows, …).
    InvalidConfig {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, message } => {
                write!(f, "i/o error on {}: {message}", path.display())
            }
            StorageError::BadMagic { path } => {
                write!(f, "{} is not a paged-table manifest", path.display())
            }
            StorageError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "page format version {found} (this build reads {expected})"
                )
            }
            StorageError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what}")
            }
            StorageError::Truncated { what } => write!(f, "truncated {what}"),
            StorageError::Corrupt { message } => write!(f, "corrupt data: {message}"),
            StorageError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for TableError {
    fn from(e: StorageError) -> Self {
        TableError::Storage {
            message: e.to_string(),
        }
    }
}

/// Convenience result alias for the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

/// FNV-1a 64-bit hash — the integrity checksum of the page format.
/// Not cryptographic; it detects truncation, torn writes and bit rot.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn storage_error_display_and_conversion() {
        let e = StorageError::Truncated {
            what: "column file col_0.pages".into(),
        };
        assert!(e.to_string().contains("col_0.pages"));
        let t: TableError = e.into();
        assert!(matches!(&t, TableError::Storage { message } if message.contains("truncated")));
    }
}
