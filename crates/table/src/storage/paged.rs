//! [`PagedTable`]: the out-of-core counterpart of
//! [`crate::PartitionedTable`].
//!
//! A paged table is opened from a directory written by
//! [`PagedTable::create`] and scanned through a bounded
//! [`BufferManager`]. Partitions map to **pages**: each page is an
//! independent work unit of the parallel scan, merged back in page
//! order, so every scan is bit-identical to the in-RAM partitioned
//! scan — values, NULL handling, and first-error-in-row-order alike
//! (property-tested in `tests/storage_agreement.rs`).
//!
//! # Zone-map page skipping — the Kleene-sound rule
//!
//! `par_eval_bool`/`par_count` walk the top-level conjuncts of the
//! expression (the [`crate::split_conjuncts`] order) once per page:
//!
//! * a conjunct of shape `col CMP literal` (either operand order) over
//!   a numeric column **cannot error and cannot be NULL** on rows of a
//!   page whose zone map records no error values, and is **provably
//!   false** when the page's `[min, max]` is disjoint from the
//!   literal under `CMP`;
//! * any other conjunct shape — subqueries, arithmetic, unknown
//!   columns, string/bool comparisons — is conservatively *might
//!   error*.
//!
//! A page is skipped (all rows emitted `false`, no fault) iff a
//! provably-false conjunct occurs **before** the first might-error
//! conjunct in that walk. Soundness: conjuncts before the
//! provably-false one evaluate to pure `true`/`false` on this page, so
//! the accumulated `AND` is definitively `false` with no error; the
//! vectorized kernel masks right-side errors under a false left
//! (`FALSE AND <error> = FALSE`), and by induction over the `AND`
//! tree any error in a *later* conjunct is shadowed exactly as the
//! in-RAM scan would shadow it. Errors in *earlier* conjuncts stop the
//! walk, so they still fault and surface. Int↔float comparisons are
//! checked in `f64` — the same monotone `i64 → f64` promotion the
//! comparison kernel itself uses — so the bounds test is never less
//! conservative than the engine.
//!
//! # Targeted reads
//!
//! [`PagedTable::eval_bool_ids`] — the stage-2 stratified-draw entry
//! point — groups consecutive ids by page and faults in only the
//! pages containing sampled rows. Ids must be in range: unlike the
//! lazily-gathering in-RAM path it reports the first out-of-range id
//! up front as [`TableError::RowIndexOutOfRange`].

use super::buffer::{BufferManager, BufferSnapshot};
use super::page::{decode_page, encode_page, PageMeta, TableManifest, ZoneMap};
use super::{StorageError, StorageResult};
use crate::decompose::split_conjuncts;
use crate::error::{TableError, TableResult};
use crate::expr::{BinaryOp, CmpOp, Expr};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::vector::{eval_bool_columnar, eval_columnar_sel, RowSel};
use crate::Column;
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File name of the manifest inside a paged-table directory.
pub const MANIFEST_FILE: &str = "manifest.ltsp";

fn column_file(dir: &Path, col: usize) -> PathBuf {
    dir.join(format!("col_{col}.pages"))
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> StorageError + '_ {
    move |e| StorageError::Io {
        path: path.into(),
        message: e.to_string(),
    }
}

/// Page-skip statistics of the scans run so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Pages actually evaluated (faulted in if not resident).
    pub pages_evaluated: u64,
    /// Pages skipped outright by a zone-map proof.
    pub pages_skipped: u64,
}

impl lts_obs::Snapshot for ScanSnapshot {
    fn merge(&self, other: &Self) -> Self {
        ScanSnapshot {
            pages_evaluated: self.pages_evaluated.saturating_add(other.pages_evaluated),
            pages_skipped: self.pages_skipped.saturating_add(other.pages_skipped),
        }
    }

    fn delta(&self, before: &Self) -> Self {
        ScanSnapshot {
            pages_evaluated: self.pages_evaluated.saturating_sub(before.pages_evaluated),
            pages_skipped: self.pages_skipped.saturating_sub(before.pages_skipped),
        }
    }
}

/// An on-disk table scanned through a bounded page cache (see the
/// module docs).
#[derive(Debug)]
pub struct PagedTable {
    dir: PathBuf,
    manifest: TableManifest,
    buffer: BufferManager,
    version: u64,
    zone_skipping: bool,
    pages_evaluated: AtomicU64,
    pages_skipped: AtomicU64,
}

impl PagedTable {
    /// Write `table` to `dir` as a paged table with `page_rows` rows
    /// per page. Data files are written first; the checksummed
    /// manifest is written last via a temp-file + rename, so an
    /// interrupted `create` never leaves an openable half-table.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidConfig`] for zero `page_rows`
    /// and [`StorageError::Io`] for filesystem failures.
    pub fn create(dir: &Path, table: &Table, page_rows: usize) -> StorageResult<()> {
        if page_rows == 0 {
            return Err(StorageError::InvalidConfig {
                message: "page_rows must be at least 1".into(),
            });
        }
        fs::create_dir_all(dir).map_err(io_err(dir))?;
        let n_rows = table.len();
        let n_pages = if n_rows == 0 {
            0
        } else {
            n_rows.div_ceil(page_rows)
        };
        let mut pages: Vec<Vec<PageMeta>> = Vec::with_capacity(table.schema().len());
        for (c, field) in table.schema().fields().iter().enumerate() {
            let col = table
                .column(c)
                .expect("schema and columns agree by construction");
            debug_assert_eq!(field.data_type, col.data_type());
            let path = column_file(dir, c);
            let mut file = std::io::BufWriter::new(fs::File::create(&path).map_err(io_err(&path))?);
            let mut metas = Vec::with_capacity(n_pages);
            let mut offset = 0u64;
            for p in 0..n_pages {
                let lo = p * page_rows;
                let hi = (lo + page_rows).min(n_rows);
                let payload = encode_page(col, lo, hi);
                let zone = ZoneMap::of_column_range(col, lo, hi);
                file.write_all(&payload).map_err(io_err(&path))?;
                metas.push(PageMeta {
                    offset,
                    byte_len: payload.len() as u64,
                    checksum: super::fnv1a64(&payload),
                    zone,
                });
                offset += payload.len() as u64;
            }
            file.flush().map_err(io_err(&path))?;
            pages.push(metas);
        }
        let manifest = TableManifest {
            schema: table.schema().clone(),
            n_rows,
            page_rows,
            pages,
        };
        let final_path = dir.join(MANIFEST_FILE);
        let tmp_path = dir.join(format!("{MANIFEST_FILE}.tmp"));
        fs::write(&tmp_path, manifest.encode()).map_err(io_err(&tmp_path))?;
        fs::rename(&tmp_path, &final_path).map_err(io_err(&final_path))?;
        Ok(())
    }

    /// Open the paged table at `dir` with a buffer pool of
    /// `pool_pages` pages. Verifies the manifest checksum and that
    /// every column file is at least as long as the manifest promises
    /// (early truncation detection); page payload checksums are
    /// verified on fault.
    ///
    /// # Errors
    ///
    /// Returns a structured [`StorageError`] for a missing/corrupt
    /// manifest or truncated column files.
    pub fn open(dir: &Path, pool_pages: usize) -> StorageResult<PagedTable> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = fs::read(&manifest_path).map_err(io_err(&manifest_path))?;
        let manifest = TableManifest::decode(&bytes, &manifest_path)?;
        for (c, metas) in manifest.pages.iter().enumerate() {
            let need = metas.last().map_or(0, |m| m.offset + m.byte_len);
            let path = column_file(dir, c);
            let have = fs::metadata(&path).map_err(io_err(&path))?.len();
            if have < need {
                return Err(StorageError::Truncated {
                    what: format!("column file {} ({have} of {need} bytes)", path.display()),
                });
            }
        }
        Ok(PagedTable {
            dir: dir.into(),
            manifest,
            buffer: BufferManager::new(pool_pages),
            version: 0,
            zone_skipping: true,
            pages_evaluated: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.manifest.schema
    }

    /// The decoded manifest (geometry and zone maps).
    pub fn manifest(&self) -> &TableManifest {
        &self.manifest
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.manifest.n_rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.manifest.n_rows == 0
    }

    /// Pages per column (the scan's partition count).
    pub fn n_pages(&self) -> usize {
        self.manifest.n_pages()
    }

    /// Rows per page (the last page may be shorter).
    pub fn page_rows(&self) -> usize {
        self.manifest.page_rows
    }

    /// Row range of page `p`.
    pub fn page_range(&self, p: usize) -> Range<usize> {
        self.manifest.page_row_range(p)
    }

    /// The version stamp (same contract as
    /// [`crate::PartitionedTable::version`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Set the version stamp (builder style).
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Bump the version stamp in place.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Enable/disable zone-map page skipping (builder style; on by
    /// default). With skipping off every page is faulted and
    /// evaluated — the unskipped baseline of `bench_storage`.
    #[must_use]
    pub fn with_zone_skipping(mut self, on: bool) -> Self {
        self.zone_skipping = on;
        self
    }

    /// The buffer pool (for its hit/miss/eviction counters).
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Buffer counters, as a convenience.
    pub fn buffer_snapshot(&self) -> BufferSnapshot {
        self.buffer.snapshot()
    }

    /// Page-skip counters of the scans run so far.
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            pages_evaluated: self.pages_evaluated.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
        }
    }

    /// Zero the page-skip counters.
    pub fn reset_scan_counters(&self) {
        self.pages_evaluated.store(0, Ordering::Relaxed);
        self.pages_skipped.store(0, Ordering::Relaxed);
    }

    /// Fault in one column page (cache hit or verified disk read).
    ///
    /// # Errors
    ///
    /// Returns a structured [`StorageError`] for I/O failures,
    /// truncation, or a payload checksum mismatch.
    pub fn fetch_page(&self, col: usize, page: usize) -> StorageResult<Arc<Column>> {
        let guard = self.buffer.get_pinned((col, page), || {
            let meta = self.manifest.pages[col][page];
            let rows = self.manifest.page_row_range(page).len();
            let dtype = self.manifest.schema.fields()[col].data_type;
            let path = column_file(&self.dir, col);
            let what = format!("page {page} of {}", path.display());
            let mut file = fs::File::open(&path).map_err(io_err(&path))?;
            file.seek(SeekFrom::Start(meta.offset))
                .map_err(io_err(&path))?;
            let mut payload = vec![0u8; meta.byte_len as usize];
            file.read_exact(&mut payload).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => StorageError::Truncated { what: what.clone() },
                _ => io_err(&path)(e),
            })?;
            if super::fnv1a64(&payload) != meta.checksum {
                return Err(StorageError::ChecksumMismatch { what: what.clone() });
            }
            decode_page(&payload, dtype, rows, &what)
        })?;
        Ok(Arc::clone(guard.column()))
    }

    /// The schema indices of the columns `expr` can touch when
    /// evaluated over this table: top-level column refs plus outer
    /// refs inside subqueries. Falls back to column 0 when the
    /// expression references nothing — a page table still needs a
    /// length carrier.
    fn referenced_columns(&self, expr: &Expr) -> Vec<usize> {
        fn collect(e: &Expr, top: bool, names: &mut BTreeSet<String>) {
            match e {
                Expr::Literal(_) => {}
                Expr::Column(n) => {
                    if top {
                        names.insert(n.clone());
                    }
                }
                // One level of correlation: an outer ref inside a
                // subquery binds the scanned (outer) table. Collecting
                // outer refs at any depth over-approximates for nested
                // subqueries, which only costs an extra fault.
                Expr::Outer(n) => {
                    names.insert(n.clone());
                }
                Expr::Unary(_, e) => collect(e, top, names),
                Expr::Binary(_, l, r) => {
                    collect(l, top, names);
                    collect(r, top, names);
                }
                Expr::Call(_, args) => {
                    for a in args {
                        collect(a, top, names);
                    }
                }
                Expr::Subquery(sq) => {
                    if let Some(f) = &sq.filter {
                        collect(f, false, names);
                    }
                    if let Some(a) = &sq.arg {
                        collect(a, false, names);
                    }
                }
            }
        }
        let mut names = BTreeSet::new();
        collect(expr, true, &mut names);
        let mut cols: Vec<usize> = names
            .iter()
            .filter_map(|n| self.manifest.schema.index_of(n).ok())
            .collect();
        cols.sort_unstable();
        if cols.is_empty() && !self.manifest.schema.is_empty() {
            cols.push(0);
        }
        cols
    }

    /// Materialize page `p` restricted to the given schema columns.
    fn page_table(&self, p: usize, cols: &[usize]) -> TableResult<Table> {
        let fields = cols
            .iter()
            .map(|&c| self.manifest.schema.fields()[c].clone())
            .collect();
        let schema = Schema::new(fields)?;
        let columns: Vec<Column> = cols
            .iter()
            .map(|&c| self.fetch_page(c, p).map(|a| (*a).clone()))
            .collect::<StorageResult<_>>()?;
        Table::new(schema, columns)
    }

    /// Evaluate `expr` page-parallel, one result per page in page
    /// order.
    fn eval_pages(&self, expr: &Expr) -> Vec<TableResult<Vec<bool>>> {
        let cols = self.referenced_columns(expr);
        let specs = if self.zone_skipping {
            analyze_conjuncts(expr, &self.manifest.schema)
        } else {
            Vec::new()
        };
        (0..self.n_pages())
            .into_par_iter()
            .map(|p| {
                let rows = self.manifest.page_row_range(p).len();
                if self.zone_skipping && self.page_skippable(&specs, p) {
                    self.pages_skipped.fetch_add(1, Ordering::Relaxed);
                    return Ok(vec![false; rows]);
                }
                self.pages_evaluated.fetch_add(1, Ordering::Relaxed);
                let t = self.page_table(p, &cols)?;
                eval_bool_columnar(expr, &t, None)
            })
            .collect()
    }

    /// Whether the zone maps prove every row of page `p` false before
    /// any conjunct that might error there (see the module docs).
    fn page_skippable(&self, specs: &[ConjunctSpec], p: usize) -> bool {
        for spec in specs {
            match *spec {
                ConjunctSpec::Opaque => return false,
                ConjunctSpec::IntCmp { col, op, lit } => {
                    let (mn, mx) = self.manifest.pages[col][p].zone.int_bounds();
                    if provably_false_int(op, lit, mn, mx) {
                        return true;
                    }
                }
                ConjunctSpec::FloatCmp {
                    col,
                    op,
                    lit,
                    col_is_float,
                } => {
                    let zone = self.manifest.pages[col][p].zone;
                    let (mn, mx) = if col_is_float {
                        if zone.error_count > 0 {
                            // A NaN row errors on this very conjunct.
                            return false;
                        }
                        zone.float_bounds()
                    } else {
                        let (a, b) = zone.int_bounds();
                        (a as f64, b as f64)
                    };
                    if provably_false_f64(op, lit, mn, mx) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Start of an observed scan span: counter snapshots, taken only
    /// when a trace collector is installed on the calling thread so
    /// the uninstrumented path pays one thread-local branch.
    fn observe_scan_start(&self) -> Option<(ScanSnapshot, super::BufferSnapshot)> {
        if lts_obs::trace::collecting() {
            Some((self.scan_snapshot(), self.buffer.snapshot()))
        } else {
            None
        }
    }

    /// End of an observed scan span: emit `pages` / `buffer` trace
    /// events carrying the counter deltas. The deltas come from the
    /// table-wide atomics, so concurrent scans of the same table can
    /// cross-talk; page counts are content-pure under a single scan
    /// (and asserted in goldens), while buffer hit/miss counts are
    /// interleaving-dependent and masked like wall time.
    fn observe_scan_end(&self, start: Option<(ScanSnapshot, super::BufferSnapshot)>) {
        use lts_obs::Snapshot as _;
        if let Some((scan0, buf0)) = start {
            let scan = self.scan_snapshot().delta(&scan0);
            let buf = self.buffer.snapshot().delta(&buf0);
            lts_obs::trace::emit(lts_obs::TraceEvent::Pages {
                evaluated: scan.pages_evaluated,
                skipped: scan.pages_skipped,
            });
            lts_obs::trace::emit(lts_obs::TraceEvent::Buffer {
                hits: buf.hits,
                misses: buf.misses,
            });
        }
    }

    /// Evaluate `expr` as a predicate over the whole table via the
    /// page-parallel scan — element- and error-identical to
    /// [`crate::PartitionedTable::par_eval_bool`] over the same data.
    ///
    /// # Errors
    ///
    /// Returns the first failing row's error in row order, or
    /// [`TableError::Storage`] for an I/O/integrity fault.
    pub fn par_eval_bool(&self, expr: &Expr) -> TableResult<Vec<bool>> {
        let span = self.observe_scan_start();
        let mut out = Vec::with_capacity(self.len());
        for r in self.eval_pages(expr) {
            out.extend(r?);
        }
        self.observe_scan_end(span);
        Ok(out)
    }

    /// Count rows satisfying `expr` via the page-parallel scan.
    ///
    /// # Errors
    ///
    /// Returns the first failing row's error in row order, or
    /// [`TableError::Storage`] for an I/O/integrity fault.
    pub fn par_count(&self, expr: &Expr) -> TableResult<usize> {
        let span = self.observe_scan_start();
        let mut total = 0usize;
        for r in self.eval_pages(expr) {
            total += r?.into_iter().filter(|&l| l).count();
        }
        self.observe_scan_end(span);
        Ok(total)
    }

    /// Evaluate `expr` over the listed row ids, faulting in only the
    /// pages containing them — the stage-2 stratified-draw read path.
    /// Consecutive ids on the same page share one page fault;
    /// results and errors come back in id order, element-identical to
    /// [`crate::par_eval_bool_ids`] on the materialized table.
    ///
    /// # Errors
    ///
    /// Reports the first out-of-range id up front as
    /// [`TableError::RowIndexOutOfRange`]; otherwise the first failing
    /// row's error in id order, or [`TableError::Storage`].
    pub fn eval_bool_ids(&self, expr: &Expr, ids: &[usize]) -> TableResult<Vec<bool>> {
        let n = self.len();
        if let Some(&bad) = ids.iter().find(|&&i| i >= n) {
            return Err(TableError::RowIndexOutOfRange { index: bad, len: n });
        }
        let span = self.observe_scan_start();
        let cols = self.referenced_columns(expr);
        let specs = if self.zone_skipping {
            analyze_conjuncts(expr, &self.manifest.schema)
        } else {
            Vec::new()
        };
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0usize;
        while i < ids.len() {
            let p = ids[i] / self.manifest.page_rows;
            let mut j = i + 1;
            while j < ids.len() && ids[j] / self.manifest.page_rows == p {
                j += 1;
            }
            if self.zone_skipping && self.page_skippable(&specs, p) {
                self.pages_skipped.fetch_add(1, Ordering::Relaxed);
                out.extend(std::iter::repeat_n(false, j - i));
            } else {
                self.pages_evaluated.fetch_add(1, Ordering::Relaxed);
                let base = p * self.manifest.page_rows;
                let local: Vec<usize> = ids[i..j].iter().map(|&id| id - base).collect();
                let t = self.page_table(p, &cols)?;
                out.extend(eval_columnar_sel(expr, &t, RowSel::Ids(&local)).truthy()?);
            }
            i = j;
        }
        self.observe_scan_end(span);
        Ok(out)
    }

    /// Materialize the whole table in RAM (page-sequential read).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Storage`] for an I/O/integrity fault.
    pub fn to_table(&self) -> TableResult<Table> {
        self.materialize_columns(&(0..self.manifest.schema.len()).collect::<Vec<_>>())
            .map(|(schema, cols)| Table::new(schema, cols))?
    }

    /// Materialize only the named columns (e.g. the feature columns a
    /// scoring pipeline keeps hot in RAM while the predicate pages).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::UnknownColumn`] for a bad name and
    /// [`TableError::Storage`] for an I/O/integrity fault.
    pub fn to_table_of(&self, names: &[&str]) -> TableResult<Table> {
        let cols: Vec<usize> = names
            .iter()
            .map(|n| self.manifest.schema.index_of(n))
            .collect::<TableResult<_>>()?;
        self.materialize_columns(&cols)
            .map(|(schema, cols)| Table::new(schema, cols))?
    }

    fn materialize_columns(&self, cols: &[usize]) -> TableResult<(Schema, Vec<Column>)> {
        let fields = cols
            .iter()
            .map(|&c| self.manifest.schema.fields()[c].clone())
            .collect();
        let schema = Schema::new(fields)?;
        let mut out: Vec<Column> = cols
            .iter()
            .map(|&c| Column::with_capacity(self.manifest.schema.fields()[c].data_type, self.len()))
            .collect();
        for p in 0..self.n_pages() {
            for (slot, &c) in out.iter_mut().zip(cols) {
                let page = self.fetch_page(c, p)?;
                append_column(slot, &page);
            }
        }
        Ok((schema, out))
    }
}

fn append_column(dst: &mut Column, src: &Column) {
    match (dst, src) {
        (Column::Bool(d), Column::Bool(s)) => d.extend_from_slice(s),
        (Column::Int(d), Column::Int(s)) => d.extend_from_slice(s),
        (Column::Float(d), Column::Float(s)) => d.extend_from_slice(s),
        (Column::Str(d), Column::Str(s)) => d.extend(s.iter().cloned()),
        _ => unreachable!("page type matches manifest schema by construction"),
    }
}

/// One top-level conjunct, classified for the page-skip walk.
#[derive(Debug, Clone, Copy)]
enum ConjunctSpec {
    /// `col CMP int-literal` on an `Int` column: compared in `i64`,
    /// can never error or be NULL.
    IntCmp { col: usize, op: CmpOp, lit: i64 },
    /// A numeric comparison the engine runs in `f64`. Errors only on
    /// NaN column values (float columns; tracked per page by
    /// `error_count`).
    FloatCmp {
        col: usize,
        op: CmpOp,
        lit: f64,
        col_is_float: bool,
    },
    /// Anything else: conservatively *might error*, stops the walk.
    Opaque,
}

/// Mirror a comparison for `literal CMP col → col CMP' literal`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

fn analyze_conjuncts(expr: &Expr, schema: &Schema) -> Vec<ConjunctSpec> {
    split_conjuncts(expr)
        .into_iter()
        .map(|c| classify_conjunct(c, schema))
        .collect()
}

fn classify_conjunct(e: &Expr, schema: &Schema) -> ConjunctSpec {
    let Expr::Binary(BinaryOp::Cmp(op), l, r) = e else {
        return ConjunctSpec::Opaque;
    };
    let (name, lit, op) = match (l.as_ref(), r.as_ref()) {
        (Expr::Column(n), Expr::Literal(v)) => (n, v, *op),
        (Expr::Literal(v), Expr::Column(n)) => (n, v, flip(*op)),
        _ => return ConjunctSpec::Opaque,
    };
    let Ok(col) = schema.index_of(name) else {
        return ConjunctSpec::Opaque; // unknown column errors every row
    };
    let dtype = schema.fields()[col].data_type;
    match (dtype, lit) {
        (DataType::Int, Value::Int(v)) => ConjunctSpec::IntCmp { col, op, lit: *v },
        (DataType::Int, Value::Float(x)) if !x.is_nan() => ConjunctSpec::FloatCmp {
            col,
            op,
            lit: *x,
            col_is_float: false,
        },
        // The engine promotes an int literal with `as f64` — the same
        // conversion used here.
        (DataType::Float, Value::Int(v)) => ConjunctSpec::FloatCmp {
            col,
            op,
            lit: *v as f64,
            col_is_float: true,
        },
        (DataType::Float, Value::Float(x)) if !x.is_nan() => ConjunctSpec::FloatCmp {
            col,
            op,
            lit: *x,
            col_is_float: true,
        },
        _ => ConjunctSpec::Opaque,
    }
}

fn provably_false_int(op: CmpOp, lit: i64, mn: i64, mx: i64) -> bool {
    match op {
        CmpOp::Lt => mn >= lit,
        CmpOp::Le => mn > lit,
        CmpOp::Gt => mx <= lit,
        CmpOp::Ge => mx < lit,
        CmpOp::Eq => lit < mn || lit > mx,
        CmpOp::Ne => mn == mx && mn == lit,
    }
}

fn provably_false_f64(op: CmpOp, lit: f64, mn: f64, mx: f64) -> bool {
    // `mn > mx` (the all-NaN sentinel) only reaches here for int
    // columns' converted bounds, which are always ordered; float
    // columns with NaN rows bail on `error_count` first.
    match op {
        CmpOp::Lt => mn >= lit,
        CmpOp::Le => mn > lit,
        CmpOp::Gt => mx <= lit,
        CmpOp::Ge => mx < lit,
        CmpOp::Eq => lit < mn || lit > mx,
        CmpOp::Ne => mn == mx && mn == lit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionedTable;
    use crate::table::{table_of_floats, TableBuilder};
    use crate::value::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lts_paged_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn mixed_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Float),
            ("k", DataType::Int),
            ("tag", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::with_capacity(schema, n);
        for i in 0..n {
            b.push_row(vec![
                Value::Float((i % 97) as f64 / 97.0),
                Value::Int((i % 13) as i64),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_and_scan_agreement() {
        let dir = tmp_dir("roundtrip");
        let table = mixed_table(997);
        PagedTable::create(&dir, &table, 64).unwrap();
        let paged = PagedTable::open(&dir, 8).unwrap();
        assert_eq!(paged.len(), 997);
        assert_eq!(paged.n_pages(), 16);
        assert_eq!(paged.schema(), table.schema());
        assert_eq!(paged.to_table().unwrap(), table);

        let arc = Arc::new(table);
        let pt = PartitionedTable::new(Arc::clone(&arc), 4);
        let e = Expr::col("x")
            .gt(Expr::lit(0.25))
            .and(Expr::col("k").le(Expr::lit(7i64)));
        assert_eq!(
            paged.par_eval_bool(&e).unwrap(),
            pt.par_eval_bool(&e).unwrap()
        );
        assert_eq!(paged.par_count(&e).unwrap(), pt.par_count(&e).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zone_maps_skip_disjoint_pages() {
        let dir = tmp_dir("skip");
        // x is sorted, so a selective range predicate has disjoint
        // zone maps on most pages.
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let table = table_of_floats(&[("x", &xs)]).unwrap();
        PagedTable::create(&dir, &table, 100).unwrap();
        let paged = PagedTable::open(&dir, 16).unwrap();
        let e = Expr::col("x").ge(Expr::lit(900.0));
        let got = paged.par_eval_bool(&e).unwrap();
        assert_eq!(got.iter().filter(|&&b| b).count(), 100);
        let scan = paged.scan_snapshot();
        assert_eq!(scan.pages_skipped, 9);
        assert_eq!(scan.pages_evaluated, 1);
        // Only the surviving page was ever faulted.
        assert_eq!(paged.buffer_snapshot().misses, 1);

        // Skipping off: every page is read; result identical.
        let unskipped = PagedTable::open(&dir, 16)
            .unwrap()
            .with_zone_skipping(false);
        assert_eq!(unskipped.par_eval_bool(&e).unwrap(), got);
        assert_eq!(unskipped.scan_snapshot().pages_evaluated, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skip_rule_respects_error_order() {
        let dir = tmp_dir("skip_err");
        // Page 0: x in [0, 9]; page 1: x in [10, 19] with a NaN row.
        // k is an int mirror of the row index.
        let schema = Schema::from_pairs(&[("x", DataType::Float), ("k", DataType::Int)]).unwrap();
        let mut b = crate::table::TableBuilder::with_capacity(schema, 20);
        for i in 0..20i64 {
            let x = if i == 15 { f64::NAN } else { i as f64 };
            b.push_row(vec![Value::Float(x), Value::Int(i)]).unwrap();
        }
        let table = b.finish().unwrap();
        PagedTable::create(&dir, &table, 10).unwrap();
        let paged = PagedTable::open(&dir, 4).unwrap();

        // The NaN comparison must error even though the page's bounds
        // are disjoint from the predicate range: error_count blocks
        // the skip.
        let e = Expr::col("x").gt(Expr::lit(100.0));
        let serial = PartitionedTable::new(Arc::new(table), 1).par_eval_bool(&e);
        assert!(serial.is_err());
        assert_eq!(paged.par_eval_bool(&e), serial);
        // The erroring page was faulted, not skipped.
        assert_eq!(paged.scan_snapshot().pages_skipped, 1);

        // A provably-false, cannot-error conjunct BEFORE the erroring
        // one shadows it, exactly like `FALSE AND <error>` in RAM —
        // and lets the zone maps skip both pages without faulting.
        let shadowed = Expr::col("k")
            .lt(Expr::lit(-1i64))
            .and(Expr::col("x").gt(Expr::lit(0.0)));
        let before = paged.buffer_snapshot().misses;
        assert_eq!(paged.par_eval_bool(&shadowed).unwrap(), vec![false; 20]);
        assert_eq!(paged.buffer_snapshot().misses, before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_bool_ids_faults_only_needed_pages() {
        let dir = tmp_dir("ids");
        let table = mixed_table(1000);
        PagedTable::create(&dir, &table, 50).unwrap();
        let paged = PagedTable::open(&dir, 8).unwrap();
        let e = Expr::col("x").lt(Expr::lit(0.5));
        // Ids confined to two pages.
        let ids: Vec<usize> = vec![3, 7, 8, 903, 950, 955];
        let want = eval_bool_columnar(&e, &table, Some(&ids)).unwrap();
        assert_eq!(paged.eval_bool_ids(&e, &ids).unwrap(), want);
        // Pages 0, 18, 19 → 3 faults of the one referenced column.
        assert_eq!(paged.buffer_snapshot().misses, 3);
        // Out-of-range ids error up front.
        assert_eq!(
            paged.eval_bool_ids(&e, &[5, 2000]),
            Err(TableError::RowIndexOutOfRange {
                index: 2000,
                len: 1000
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_surfaces_as_structured_errors() {
        let dir = tmp_dir("corrupt");
        let table = mixed_table(100);
        PagedTable::create(&dir, &table, 32).unwrap();

        // Truncated column file: open() catches it early.
        let col0 = column_file(&dir, 0);
        let bytes = fs::read(&col0).unwrap();
        fs::write(&col0, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            PagedTable::open(&dir, 4),
            Err(StorageError::Truncated { .. })
        ));
        fs::write(&col0, &bytes).unwrap();

        // A flipped payload byte passes open() but fails the page
        // checksum at fault time — and the scan surfaces it as a
        // structured TableError::Storage, not a wrong count.
        let mut evil = bytes.clone();
        evil[10] ^= 0xff;
        fs::write(&col0, &evil).unwrap();
        let paged = PagedTable::open(&dir, 4).unwrap();
        let e = Expr::col("x").gt(Expr::lit(-1.0));
        match paged.par_eval_bool(&e) {
            Err(TableError::Storage { message }) => {
                assert!(message.contains("checksum"), "got: {message}");
            }
            other => unreachable!("expected storage error, got {other:?}"),
        }
        fs::write(&col0, &bytes).unwrap();

        // Missing manifest is an I/O error, garbage is bad magic.
        let manifest = dir.join(MANIFEST_FILE);
        let good = fs::read(&manifest).unwrap();
        fs::remove_file(&manifest).unwrap();
        assert!(matches!(
            PagedTable::open(&dir, 4),
            Err(StorageError::Io { .. })
        ));
        fs::write(&manifest, b"not a manifest").unwrap();
        assert!(matches!(
            PagedTable::open(&dir, 4),
            Err(StorageError::BadMagic { .. })
        ));
        fs::write(&manifest, &good).unwrap();
        assert!(PagedTable::open(&dir, 4).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_pool_forces_eviction_but_not_divergence() {
        let dir = tmp_dir("tiny");
        let table = mixed_table(500);
        PagedTable::create(&dir, &table, 16).unwrap();
        let paged = PagedTable::open(&dir, 1).unwrap(); // adversarial pool
        let pt = PartitionedTable::new(Arc::new(table), 7);
        let e = Expr::col("x")
            .mul(Expr::lit(2.0))
            .gt(Expr::lit(0.7))
            .or(Expr::col("tag").eq(Expr::lit(Value::str("even"))));
        assert_eq!(
            paged.par_eval_bool(&e).unwrap(),
            pt.par_eval_bool(&e).unwrap()
        );
        assert!(paged.buffer_snapshot().evictions > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_table_pages_cleanly() {
        let dir = tmp_dir("empty");
        let table = table_of_floats(&[("x", &[])]).unwrap();
        PagedTable::create(&dir, &table, 8).unwrap();
        let paged = PagedTable::open(&dir, 2).unwrap();
        assert_eq!(paged.n_pages(), 0);
        let e = Expr::col("x").gt(Expr::lit(0.0));
        assert!(paged.par_eval_bool(&e).unwrap().is_empty());
        assert_eq!(paged.par_count(&e).unwrap(), 0);
        assert_eq!(paged.to_table().unwrap(), table);
        assert!(PagedTable::create(&dir, &table, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
