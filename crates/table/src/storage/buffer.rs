//! The bounded page cache: clock (second-chance) eviction, pin/unpin
//! accounting, and hit/miss/eviction counters.
//!
//! A [`BufferManager`] caches decoded column pages keyed by
//! `(column, page)`. Capacity is a page *count*; when a load would
//! exceed it, the clock hand sweeps the resident ring giving
//! recently-touched pages a second chance and evicting the first
//! unpinned, unreferenced page it finds. Pages pinned through a live
//! [`PageGuard`] are never evicted; if every resident page is pinned
//! the pool **overflows** rather than failing — scan correctness is
//! independent of pool size by construction, an adversarially tiny
//! pool just re-reads pages (the property tests run exactly that
//! configuration).
//!
//! Loads happen under the cache lock, so concurrent scans never decode
//! the same page twice and the counters are exact: `hits + misses` is
//! the number of page requests, `misses` the number of page faults
//! that actually hit the disk format.

use super::StorageResult;
use crate::column::Column;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSnapshot {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that faulted the page in from disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Pages currently resident.
    pub resident: usize,
}

impl lts_obs::Snapshot for BufferSnapshot {
    fn merge(&self, other: &Self) -> Self {
        BufferSnapshot {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            evictions: self.evictions.saturating_add(other.evictions),
            resident: self.resident.saturating_add(other.resident),
        }
    }

    // `resident` is a level, not a monotone counter: a delta's
    // `resident` is how much the pool *grew* over the span (0 if it
    // shrank), which keeps `before.merge(&delta)` an upper bound.
    fn delta(&self, before: &Self) -> Self {
        BufferSnapshot {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            evictions: self.evictions.saturating_sub(before.evictions),
            resident: self.resident.saturating_sub(before.resident),
        }
    }
}

#[derive(Debug)]
struct Slot {
    data: Arc<Column>,
    referenced: bool,
    pins: u32,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<(usize, usize), Slot>,
    ring: Vec<(usize, usize)>,
    hand: usize,
}

/// A bounded cache of decoded column pages (see the module docs).
#[derive(Debug)]
pub struct BufferManager {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferManager {
    /// A cache holding at most `capacity` pages (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity, in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch the page at `key`, loading it with `load` on a miss, and
    /// pin it for the lifetime of the returned guard.
    ///
    /// # Errors
    ///
    /// Propagates the loader's storage error (nothing is cached then).
    pub fn get_pinned(
        &self,
        key: (usize, usize),
        load: impl FnOnce() -> StorageResult<Column>,
    ) -> StorageResult<PageGuard<'_>> {
        let mut inner = self.inner.lock().expect("buffer lock");
        if let Some(slot) = inner.slots.get_mut(&key) {
            slot.referenced = true;
            slot.pins += 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
            let data = Arc::clone(&slot.data);
            return Ok(PageGuard {
                mgr: self,
                key,
                data,
            });
        }
        // Load under the lock: concurrent scans never decode the same
        // page twice, and `misses` counts true page faults.
        let data = Arc::new(load()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.make_room(&mut inner);
        inner.slots.insert(
            key,
            Slot {
                data: Arc::clone(&data),
                referenced: true,
                pins: 1,
            },
        );
        inner.ring.push(key);
        Ok(PageGuard {
            mgr: self,
            key,
            data,
        })
    }

    /// Clock sweep: evict unpinned, unreferenced pages until there is
    /// room for one more. Gives every resident page at most one second
    /// chance; if everything is pinned the pool overflows.
    fn make_room(&self, inner: &mut Inner) {
        let mut steps = 0;
        while inner.slots.len() >= self.capacity && !inner.ring.is_empty() {
            if steps >= 2 * inner.ring.len() {
                break; // every page pinned — overflow rather than fail
            }
            let i = inner.hand % inner.ring.len();
            let key = inner.ring[i];
            let slot = inner.slots.get_mut(&key).expect("ring entry resident");
            if slot.pins > 0 {
                inner.hand = i + 1;
                steps += 1;
            } else if slot.referenced {
                slot.referenced = false;
                inner.hand = i + 1;
                steps += 1;
            } else {
                inner.slots.remove(&key);
                inner.ring.remove(i);
                inner.hand = i; // next entry shifted into place
                self.evictions.fetch_add(1, Ordering::Relaxed);
                steps = 0;
            }
        }
    }

    /// Current counter values and residency.
    pub fn snapshot(&self) -> BufferSnapshot {
        BufferSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.inner.lock().expect("buffer lock").slots.len(),
        }
    }

    /// Zero the hit/miss/eviction counters (residency is unchanged).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drop every unpinned resident page (a cold-cache reset).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("buffer lock");
        let Inner { slots, ring, hand } = &mut *inner;
        ring.retain(|k| slots.get(k).is_some_and(|s| s.pins > 0));
        slots.retain(|_, s| s.pins > 0);
        *hand = 0;
    }

    fn unpin(&self, key: (usize, usize)) {
        let mut inner = self.inner.lock().expect("buffer lock");
        if let Some(slot) = inner.slots.get_mut(&key) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }
}

/// A pinned page: dereferences to the decoded [`Column`]; the pin is
/// released on drop.
#[derive(Debug)]
pub struct PageGuard<'a> {
    mgr: &'a BufferManager,
    key: (usize, usize),
    data: Arc<Column>,
}

impl PageGuard<'_> {
    /// The decoded page, shareable beyond the pin's lifetime.
    pub fn column(&self) -> &Arc<Column> {
        &self.data
    }
}

impl Deref for PageGuard<'_> {
    type Target = Column;

    fn deref(&self) -> &Column {
        &self.data
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.mgr.unpin(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(v: i64) -> Column {
        Column::Int(vec![v; 4])
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mgr = BufferManager::new(4);
        for _ in 0..3 {
            let g = mgr.get_pinned((0, 0), || Ok(page(7))).unwrap();
            assert_eq!(g.as_ints().unwrap(), &[7, 7, 7, 7]);
        }
        let s = mgr.snapshot();
        assert_eq!((s.hits, s.misses, s.evictions, s.resident), (2, 1, 0, 1));
        mgr.reset_counters();
        assert_eq!(mgr.snapshot().hits, 0);
    }

    #[test]
    fn clock_evicts_cold_pages_first() {
        let mgr = BufferManager::new(2);
        mgr.get_pinned((0, 0), || Ok(page(0))).unwrap();
        mgr.get_pinned((0, 1), || Ok(page(1))).unwrap();
        // Touch page 1 so page 0 loses its second chance first.
        mgr.get_pinned((0, 1), || Ok(page(1))).unwrap();
        mgr.get_pinned((0, 2), || Ok(page(2))).unwrap();
        let s = mgr.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 2);
        // Page 1 must still be resident (hit), page 0 must re-load.
        let before = mgr.snapshot().misses;
        mgr.get_pinned((0, 1), || Ok(page(1))).unwrap();
        assert_eq!(mgr.snapshot().misses, before);
        mgr.get_pinned((0, 0), || Ok(page(0))).unwrap();
        assert_eq!(mgr.snapshot().misses, before + 1);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mgr = BufferManager::new(1);
        let g = mgr.get_pinned((0, 0), || Ok(page(0))).unwrap();
        // Pool of 1 with the only slot pinned: the next load overflows
        // instead of evicting the pinned page.
        let g2 = mgr.get_pinned((0, 1), || Ok(page(1))).unwrap();
        assert_eq!(mgr.snapshot().resident, 2);
        assert_eq!(g.as_ints().unwrap()[0], 0);
        drop(g);
        drop(g2);
        // Unpinned now: the next load can evict back down.
        mgr.get_pinned((0, 2), || Ok(page(2))).unwrap();
        assert!(mgr.snapshot().resident <= 2);
        assert!(mgr.snapshot().evictions >= 1);
    }

    #[test]
    fn loader_errors_cache_nothing() {
        let mgr = BufferManager::new(2);
        let err = mgr.get_pinned((0, 0), || {
            Err(super::super::StorageError::Truncated { what: "p".into() })
        });
        assert!(err.is_err());
        assert_eq!(mgr.snapshot().resident, 0);
        // A later good load works.
        mgr.get_pinned((0, 0), || Ok(page(3))).unwrap();
        assert_eq!(mgr.snapshot().resident, 1);
    }

    #[test]
    fn clear_drops_unpinned_pages() {
        let mgr = BufferManager::new(4);
        mgr.get_pinned((0, 0), || Ok(page(0))).unwrap();
        let pinned = mgr.get_pinned((0, 1), || Ok(page(1))).unwrap();
        mgr.clear();
        assert_eq!(mgr.snapshot().resident, 1);
        drop(pinned);
    }
}
