//! The on-disk page format: column-page payload codec, per-page zone
//! maps, and the checksummed table manifest.
//!
//! # Layout
//!
//! A paged table is a directory:
//!
//! ```text
//! <dir>/manifest.ltsp    the manifest (below)
//! <dir>/col_<i>.pages    column i's pages, concatenated payloads
//! ```
//!
//! A **page** holds a fixed number of rows (`page_rows`, the last page
//! may be shorter) of one column. Payload encodings (little-endian):
//!
//! * `Bool` — one byte per value (`0`/`1`),
//! * `Int` — 8 bytes per value (`i64` LE),
//! * `Float` — 8 bytes per value (`f64::to_bits` LE),
//! * `Str` — per value: `u32` LE byte length, then UTF-8 bytes.
//!
//! The **manifest** is: magic `LTSP`, format version (`u32`),
//! `page_rows` (`u64`), `n_rows` (`u64`), the schema (field count,
//! then name-length/name-bytes/type-tag per field), the page count
//! (`u64`), then for every column × page: byte offset, byte length,
//! FNV-1a checksum of the payload, and the four zone-map words. The
//! final 8 bytes are the FNV-1a checksum of everything before them, so
//! a torn manifest write is detected at open. Page payload checksums
//! live in the manifest (not the data files), so a page read is
//! verified against what the manifest promised.

use super::{fnv1a64, StorageError, StorageResult};
use crate::column::Column;
use crate::schema::{Field, Schema};
use crate::value::DataType;
use std::ops::Range;
use std::sync::Arc;

/// Magic bytes opening a manifest.
pub const PAGE_MAGIC: &[u8; 4] = b"LTSP";
/// The on-disk format version this build reads and writes.
pub const PAGE_FORMAT_VERSION: u32 = 1;

/// Min/max + null/error statistics for one `(column, page)` chunk,
/// built at write time.
///
/// `min_bits`/`max_bits` are type-punned by the column's
/// [`DataType`]: `i64` bit patterns for `Int`, [`f64::to_bits`] for
/// `Float` (min/max over non-NaN values), `0`/`1` for `Bool`, unused
/// (zero) for `Str`. `null_count` is always 0 today — storage columns
/// are dense; `Value::Null` only arises during expression evaluation —
/// but the word is in the format so nullable storage stays
/// format-compatible. `error_count` counts values whose *comparison*
/// is a row error: NaN floats (a NaN comparison is a per-row
/// `TypeMismatch` in the expression engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Minimum value's bit pattern (see type punning above).
    pub min_bits: u64,
    /// Maximum value's bit pattern.
    pub max_bits: u64,
    /// NULL values in the chunk (always 0 for dense storage).
    pub null_count: u64,
    /// Values whose comparison errors (NaN floats).
    pub error_count: u64,
}

impl ZoneMap {
    /// Build the zone map for rows `lo..hi` of `col`.
    ///
    /// # Panics
    ///
    /// Panics when `lo..hi` is out of range for the column.
    pub fn of_column_range(col: &Column, lo: usize, hi: usize) -> ZoneMap {
        match col {
            Column::Bool(v) => {
                let (mut any_true, mut any_false) = (false, false);
                for &b in &v[lo..hi] {
                    any_true |= b;
                    any_false |= !b;
                }
                ZoneMap {
                    min_bits: u64::from(any_true && !any_false),
                    max_bits: u64::from(any_true),
                    null_count: 0,
                    error_count: 0,
                }
            }
            Column::Int(v) => {
                let (mut mn, mut mx) = (i64::MAX, i64::MIN);
                for &x in &v[lo..hi] {
                    mn = mn.min(x);
                    mx = mx.max(x);
                }
                ZoneMap {
                    min_bits: mn as u64,
                    max_bits: mx as u64,
                    null_count: 0,
                    error_count: 0,
                }
            }
            Column::Float(v) => {
                let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut errors = 0u64;
                for &x in &v[lo..hi] {
                    if x.is_nan() {
                        errors += 1;
                    } else {
                        if x < mn {
                            mn = x;
                        }
                        if x > mx {
                            mx = x;
                        }
                    }
                }
                ZoneMap {
                    min_bits: mn.to_bits(),
                    max_bits: mx.to_bits(),
                    null_count: 0,
                    error_count: errors,
                }
            }
            Column::Str(_) => ZoneMap {
                min_bits: 0,
                max_bits: 0,
                null_count: 0,
                error_count: 0,
            },
        }
    }

    /// The `(min, max)` bounds of an `Int` chunk.
    pub fn int_bounds(&self) -> (i64, i64) {
        (self.min_bits as i64, self.max_bits as i64)
    }

    /// The `(min, max)` bounds over the non-NaN values of a `Float`
    /// chunk (`(+inf, -inf)` when every value is NaN).
    pub fn float_bounds(&self) -> (f64, f64) {
        (f64::from_bits(self.min_bits), f64::from_bits(self.max_bits))
    }
}

/// Location, integrity, and zone statistics of one column page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Byte offset of the payload in the column's data file.
    pub offset: u64,
    /// Payload byte length.
    pub byte_len: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
    /// Zone map built at write time.
    pub zone: ZoneMap,
}

/// The decoded manifest: schema, geometry, and per-column-per-page
/// metadata. `pages[c][p]` is column `c`'s page `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableManifest {
    /// Column names and types.
    pub schema: Schema,
    /// Total rows.
    pub n_rows: usize,
    /// Rows per page (the last page may be shorter).
    pub page_rows: usize,
    /// `pages[column][page]` metadata.
    pub pages: Vec<Vec<PageMeta>>,
}

impl TableManifest {
    /// Number of pages per column.
    pub fn n_pages(&self) -> usize {
        if self.n_rows == 0 {
            0
        } else {
            self.n_rows.div_ceil(self.page_rows)
        }
    }

    /// Row range covered by page `p`.
    pub fn page_row_range(&self, p: usize) -> Range<usize> {
        let lo = p * self.page_rows;
        lo..((lo + self.page_rows).min(self.n_rows))
    }

    /// Serialize (checksum appended).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(PAGE_MAGIC);
        out.extend_from_slice(&PAGE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.page_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.schema.len() as u32).to_le_bytes());
        for f in self.schema.fields() {
            let name = f.name.as_bytes();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name);
            out.push(dtype_tag(f.data_type));
        }
        out.extend_from_slice(&(self.n_pages() as u64).to_le_bytes());
        for col_pages in &self.pages {
            for m in col_pages {
                for w in [
                    m.offset,
                    m.byte_len,
                    m.checksum,
                    m.zone.min_bits,
                    m.zone.max_bits,
                    m.zone.null_count,
                    m.zone.error_count,
                ] {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and verify a manifest read from `path` (the path is only
    /// used in error messages).
    ///
    /// # Errors
    ///
    /// Returns a structured [`StorageError`] for bad magic, an
    /// unsupported version, truncation, a checksum mismatch, or
    /// structurally invalid bytes.
    pub fn decode(bytes: &[u8], path: &std::path::Path) -> StorageResult<TableManifest> {
        if bytes.len() < 8 {
            return Err(StorageError::Truncated {
                what: format!("manifest {}", path.display()),
            });
        }
        if &bytes[..4] != PAGE_MAGIC {
            return Err(StorageError::BadMagic { path: path.into() });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != PAGE_FORMAT_VERSION {
            return Err(StorageError::VersionMismatch {
                found: version,
                expected: PAGE_FORMAT_VERSION,
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a64(body) != stored {
            return Err(StorageError::ChecksumMismatch {
                what: format!("manifest {}", path.display()),
            });
        }

        let mut r = Reader {
            bytes: body,
            pos: 8,
            what: "manifest",
        };
        let page_rows = r.u64()? as usize;
        let n_rows = r.u64()? as usize;
        if page_rows == 0 {
            return Err(StorageError::Corrupt {
                message: "manifest declares zero rows per page".into(),
            });
        }
        let n_cols = r.u32()? as usize;
        let mut fields = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| StorageError::Corrupt {
                    message: "non-UTF-8 column name".into(),
                })?
                .to_string();
            let dtype = dtype_from_tag(r.u8()?)?;
            fields.push(Field::new(name, dtype));
        }
        let schema = Schema::new(fields).map_err(|e| StorageError::Corrupt {
            message: format!("invalid schema: {e}"),
        })?;
        let n_pages = r.u64()? as usize;
        let expect_pages = if n_rows == 0 {
            0
        } else {
            n_rows.div_ceil(page_rows)
        };
        if n_pages != expect_pages {
            return Err(StorageError::Corrupt {
                message: format!(
                    "manifest declares {n_pages} pages, geometry implies {expect_pages}"
                ),
            });
        }
        let mut pages = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let mut col_pages = Vec::with_capacity(n_pages);
            for _ in 0..n_pages {
                let offset = r.u64()?;
                let byte_len = r.u64()?;
                let checksum = r.u64()?;
                let zone = ZoneMap {
                    min_bits: r.u64()?,
                    max_bits: r.u64()?,
                    null_count: r.u64()?,
                    error_count: r.u64()?,
                };
                col_pages.push(PageMeta {
                    offset,
                    byte_len,
                    checksum,
                    zone,
                });
            }
            pages.push(col_pages);
        }
        if r.pos != body.len() {
            return Err(StorageError::Corrupt {
                message: format!("{} trailing manifest bytes", body.len() - r.pos),
            });
        }
        Ok(TableManifest {
            schema,
            n_rows,
            page_rows,
            pages,
        })
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn dtype_from_tag(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        other => {
            return Err(StorageError::Corrupt {
                message: format!("unknown column type tag {other}"),
            })
        }
    })
}

/// Encode rows `lo..hi` of `col` as a page payload.
///
/// # Panics
///
/// Panics when `lo..hi` is out of range for the column.
pub fn encode_page(col: &Column, lo: usize, hi: usize) -> Vec<u8> {
    match col {
        Column::Bool(v) => v[lo..hi].iter().map(|&b| u8::from(b)).collect(),
        Column::Int(v) => {
            let mut out = Vec::with_capacity((hi - lo) * 8);
            for &x in &v[lo..hi] {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        Column::Float(v) => {
            let mut out = Vec::with_capacity((hi - lo) * 8);
            for &x in &v[lo..hi] {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            out
        }
        Column::Str(v) => {
            let mut out = Vec::new();
            for s in &v[lo..hi] {
                let b = s.as_bytes();
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            out
        }
    }
}

/// Decode a page payload of `rows` values of type `dtype`. `what`
/// names the page for error messages.
///
/// # Errors
///
/// Returns [`StorageError::Truncated`] when the payload is short and
/// [`StorageError::Corrupt`] for ragged or non-UTF-8 content.
pub fn decode_page(
    bytes: &[u8],
    dtype: DataType,
    rows: usize,
    what: &str,
) -> StorageResult<Column> {
    let truncated = || StorageError::Truncated { what: what.into() };
    Ok(match dtype {
        DataType::Bool => {
            if bytes.len() != rows {
                return Err(truncated());
            }
            Column::Bool(bytes.iter().map(|&b| b != 0).collect())
        }
        DataType::Int => {
            if bytes.len() != rows * 8 {
                return Err(truncated());
            }
            Column::Int(
                bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
        DataType::Float => {
            if bytes.len() != rows * 8 {
                return Err(truncated());
            }
            Column::Float(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            )
        }
        DataType::Str => {
            let mut out: Vec<Arc<str>> = Vec::with_capacity(rows);
            let mut pos = 0usize;
            for _ in 0..rows {
                let end = pos.checked_add(4).ok_or_else(truncated)?;
                if end > bytes.len() {
                    return Err(truncated());
                }
                let len = u32::from_le_bytes(bytes[pos..end].try_into().expect("4 bytes")) as usize;
                pos = end;
                let end = pos.checked_add(len).ok_or_else(truncated)?;
                if end > bytes.len() {
                    return Err(truncated());
                }
                let s =
                    std::str::from_utf8(&bytes[pos..end]).map_err(|_| StorageError::Corrupt {
                        message: format!("non-UTF-8 string in {what}"),
                    })?;
                out.push(Arc::from(s));
                pos = end;
            }
            if pos != bytes.len() {
                return Err(StorageError::Corrupt {
                    message: format!("{} trailing bytes in {what}", bytes.len() - pos),
                });
            }
            Column::Str(out)
        }
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StorageError::Truncated {
                what: self.what.into(),
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn manifest_fixture() -> TableManifest {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap();
        let zone = |mn: u64, mx: u64, err: u64| ZoneMap {
            min_bits: mn,
            max_bits: mx,
            null_count: 0,
            error_count: err,
        };
        TableManifest {
            schema,
            n_rows: 10,
            page_rows: 4,
            pages: vec![
                vec![
                    PageMeta {
                        offset: 0,
                        byte_len: 32,
                        checksum: 1,
                        zone: zone(0, 3, 0),
                    },
                    PageMeta {
                        offset: 32,
                        byte_len: 32,
                        checksum: 2,
                        zone: zone(4, 7, 0),
                    },
                    PageMeta {
                        offset: 64,
                        byte_len: 16,
                        checksum: 3,
                        zone: zone(8, 9, 0),
                    },
                ],
                vec![
                    PageMeta {
                        offset: 0,
                        byte_len: 32,
                        checksum: 4,
                        zone: zone(0, 0, 1),
                    },
                    PageMeta {
                        offset: 32,
                        byte_len: 32,
                        checksum: 5,
                        zone: zone(0, 0, 0),
                    },
                    PageMeta {
                        offset: 64,
                        byte_len: 16,
                        checksum: 6,
                        zone: zone(0, 0, 0),
                    },
                ],
                vec![
                    PageMeta {
                        offset: 0,
                        byte_len: 9,
                        checksum: 7,
                        zone: zone(0, 0, 0),
                    },
                    PageMeta {
                        offset: 9,
                        byte_len: 9,
                        checksum: 8,
                        zone: zone(0, 0, 0),
                    },
                    PageMeta {
                        offset: 18,
                        byte_len: 5,
                        checksum: 9,
                        zone: zone(0, 0, 0),
                    },
                ],
            ],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = manifest_fixture();
        let bytes = m.encode();
        let back = TableManifest::decode(&bytes, Path::new("m")).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.n_pages(), 3);
        assert_eq!(back.page_row_range(2), 8..10);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = manifest_fixture();
        let good = m.encode();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            TableManifest::decode(&bad, Path::new("m")),
            Err(StorageError::BadMagic { .. })
        ));
        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            TableManifest::decode(&bad, Path::new("m")),
            Err(StorageError::VersionMismatch { found: 99, .. })
        ));
        // A flipped byte in the body breaks the checksum.
        let mut bad = good.clone();
        bad[20] ^= 0xff;
        assert!(matches!(
            TableManifest::decode(&bad, Path::new("m")),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        // Truncation (torn write) breaks the checksum or the length.
        for cut in [good.len() - 1, good.len() - 9, 10, 0] {
            assert!(TableManifest::decode(&good[..cut], Path::new("m")).is_err());
        }
    }

    #[test]
    fn page_payload_roundtrip_all_types() {
        let cases: Vec<Column> = vec![
            Column::Bool(vec![true, false, true]),
            Column::Int(vec![i64::MIN, -1, 0, i64::MAX]),
            Column::Float(vec![f64::NEG_INFINITY, -0.0, 1.5, f64::NAN]),
            Column::Str(vec![Arc::from("a"), Arc::from(""), Arc::from("héllo")]),
        ];
        for col in cases {
            let n = col.len();
            let bytes = encode_page(&col, 0, n);
            let back = decode_page(&bytes, col.data_type(), n, "p").unwrap();
            // NaN-safe comparison: compare the re-encoded bytes.
            assert_eq!(encode_page(&back, 0, n), bytes);
        }
    }

    #[test]
    fn page_payload_rejects_bad_bytes() {
        let col = Column::Int(vec![1, 2, 3]);
        let bytes = encode_page(&col, 0, 3);
        assert!(matches!(
            decode_page(&bytes[..20], DataType::Int, 3, "p"),
            Err(StorageError::Truncated { .. })
        ));
        let s = Column::Str(vec![Arc::from("abc")]);
        let bytes = encode_page(&s, 0, 1);
        assert!(decode_page(&bytes[..5], DataType::Str, 1, "p").is_err());
        // Declared string length runs past the payload.
        let mut bad = bytes.clone();
        bad[0] = 200;
        assert!(decode_page(&bad, DataType::Str, 1, "p").is_err());
        // Trailing garbage is structural corruption.
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            decode_page(&long, DataType::Str, 1, "p"),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn zone_maps_reflect_chunk_contents() {
        let c = Column::Int(vec![5, -3, 9, 9]);
        let z = ZoneMap::of_column_range(&c, 0, 4);
        assert_eq!(z.int_bounds(), (-3, 9));
        assert_eq!((z.null_count, z.error_count), (0, 0));
        let z = ZoneMap::of_column_range(&c, 2, 4);
        assert_eq!(z.int_bounds(), (9, 9));

        let c = Column::Float(vec![1.0, f64::NAN, -2.5, f64::NAN]);
        let z = ZoneMap::of_column_range(&c, 0, 4);
        assert_eq!(z.float_bounds(), (-2.5, 1.0));
        assert_eq!(z.error_count, 2);
        // All-NaN chunk: empty bounds, every row errors on comparison.
        let z = ZoneMap::of_column_range(&c, 1, 2);
        assert_eq!(z.error_count, 1);
        assert!(z.float_bounds().0 > z.float_bounds().1);

        let c = Column::Bool(vec![false, true]);
        let z = ZoneMap::of_column_range(&c, 0, 2);
        assert_eq!((z.min_bits, z.max_bits), (0, 1));
    }
}
