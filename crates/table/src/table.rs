//! The in-memory table: a schema plus typed columns.

use crate::column::Column;
use crate::error::{TableError, TableResult};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// An immutable-after-build, columnar, in-memory table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// Build a table directly from a schema and matching columns.
    ///
    /// # Errors
    ///
    /// Returns an error if column count/types/lengths disagree with the
    /// schema.
    pub fn new(schema: Schema, columns: Vec<Column>) -> TableResult<Self> {
        if schema.len() != columns.len() {
            return Err(TableError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let len = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(TableError::TypeMismatch {
                    expected: "column type matching schema",
                    found: format!("{} vs {}", field.data_type, col.data_type()),
                });
            }
            if col.len() != len {
                return Err(TableError::LengthMismatch {
                    expected: len,
                    found: col.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            len,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column by index.
    ///
    /// # Errors
    ///
    /// Returns an error when out of range.
    pub fn column(&self, index: usize) -> TableResult<&Column> {
        self.columns
            .get(index)
            .ok_or(TableError::ColumnIndexOutOfRange {
                index,
                len: self.columns.len(),
            })
    }

    /// Column by name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names.
    pub fn column_by_name(&self, name: &str) -> TableResult<&Column> {
        self.column(self.schema.index_of(name)?)
    }

    /// Float slice of a named column (must be a `Float` column).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-float columns.
    pub fn floats(&self, name: &str) -> TableResult<&[f64]> {
        self.column_by_name(name)?.as_floats()
    }

    /// Int slice of a named column (must be an `Int` column).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or non-int columns.
    pub fn ints(&self, name: &str) -> TableResult<&[i64]> {
        self.column_by_name(name)?.as_ints()
    }

    /// Value at `(row, column)`.
    ///
    /// # Errors
    ///
    /// Returns an error when either index is out of range.
    pub fn get(&self, row: usize, column: usize) -> TableResult<Value> {
        self.column(column)?.get(row)
    }

    /// Value at `(row, column-name)`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names or row out of range.
    pub fn get_by_name(&self, row: usize, name: &str) -> TableResult<Value> {
        self.column_by_name(name)?.get(row)
    }

    /// Materialize a full row as values (in schema order).
    ///
    /// # Errors
    ///
    /// Returns an error when `row` is out of range.
    pub fn row(&self, row: usize) -> TableResult<Vec<Value>> {
        if row >= self.len {
            return Err(TableError::RowIndexOutOfRange {
                index: row,
                len: self.len,
            });
        }
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Build a new table containing only the rows at `indices`
    /// (in the given order).
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn take(&self, indices: &[usize]) -> TableResult<Table> {
        let mut cols: Vec<Column> = self
            .schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, indices.len()))
            .collect();
        for &i in indices {
            if i >= self.len {
                return Err(TableError::RowIndexOutOfRange {
                    index: i,
                    len: self.len,
                });
            }
            for (c, src) in cols.iter_mut().zip(&self.columns) {
                c.push(src.get(i)?)?;
            }
        }
        Table::new(self.schema.clone(), cols)
    }

    /// Build a new table containing the contiguous row range
    /// `lo..hi` — the shard sub-table constructor. Columns are copied
    /// as whole sub-slices (no per-row gather), so slicing a table
    /// into `k` shards costs one pass over the data total.
    ///
    /// # Errors
    ///
    /// Returns an error when `lo > hi` or `hi` exceeds the row count.
    pub fn slice(&self, lo: usize, hi: usize) -> TableResult<Table> {
        if lo > hi || hi > self.len {
            return Err(TableError::RowIndexOutOfRange {
                index: hi.max(lo),
                len: self.len,
            });
        }
        let cols: Vec<Column> = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Bool(v) => Column::Bool(v[lo..hi].to_vec()),
                Column::Int(v) => Column::Int(v[lo..hi].to_vec()),
                Column::Float(v) => Column::Float(v[lo..hi].to_vec()),
                Column::Str(v) => Column::Str(v[lo..hi].to_vec()),
            })
            .collect();
        Table::new(self.schema.clone(), cols)
    }
}

/// Row-oriented builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Self { schema, columns }
    }

    /// Start building with reserved row capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, capacity))
            .collect();
        Self { schema, columns }
    }

    /// Append one row (values in schema order).
    ///
    /// # Errors
    ///
    /// Returns an error on arity or type mismatch. On error the builder
    /// may hold a partially-appended row and should be discarded.
    pub fn push_row(&mut self, values: Vec<Value>) -> TableResult<()> {
        if values.len() != self.columns.len() {
            return Err(TableError::LengthMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Number of complete rows appended so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish and produce the table.
    ///
    /// # Errors
    ///
    /// Returns an error if internal column lengths diverged (only possible
    /// after a failed `push_row`).
    pub fn finish(self) -> TableResult<Table> {
        Table::new(self.schema, self.columns)
    }
}

/// Convenience: build a single-key table used in tests and examples.
///
/// Creates a table with float columns given `(name, data)` pairs.
///
/// # Errors
///
/// Returns an error on duplicate names or ragged data.
pub fn table_of_floats(pairs: &[(&str, &[f64])]) -> TableResult<Table> {
    let schema = Schema::new(
        pairs
            .iter()
            .map(|(n, _)| crate::schema::Field::new(*n, DataType::Float))
            .collect(),
    )?;
    let columns = pairs
        .iter()
        .map(|(_, d)| Column::Float(d.to_vec()))
        .collect();
    Table::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("x", DataType::Float),
            Field::new("tag", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Int(1), Value::Float(0.5), Value::str("a")])
            .unwrap();
        b.push_row(vec![Value::Int(2), Value::Float(1.5), Value::str("b")])
            .unwrap();
        b.push_row(vec![Value::Int(3), Value::Float(2.5), Value::str("c")])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = sample_table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.get_by_name(1, "x").unwrap(), Value::Float(1.5));
        assert_eq!(t.get(2, 0).unwrap(), Value::Int(3));
        assert_eq!(t.floats("x").unwrap(), &[0.5, 1.5, 2.5]);
        assert_eq!(t.ints("id").unwrap(), &[1, 2, 3]);
        assert_eq!(
            t.row(0).unwrap(),
            vec![Value::Int(1), Value::Float(0.5), Value::str("a")]
        );
        assert!(t.row(3).is_err());
        assert!(t.get_by_name(0, "nope").is_err());
    }

    #[test]
    fn take_selects_rows_in_order() {
        let t = sample_table();
        let sub = t.take(&[2, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get_by_name(0, "id").unwrap(), Value::Int(3));
        assert_eq!(sub.get_by_name(1, "id").unwrap(), Value::Int(1));
        assert!(t.take(&[9]).is_err());
    }

    #[test]
    fn builder_rejects_ragged_rows() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let mut b = TableBuilder::new(schema);
        assert!(b.push_row(vec![]).is_err());
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(b.push_row(vec![Value::Float(0.5)]).is_err());
    }

    #[test]
    fn new_validates_schema_column_agreement() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        // Wrong number of columns.
        assert!(Table::new(schema.clone(), vec![]).is_err());
        // Wrong type.
        assert!(Table::new(schema.clone(), vec![Column::Float(vec![1.0])]).is_err());
        // Ragged lengths.
        let schema2 = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        assert!(Table::new(schema2, vec![Column::Int(vec![1]), Column::Int(vec![1, 2])]).is_err());
        // Valid.
        assert!(Table::new(schema, vec![Column::Int(vec![1, 2])]).is_ok());
    }

    #[test]
    fn table_of_floats_helper() {
        let t = table_of_floats(&[("x", &[1.0, 2.0]), ("y", &[3.0, 4.0])]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.floats("y").unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn slice_matches_take_of_the_same_range() {
        let t = table_of_floats(&[
            ("x", &[0.0, 1.0, 2.0, 3.0, 4.0]),
            ("y", &[5.0, 6.0, 7.0, 8.0, 9.0]),
        ])
        .unwrap();
        let s = t.slice(1, 4).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.floats("x").unwrap(), &[1.0, 2.0, 3.0]);
        let gathered = t.take(&[1, 2, 3]).unwrap();
        assert_eq!(s, gathered);
        // Empty and full slices.
        assert_eq!(t.slice(2, 2).unwrap().len(), 0);
        assert_eq!(t.slice(0, 5).unwrap(), t);
        // Out-of-range and inverted bounds error.
        assert!(t.slice(0, 6).is_err());
        assert!(t.slice(3, 2).is_err());
    }
}
